"""Tests for BFS, balls, components, diameter."""

import pytest

from repro.graphs.graph import LOG_CAPACITY, Graph
from repro.graphs.traversal import (
    BallCache,
    ball,
    bfs_distances,
    connected_components,
    diameter,
    eccentricity,
    get_invalidation_policy,
    is_connected,
    set_invalidation_policy,
    shortest_path,
)


@pytest.fixture
def wholesale_policy():
    previous = set_invalidation_policy("wholesale")
    yield
    set_invalidation_policy(previous)


class TestBfsDistances:
    def test_single_source(self, path_graph):
        dist = bfs_distances(path_graph, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_multi_source(self, path_graph):
        dist = bfs_distances(path_graph, [0, 5])
        assert dist[2] == 2
        assert dist[3] == 2

    def test_max_dist(self, path_graph):
        dist = bfs_distances(path_graph, 0, max_dist=2)
        assert set(dist) == {0, 1, 2}

    def test_missing_source(self, path_graph):
        with pytest.raises(KeyError):
            bfs_distances(path_graph, 99)

    def test_tuple_node_treated_as_single_source(self, small_grid):
        # Grid nodes are tuples; (0, 0) must be one source, not two.
        dist = bfs_distances(small_grid.graph, (0, 0))
        assert dist[(0, 0)] == 0
        assert dist[(2, 3)] == 5


class TestBall:
    def test_radius_zero(self, path_graph):
        assert ball(path_graph, 2, 0) == {2}

    def test_radius_two(self, path_graph):
        assert ball(path_graph, 2, 2) == {0, 1, 2, 3, 4}

    def test_negative_radius(self, path_graph):
        with pytest.raises(ValueError):
            ball(path_graph, 0, -1)

    def test_grid_ball_is_diamond(self, small_grid):
        region = ball(small_grid.graph, (2, 3), 1)
        assert region == {(2, 3), (1, 3), (3, 3), (2, 2), (2, 4)}

    def test_multi_source_ball(self, path_graph):
        assert ball(path_graph, [0, 5], 1) == {0, 1, 4, 5}


class TestComponents:
    def test_connected(self, path_graph):
        assert is_connected(path_graph)
        assert len(connected_components(path_graph)) == 1

    def test_disconnected(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        comps = connected_components(g)
        assert len(comps) == 2
        assert {frozenset(c) for c in comps} == {
            frozenset({1, 2}),
            frozenset({3, 4}),
        }

    def test_empty_graph_connected(self):
        assert is_connected(Graph())

    def test_isolated_nodes(self):
        g = Graph(nodes=[1, 2, 3])
        assert len(connected_components(g)) == 3


class TestShortestPath:
    def test_trivial(self, path_graph):
        assert shortest_path(path_graph, 3, 3) == [3]

    def test_path(self, path_graph):
        assert shortest_path(path_graph, 0, 3) == [0, 1, 2, 3]

    def test_unreachable(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert shortest_path(g, 1, 4) is None

    def test_missing_endpoint(self, path_graph):
        with pytest.raises(KeyError):
            shortest_path(path_graph, 0, 77)

    def test_grid_path_length(self, small_grid):
        path = shortest_path(small_grid.graph, (0, 0), (4, 6))
        assert path is not None
        assert len(path) == 11  # manhattan distance 10 + 1


class TestDiameter:
    def test_path_diameter(self, path_graph):
        assert diameter(path_graph) == 5

    def test_cycle_diameter(self, cycle_graph):
        assert diameter(cycle_graph) == 3

    def test_eccentricity(self, path_graph):
        assert eccentricity(path_graph, 0) == 5
        assert eccentricity(path_graph, 2) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            diameter(Graph())

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            diameter(Graph(edges=[(1, 2), (3, 4)]))

    def test_grid_diameter(self, small_grid):
        assert diameter(small_grid.graph) == 4 + 6


class TestBallCache:
    def test_cached_ball_matches_plain_ball(self, path_graph):
        cache = BallCache(path_graph)
        for node in path_graph.nodes():
            for radius in (0, 1, 2, 5):
                assert cache.ball(node, radius) == ball(path_graph, node, radius)

    def test_hit_and_miss_counters(self, path_graph):
        cache = BallCache(path_graph)
        cache.ball(0, 2)
        cache.ball(0, 2)
        cache.ball(0, 3)
        assert cache.misses == 2
        assert cache.hits == 1
        assert cache.stats()["hit_rate"] == pytest.approx(1 / 3)

    def test_add_edge_invalidates(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        cache = BallCache(graph)
        assert cache.ball(0, 1) == {0, 1}
        graph.add_edge(0, 4)  # shortcut: 4 now inside the radius-1 ball
        assert cache.ball(0, 1) == {0, 1, 4}

    def test_remove_edge_invalidates(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        cache = BallCache(graph)
        assert cache.ball(0, 2) == {0, 1, 2}
        graph.remove_edge(1, 2)
        assert cache.ball(0, 2) == {0, 1}

    def test_remove_node_invalidates(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        cache = BallCache(graph)
        assert cache.ball(0, 2) == {0, 1, 2}
        graph.remove_node(1)
        assert cache.ball(0, 2) == {0}

    def test_add_node_invalidates(self):
        graph = Graph(edges=[(0, 1)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        graph.add_node(7)
        # The cache must notice the generation bump even though the old
        # ball's content happens to be unchanged.
        assert len(cache) == 0 or cache.ball(0, 1) == {0, 1}
        assert cache.ball(7, 3) == {7}

    def test_stale_balls_never_returned_after_many_mutations(self):
        graph = Graph(edges=[(i, i + 1) for i in range(6)])
        cache = BallCache(graph)
        for _ in range(3):
            for node in list(graph.nodes()):
                assert cache.ball(node, 2) == ball(graph, node, 2)
            graph.add_edge(0, max(graph.nodes()))
            graph.remove_edge(0, max(graph.nodes()))
        assert cache.ball(0, 2) == ball(graph, 0, 2)

    def test_idempotent_mutations_keep_cache_warm(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        graph.add_node(0)      # already present: no structural change
        graph.add_edge(0, 1)   # already present: no structural change
        cache.ball(0, 1)
        assert cache.hits == 1

    def test_unhashable_sources_fall_through(self, path_graph):
        cache = BallCache(path_graph)
        assert cache.ball([0, 5], 1) == ball(path_graph, [0, 5], 1)
        assert cache.hits == 0 and cache.misses == 0

    def test_multi_source_tuple_key_cached(self):
        graph = Graph(edges=[((0, 0), (0, 1)), ((0, 1), (0, 2))])
        cache = BallCache(graph)
        # A tuple that *is* a node caches under that node.
        assert cache.ball((0, 0), 1) == {(0, 0), (0, 1)}
        cache.ball((0, 0), 1)
        assert cache.hits == 1


class TestScopedInvalidation:
    def test_far_away_addition_keeps_balls(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        graph.add_edge(7, 9)  # nowhere near B(0, 1) = {0, 1}
        assert cache.ball(0, 1) == {0, 1}
        assert cache.hits == 1  # survived the mutation
        assert cache.evictions == 0
        assert cache.scoped_flushes == 1
        assert cache.full_flushes == 0

    def test_addition_inside_ball_evicts_only_that_ball(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        cache = BallCache(graph)
        cache.ball(0, 1)   # {0, 1}
        cache.ball(6, 1)   # {5, 6, 7}
        graph.add_edge(1, 9)  # touches B(0,1), far from B(6,1)
        assert cache.ball(6, 1) == {5, 6, 7}
        assert cache.ball(0, 1) == {0, 1}  # recomputed, still correct
        assert cache.evictions == 1
        assert cache.hits == 1
        assert cache.misses == 3

    def test_removal_full_flushes(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        cache.ball(6, 1)
        graph.remove_edge(6, 7)
        cache.ball(0, 1)
        assert cache.full_flushes == 1
        assert cache.evictions == 0

    def test_log_overflow_full_flushes(self):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        for i in range(LOG_CAPACITY + 10):
            graph.add_node(("pad", i))
        cache.ball(0, 1)
        assert cache.full_flushes == 1

    def test_oversized_batch_full_flushes(self):
        from repro.graphs.graph import BATCH_TOUCH_LIMIT

        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        with graph.batch():
            for i in range(BATCH_TOUCH_LIMIT + 2):
                graph.add_node(("pad", i))
        cache.ball(0, 1)
        assert cache.full_flushes == 1

    def test_scoped_matches_uncached_through_mutations(self):
        graph = Graph(edges=[(i, i + 1) for i in range(10)])
        cache = BallCache(graph)
        for step in range(5):
            graph.add_edge(step, step + 11 + step)
            for node in (0, 4, 9):
                assert cache.ball(node, 2) == ball(graph, node, 2)


class TestSharedStore:
    def test_identical_graphs_share_balls(self):
        a = Graph(edges=[(i, i + 1) for i in range(6)])
        b = Graph(edges=[(i, i + 1) for i in range(6)])
        cache_a = BallCache(a)
        cache_b = BallCache(b)
        cache_a.ball(0, 2)
        assert cache_b.ball(0, 2) == {0, 1, 2}
        assert cache_b.hits == 1
        assert cache_b.misses == 0

    def test_different_structures_do_not_share(self):
        a = Graph(edges=[(i, i + 1) for i in range(6)])
        b = Graph(edges=[(i, i + 1) for i in range(7)])
        cache_a = BallCache(a)
        cache_b = BallCache(b)
        cache_a.ball(0, 2)
        cache_b.ball(0, 2)
        assert cache_b.misses == 1

    def test_clear_shared_store_drops_pooled_balls(self):
        graph = Graph(edges=[(0, 1)])
        BallCache(graph).ball(0, 1)
        BallCache.clear_shared_store()
        fresh = BallCache(graph)
        fresh.ball(0, 1)
        assert fresh.misses == 1

    def test_lru_bounds_the_pool(self):
        for i in range(BallCache.SHARED_STORE_CAPACITY + 5):
            BallCache(Graph(edges=[(i, i + 1)])).ball(i, 1)
        assert len(BallCache._shared_store) == BallCache.SHARED_STORE_CAPACITY


class TestWholesalePolicy:
    def test_policy_switch_round_trips(self):
        assert get_invalidation_policy() == "scoped"
        previous = set_invalidation_policy("wholesale")
        assert previous == "scoped"
        assert get_invalidation_policy() == "wholesale"
        set_invalidation_policy(previous)
        with pytest.raises(ValueError):
            set_invalidation_policy("nonsense")

    def test_wholesale_does_not_share(self, wholesale_policy):
        a = Graph(edges=[(i, i + 1) for i in range(6)])
        b = Graph(edges=[(i, i + 1) for i in range(6)])
        BallCache(a).ball(0, 2)
        cache_b = BallCache(b)
        cache_b.ball(0, 2)
        assert cache_b.misses == 1
        assert cache_b.hits == 0

    def test_wholesale_flushes_on_any_mutation(self, wholesale_policy):
        graph = Graph(edges=[(i, i + 1) for i in range(8)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        graph.add_edge(7, 9)  # far away, but wholesale flushes anyway
        cache.ball(0, 1)
        assert cache.misses == 2
        assert cache.full_flushes == 1
        assert cache.ball(0, 1) == {0, 1}


class TestAsSources:
    """Source normalization: nodes first, collections only when genuine."""

    def test_tuple_of_node_labels_is_not_expanded(self, path_graph):
        # (0, 1) is not a node even though both elements are.  The old
        # normalizer expanded it into a two-source query — silently wrong
        # on int-labeled graphs.
        with pytest.raises(KeyError, match=r"\(0, 1\)"):
            bfs_distances(path_graph, (0, 1))

    def test_missing_tuple_label_names_the_label(self, small_grid):
        with pytest.raises(KeyError, match=r"\(99, 99\)"):
            ball(small_grid.graph, (99, 99), 1)

    def test_string_is_a_label_not_a_collection(self, path_graph):
        with pytest.raises(KeyError, match="ab"):
            bfs_distances(path_graph, "ab")

    def test_string_node_still_resolves(self):
        g = Graph(edges=[("ab", "cd")])
        assert bfs_distances(g, "ab") == {"ab": 0, "cd": 1}

    def test_genuine_collections_expand(self, path_graph):
        want = bfs_distances(path_graph, [0, 5])
        assert bfs_distances(path_graph, {0, 5}) == want
        assert bfs_distances(path_graph, iter([0, 5])) == want

    def test_collection_member_missing_raises(self, path_graph):
        with pytest.raises(KeyError, match="99"):
            bfs_distances(path_graph, [0, 99])

    def test_unhashable_non_iterable_is_a_type_error(self, path_graph):
        class Opaque:
            __hash__ = None

        with pytest.raises(TypeError, match="sources"):
            bfs_distances(path_graph, Opaque())


class TestBucketReattach:
    """LRU orphan repair: a live cache whose pooled bucket was evicted
    re-inserts (or merges into) the pool on its next sync or miss."""

    @staticmethod
    def _flood_pool():
        for i in range(BallCache.SHARED_STORE_CAPACITY + 5):
            BallCache(Graph(edges=[(("flood", i), ("flood", i, 1))])).ball(
                ("flood", i), 1
            )

    def test_evicted_bucket_reattaches_on_next_miss(self):
        graph = Graph(edges=[(i, i + 1) for i in range(6)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        self._flood_pool()
        assert cache._key not in BallCache._shared_store
        assert cache.ball(0, 2) == ball(graph, 0, 2)  # miss repairs the pool
        assert cache.bucket_reattaches == 1
        assert cache._key in BallCache._shared_store
        # Cross-cache sharing works again: a twin hits the warm ball.
        twin = BallCache(Graph(edges=[(i, i + 1) for i in range(6)]))
        assert twin.ball(0, 1) == {0, 1}
        assert (twin.hits, twin.misses) == (1, 0)

    def test_hit_on_orphan_does_not_reattach(self):
        graph = Graph(edges=[(i, i + 1) for i in range(6)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        self._flood_pool()
        assert cache.ball(0, 1) == {0, 1}  # orphan still serves hits
        assert cache.bucket_reattaches == 0

    def test_orphan_merges_into_recreated_bucket(self):
        cache_a = BallCache(Graph(edges=[(i, i + 1) for i in range(6)]))
        cache_a.ball(0, 1)
        self._flood_pool()
        # A new cache for the same structure re-creates the bucket empty.
        cache_b = BallCache(Graph(edges=[(i, i + 1) for i in range(6)]))
        cache_b.ball(5, 1)
        assert cache_b.misses == 1
        # cache_a's next miss folds its orphaned balls into the pooled
        # bucket and adopts it, so both caches share one table again.
        cache_a.ball(3, 1)
        assert cache_a.bucket_reattaches == 1
        assert cache_a._balls is cache_b._balls
        assert cache_b.ball(0, 1) == {0, 1}  # a's pre-merge ball survived
        assert cache_b.hits == 1

    def test_reattach_counts_in_stats(self):
        graph = Graph(edges=[(i, i + 1) for i in range(6)])
        cache = BallCache(graph)
        cache.ball(0, 1)
        self._flood_pool()
        cache.ball(0, 2)
        assert cache.stats()["bucket_reattaches"] == 1
