"""Cross-process shared ball pool: one shared-memory segment per pool.

The PR-4 :class:`~repro.graphs.traversal.BallCache` pools computed
neighborhood balls *within* a process, keyed by the graph's structural
fingerprint — the second tournament game on an identical host hits
immediately.  Across worker processes that sharing is lost: every
worker re-extracts the same balls from scratch.  This module promotes
the pool into a ``multiprocessing.shared_memory`` segment so
structurally identical hosts reuse balls across the whole fleet.

Layout
------
The segment is a fixed-slot hash table of pickled entries::

    header:  MAGIC(8) | slots(u64) | slot_bytes(u64)
    slot i:  gen(u64) | keyhash(u64) | paylen(u32) | crc(u32) | payload

An entry's payload is ``pickle.dumps((key, ball))`` where ``key`` is
``(structural_key, sources, radius)``; the slot index is
``blake2b(key_bytes) % slots``.  Collisions simply overwrite — this is
a cache, not storage, and the full key is stored so a reader can never
be served the wrong ball.

Torn reads and writes
---------------------
Writers never lock.  Each slot carries a seqlock-style generation word:
a writer bumps it to an **odd** value, writes the payload, then bumps
it to the next even value.  A reader snapshots the generation, skips
odd (write in progress) or zero (empty), copies the payload, and
re-reads the generation — any change means the copy may be torn and is
discarded.  Two *concurrent* writers racing the same slot can interleave
payload bytes under a generation that still settles even, which the
seqlock alone cannot see; the per-slot CRC32 over the payload catches
exactly that, and the pickled key equality check is the final guard.
A worker SIGKILLed mid-write leaves the slot odd forever — readers skip
it, and the next writer reclaims it.  Readers never write, so a reader
killed mid-copy leaves the segment untouched.

Lifecycle
---------
The parent pool creates the segment, records a ``balls-<pid>.segment``
sidecar under the store root, and ships the segment name to workers;
:func:`sweep_stale_segments` unlinks segments whose owning pid is dead
(the SIGKILL-resume path), and the pool unlinks its own segment on
shutdown and on degradation.  Everything degrades cleanly: when shared
memory is unavailable (or an attach fails) callers fall back to the
in-process pool.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import uuid
import zlib
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - no _posixshmem / _multiprocessing
    resource_tracker = None
    shared_memory = None

_MAGIC = b"RBPOOL1\0"
_HEADER = struct.Struct("<8sQQ")
#: Per-slot prefix: generation, key hash, payload length, payload CRC32.
_SLOT = struct.Struct("<QQII")

#: Environment knob: ``REPRO_SHARED_BALLS=0`` disables segment creation.
SHARED_BALLS_ENV_VAR = "REPRO_SHARED_BALLS"

#: Default table geometry: 512 slots × 8 KiB ≈ 4 MiB per campaign.
DEFAULT_SLOTS = 512
DEFAULT_SLOT_BYTES = 8192

#: Sidecar glob under a store root recording live segments.
SEGMENT_SIDECAR_SUFFIX = ".segment"


def shared_balls_enabled() -> bool:
    """Whether pools should create shared segments at all."""
    if shared_memory is None:
        return False
    return os.environ.get(SHARED_BALLS_ENV_VAR, "") != "0"


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, other user
        return True
    return True


def _key_bytes(key: Any) -> bytes:
    return pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)


def _key_hash(key_bytes: bytes) -> int:
    import hashlib

    return int.from_bytes(
        hashlib.blake2b(key_bytes, digest_size=8).digest(), "little"
    )


class SharedBallPool:
    """A fixed-slot, lock-free shared-memory ball table.

    Construct via :meth:`create` (owner) or :meth:`attach` (worker);
    both return ``None`` instead of raising when shared memory is
    unavailable, so callers always have the in-process fallback.
    """

    def __init__(self, shm, slots: int, slot_bytes: int, owner: bool) -> None:
        self._shm = shm
        self.name = shm.name
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> Optional["SharedBallPool"]:
        """Create a fresh zeroed segment; None if shared memory fails."""
        if shared_memory is None or slots < 1:
            return None
        name = f"repro-balls-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        size = _HEADER.size + slots * (slot_bytes + _SLOT.size)
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        except (OSError, ValueError):  # pragma: no cover - /dev/shm full
            return None
        shm.buf[: _HEADER.size] = _HEADER.pack(_MAGIC, slots, slot_bytes)
        return cls(shm, slots, slot_bytes, owner=True)

    @classmethod
    def attach(cls, name: str) -> Optional["SharedBallPool"]:
        """Attach to an existing segment by name; None on any failure."""
        if shared_memory is None:
            return None
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except (OSError, ValueError):
            return None
        # Python 3.11 registers the segment with the resource tracker
        # even on attach (no track= parameter until 3.13); left alone,
        # the tracker would unlink the owner's segment when this worker
        # exits and warn about a leak it did not have.  Unregister the
        # attach-side bookkeeping; the creating process keeps its own.
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker variants
                pass
        try:
            magic, slots, slot_bytes = _HEADER.unpack_from(shm.buf, 0)
        except struct.error:
            shm.close()
            return None
        if magic != _MAGIC:
            shm.close()
            return None
        return cls(shm, slots, slot_bytes, owner=False)

    # ------------------------------------------------------------------
    # Slot access
    # ------------------------------------------------------------------
    def _slot_offset(self, index: int) -> int:
        return _HEADER.size + index * (self.slot_bytes + _SLOT.size)

    def get(self, key: Any) -> Optional[Any]:
        """The cached value for ``key``, or None (miss, tear, or
        collision).  Never blocks and never raises on concurrent writes.
        """
        if self._closed:
            return None
        kb = _key_bytes(key)
        khash = _key_hash(kb)
        offset = self._slot_offset(khash % self.slots)
        buf = self._shm.buf
        try:
            gen, stored_hash, paylen, crc = _SLOT.unpack_from(buf, offset)
            if gen == 0 or gen % 2 == 1:
                return None  # empty, or a writer is mid-flight
            if stored_hash != khash or paylen > self.slot_bytes:
                return None
            payload = bytes(
                buf[offset + _SLOT.size : offset + _SLOT.size + paylen]
            )
            gen_after = _SLOT.unpack_from(buf, offset)[0]
        except (struct.error, ValueError, IndexError):
            return None
        if gen_after != gen:
            return None  # a writer raced the copy: treat as torn
        if zlib.crc32(payload) != crc:
            return None  # interleaved concurrent writes: discard
        try:
            stored_key, value = pickle.loads(payload)
        except Exception:
            return None
        if stored_key != key:
            return None  # hash collision with a different key
        return value

    def put(self, key: Any, value: Any) -> bool:
        """Publish ``key -> value``; False when it does not fit.

        Overwrites whatever occupied the slot (collisions included).
        """
        if self._closed:
            return False
        kb = _key_bytes(key)
        khash = _key_hash(kb)
        try:
            payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # pragma: no cover - unpicklable ball
            return False
        if len(payload) > self.slot_bytes:
            return False
        offset = self._slot_offset(khash % self.slots)
        buf = self._shm.buf
        try:
            gen = _SLOT.unpack_from(buf, offset)[0]
            # Odd while writing (readers skip), next even when done.  A
            # crashed writer leaves the slot odd; (gen + 1) | 1 moves
            # past it monotonically either way.
            writing = (gen + 1) | 1
            _SLOT.pack_into(buf, offset, writing, khash, len(payload),
                            zlib.crc32(payload))
            buf[offset + _SLOT.size : offset + _SLOT.size + len(payload)] = payload
            _SLOT.pack_into(buf, offset, writing + 1, khash, len(payload),
                            zlib.crc32(payload))
        except (struct.error, ValueError, IndexError):  # pragma: no cover
            return False
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - exports live
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner's shutdown path; idempotent)."""
        self.close()
        # A forkserver child shares the parent's resource tracker, so its
        # attach-side unregister (see :meth:`attach`) may have already
        # removed this name from the shared cache; re-register so the
        # unregister inside ``shm.unlink()`` always balances instead of
        # raising KeyError noise in the tracker process.
        if resource_tracker is not None:
            try:
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker variants
                pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - raced
            pass


# ----------------------------------------------------------------------
# Process-wide active pool (what BallCache consults)
# ----------------------------------------------------------------------
_active: Optional[SharedBallPool] = None


def set_active_pool(pool: Optional[SharedBallPool]) -> Optional[SharedBallPool]:
    """Install the pool :class:`~repro.graphs.traversal.BallCache`
    consults on misses; returns the previous one (for restore)."""
    global _active
    previous = _active
    _active = pool
    return previous


def active_pool() -> Optional[SharedBallPool]:
    """The shared pool active in this process, or None."""
    return _active


# ----------------------------------------------------------------------
# Segment sidecars: discovery + stale sweep under a store root
# ----------------------------------------------------------------------
def _sidecar_path(store_root: str, pid: int) -> str:
    return os.path.join(
        os.fspath(store_root), f"balls-{pid}{SEGMENT_SIDECAR_SUFFIX}"
    )


def publish_segment(store_root, pool: SharedBallPool) -> str:
    """Record ``pool`` in a ``balls-<pid>.segment`` sidecar so a later
    resume can sweep it if this process dies without unlinking."""
    path = _sidecar_path(store_root, os.getpid())
    os.makedirs(os.fspath(store_root), exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"segment": pool.name, "pid": os.getpid()}, handle)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def retire_segment(store_root, pool: Optional[SharedBallPool]) -> None:
    """Unlink ``pool`` and remove this process's sidecar (idempotent)."""
    if pool is not None:
        pool.unlink()
    try:
        os.remove(_sidecar_path(store_root, os.getpid()))
    except OSError:
        pass


def list_segment_sidecars(store_root) -> List[Tuple[str, Dict[str, Any]]]:
    """Every ``balls-*.segment`` sidecar under the root, parsed."""
    import glob as _glob

    out: List[Tuple[str, Dict[str, Any]]] = []
    pattern = os.path.join(
        _glob.escape(os.fspath(store_root)), f"balls-*{SEGMENT_SIDECAR_SUFFIX}"
    )
    for path in sorted(_glob.glob(pattern)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            out.append((path, payload))
    return out


def sweep_stale_segments(store_root) -> int:
    """Unlink segments whose owning process is dead; returns the count.

    This is the SIGKILL-resume path: a killed campaign leaves its
    segment in ``/dev/shm`` and its sidecar in the store; the next pool
    against the same store reclaims both before creating its own.
    """
    swept = 0
    for path, payload in list_segment_sidecars(store_root):
        pid = payload.get("pid")
        if isinstance(pid, int) and pid_alive(pid):
            continue
        name = payload.get("segment")
        if isinstance(name, str):
            stale = SharedBallPool.attach(name)
            if stale is not None:
                stale.unlink()
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - raced
            pass
        swept += 1
    return swept
