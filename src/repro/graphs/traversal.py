"""Breadth-first traversal utilities: distances, balls, components.

These implement the paper's neighborhood notation: ``ball(G, U, T)`` is
:math:`\\mathcal{B}(U, T)`, the set of all nodes within distance ``T`` of
some node of ``U`` (Section 2).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Union

from repro.graphs.graph import Graph
from repro.observability.metrics import BoundCounter, get_registry

Node = Hashable

_BALL_HITS = BoundCounter("ball_cache_hits")
_BALL_MISSES = BoundCounter("ball_cache_misses")


def _as_sources(sources: Union[Node, Iterable[Node]], graph: Graph) -> List[Node]:
    """Normalize a single node or an iterable of nodes into a list.

    Node labels may themselves be iterable (grid nodes are tuples), so a
    hashable value that is a node of the graph is always treated as a
    single source; only non-node values are expanded as collections.
    """
    try:
        if sources in graph:
            return [sources]
        is_node_like = True
    except TypeError:
        is_node_like = False
    if is_node_like and not isinstance(sources, Iterable):
        raise KeyError(f"source node {sources!r} not in graph")
    candidates = list(sources)
    for node in candidates:
        if node not in graph:
            raise KeyError(f"source node {node!r} not in graph")
    return candidates


def bfs_distances(
    graph: Graph,
    sources: Union[Node, Iterable[Node]],
    max_dist: Optional[int] = None,
) -> Dict[Node, int]:
    """Multi-source BFS distances from ``sources``.

    Parameters
    ----------
    graph:
        The graph to traverse.
    sources:
        A node or iterable of nodes; distances are measured to the nearest
        source.
    max_dist:
        If given, traversal stops at this radius (nodes farther away are
        absent from the result).

    Returns
    -------
    dict
        ``node -> distance`` for every reached node (sources map to 0).
    """
    frontier = deque()
    dist: Dict[Node, int] = {}
    for source in _as_sources(sources, graph):
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    while frontier:
        u = frontier.popleft()
        d = dist[u]
        if max_dist is not None and d >= max_dist:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = d + 1
                frontier.append(v)
    return dist


def ball(graph: Graph, sources: Union[Node, Iterable[Node]], radius: int) -> Set[Node]:
    """The paper's :math:`\\mathcal{B}(U, T)`: all nodes within ``radius``.

    ``radius`` must be non-negative; ``ball(G, U, 0)`` is ``set(U)``.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return set(bfs_distances(graph, sources, max_dist=radius))


class BallCache:
    """Memoized :func:`ball` queries over one (mostly static) graph.

    The simulators and adversaries recompute the same radius-T balls for
    every reveal and again during audits; on a fixed host that BFS work
    is identical each time.  The cache stores each ball as a frozenset
    keyed by ``(source, radius)`` and is invalidated wholesale when the
    graph's :attr:`~repro.graphs.graph.Graph.generation` counter moves,
    so mutation can never serve a stale ball.

    Cached balls are **frozensets shared between callers** — treat them
    as immutable (every set-algebra reader in the codebase already does).
    Unhashable source specs (lists/sets of nodes) fall through to an
    uncached BFS.

    Instances count ``hits``/``misses``; the process-wide aggregates
    live in the active metrics registry (``ball_cache_hits`` /
    ``ball_cache_misses`` counters), so benchmarks can report hit rates
    without threading every simulator's cache out, and parallel sweeps
    can ship worker counts back to the parent as registry snapshots.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._generation = graph.generation
        self._balls: Dict[tuple, FrozenSet[Node]] = {}
        self.hits = 0
        self.misses = 0

    def ball(
        self, sources: Union[Node, Iterable[Node]], radius: int
    ) -> FrozenSet[Node]:
        """A (possibly cached) :func:`ball`; same semantics, frozen result."""
        if self.graph.generation != self._generation:
            self._balls.clear()
            self._generation = self.graph.generation
        try:
            key = (sources, radius)
            cached = self._balls.get(key)
        except TypeError:  # unhashable source collection: compute uncached
            return frozenset(ball(self.graph, sources, radius))
        if cached is not None:
            self.hits += 1
            _BALL_HITS.inc()
            return cached
        self.misses += 1
        _BALL_MISSES.inc()
        result = frozenset(ball(self.graph, sources, radius))
        self._balls[key] = result
        return result

    def stats(self) -> Dict[str, float]:
        """This cache's hit/miss counters and hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }

    def __len__(self) -> int:
        return len(self._balls)

    @classmethod
    def global_stats(cls) -> Dict[str, float]:
        """Aggregate counters across every cache recorded in the active
        metrics registry."""
        registry = get_registry()
        hits = registry.counter("ball_cache_hits").value
        misses = registry.counter("ball_cache_misses").value
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    @classmethod
    def reset(cls) -> None:
        """Zero the registry-held aggregate counters.

        Benchmarks call this between configurations so repeated runs in
        one process never accumulate stale counts.
        """
        registry = get_registry()
        registry.counter("ball_cache_hits").value = 0
        registry.counter("ball_cache_misses").value = 0

    #: Backwards-compatible alias for the pre-registry name.
    reset_global_stats = reset


def connected_components(graph: Graph) -> List[Set[Node]]:
    """All connected components, each as a set of nodes."""
    remaining: Set[Node] = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        start = next(iter(remaining))
        component = set(bfs_distances(graph, start))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_nodes == 0:
        return True
    start = next(iter(graph.nodes()))
    return len(bfs_distances(graph, start)) == graph.num_nodes


def shortest_path(graph: Graph, source: Node, target: Node) -> Optional[List[Node]]:
    """A shortest path from ``source`` to ``target`` (inclusive), or None.

    Returns ``[source]`` when ``source == target``.
    """
    if source not in graph or target not in graph:
        raise KeyError("source and target must be nodes of the graph")
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {source: source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in graph.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(v)
    return None


def eccentricity(graph: Graph, node: Node) -> int:
    """Maximum distance from ``node`` to any reachable node."""
    return max(bfs_distances(graph, node).values())


def diameter(graph: Graph) -> int:
    """Exact diameter of a connected graph (O(n·m); intended for tests).

    Raises
    ------
    ValueError
        If the graph is empty or disconnected.
    """
    if graph.num_nodes == 0:
        raise ValueError("diameter of the empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("diameter is undefined for a disconnected graph")
    return max(eccentricity(graph, node) for node in graph.nodes())
