"""CSR flat-array adjacency kernel behind the :class:`~repro.graphs.graph.Graph` API.

The reveal loop bottoms out in radius-``T`` ball extraction
(:func:`repro.graphs.traversal.ball`).  The historical kernel walks the
dict-of-sets adjacency map one node at a time, hashing a structured tuple
label per visited edge.  This module compiles that map into **CSR form**
(``indptr``/``indices`` flat arrays over dense int node ids) so the BFS
inner loop touches only machine integers:

* **Label interning** — node labels (grid ``(row, col)`` tuples, hierarchy
  ``(layer, base)`` tuples, ...) are interned to dense ids in the graph's
  insertion order, so the mapping is deterministic and stable under
  :meth:`~repro.graphs.graph.Graph.copy` (which preserves insertion
  order) and under incremental appends (new nodes get the next id).
* **Incremental validity** — a compiled view is keyed to the graph's
  generation counter and re-validated through the PR-4 structural change
  log: ``"add"``-only deltas are *appended* (the touched rows are patched
  in place, everything else stays packed); any removal, opaque bulk
  record, log overflow, or an excessive patch load triggers a recompile.
* **Zero runtime deps** — the canonical storage is :mod:`array`-module
  flat arrays, mirrored per row as int tuples for the interpreter sweep
  (CPython slices/boxes ``array('l')`` elements slowly; tuples of cached
  small ints iterate at C speed) with a ``bytearray`` visited set cleared
  output-sensitively.  When numpy is importable (a dev-only convenience,
  never a requirement) a BFS level whose frontier outgrows
  ``NUMPY_FRONTIER_MIN`` switches to a vectorized gather over the packed
  arrays, sharing the visited bytes zero-copy.

Backend selection is process-global: ``REPRO_GRAPH_BACKEND`` (``"csr"``,
the default, or ``"dict"``) picks which kernel
:func:`repro.graphs.traversal.bfs_distances` / ``ball`` route through;
:func:`set_graph_backend` swaps it at runtime (benchmarks time both).
See ``docs/performance.md`` ("The CSR kernel") for the design notes and
the soundness argument w.r.t. scoped cache invalidation.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.graph import Graph

try:  # optional fast path; the package itself has zero runtime deps
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

from repro.observability.timers import phase_timer

# Phase-attribution handles (repro.observability.timers): compile and
# patch costs are the CSR kernel's contribution to the campaign phase
# table (nested inside compute, so informational — not coverage).
_T_CSR_COMPILE = phase_timer("csr-compile")
_T_CSR_PATCH = phase_timer("csr-patch")

Node = Hashable

#: Whether the vectorized large-frontier sweep is available.
HAVE_NUMPY = _np is not None

#: BFS levels with frontiers at least this large vectorize (when numpy is
#: importable and the view has no patched rows).  Below it, per-call numpy
#: dispatch overhead loses to the interpreter sweep — measured crossover
#: on grid hosts is several hundred frontier nodes.
NUMPY_FRONTIER_MIN = 512

#: Patched rows tolerated before an incremental view recompiles:
#: ``PATCH_BASE + n // PATCH_FRACTION``.
PATCH_BASE = 64
PATCH_FRACTION = 8

_VALID_BACKENDS = ("dict", "csr")


def _initial_backend() -> str:
    value = os.environ.get("REPRO_GRAPH_BACKEND", "csr")
    if value not in _VALID_BACKENDS:
        raise ValueError(
            f"REPRO_GRAPH_BACKEND={value!r} is not one of {_VALID_BACKENDS}"
        )
    return value


_graph_backend = _initial_backend()


def set_graph_backend(backend: str) -> str:
    """Select the traversal kernel (``"dict"`` or ``"csr"``) process-wide.

    Returns the previous backend so callers (tests, benchmarks) can
    restore it.  Both kernels are answer-identical — the differential
    property test in ``tests/graphs/test_csr.py`` pins that — so this
    only chooses *how* balls are extracted, never what they contain.
    """
    global _graph_backend
    if backend not in _VALID_BACKENDS:
        raise ValueError(f"unknown graph backend {backend!r}; pick from {_VALID_BACKENDS}")
    previous = _graph_backend
    _graph_backend = backend
    return previous


def get_graph_backend() -> str:
    """The kernel new traversal calls route through."""
    return _graph_backend


class CSRView:
    """A compiled flat-array snapshot of one graph's adjacency.

    Obtain instances through :func:`csr_view` (one cached view per graph,
    revalidated lazily); construct directly only in tests.  The view
    exposes id-space introspection (:meth:`id_of`, :meth:`label_of`) plus
    the two traversal entry points the backend router consumes
    (:meth:`ball_labels`, :meth:`distances`).
    """

    __slots__ = (
        "graph",
        "_generation",
        "_ids",
        "_labels",
        "_indptr",
        "_indices",
        "_rows",
        "_patched",
        "_visited",
        "_np_indptr",
        "_np_indices",
        "compiles",
        "appends",
    )

    def __init__(self, graph: "Graph") -> None:
        self.graph = graph
        self.compiles = 0
        self.appends = 0
        self._recompile()

    # ------------------------------------------------------------------
    # Compilation and incremental sync
    # ------------------------------------------------------------------
    def _recompile(self) -> None:
        """Pack the full adjacency map into fresh indptr/indices arrays."""
        with _T_CSR_COMPILE:
            self._recompile_inner()

    def _recompile_inner(self) -> None:
        adj = self.graph.adjacency()
        ids: Dict[Node, int] = {}
        labels: List[Node] = []
        for node in adj:
            ids[node] = len(labels)
            labels.append(node)
        indptr = array("l", [0])
        indices = array("l")
        rows: List[Sequence[int]] = []
        for node in labels:
            row = tuple(ids[v] for v in adj[node])
            rows.append(row)
            indices.extend(row)
            indptr.append(len(indices))
        self._ids = ids
        self._labels = labels
        self._indptr = indptr
        self._indices = indices
        self._rows = rows
        self._patched: Dict[int, List[int]] = {}
        self._visited = bytearray(len(labels))
        if _np is not None:
            # frombuffer shares the arrays' memory: zero copy, and the
            # packed arrays are never mutated in place (patches live in
            # _patched; structural churn recompiles).
            self._np_indptr = _np.frombuffer(indptr, dtype=_np.dtype("l"))
            self._np_indices = (
                _np.frombuffer(indices, dtype=_np.dtype("l"))
                if len(indices)
                else _np.empty(0, dtype=_np.dtype("l"))
            )
        else:
            self._np_indptr = None
            self._np_indices = None
        self._generation = self.graph.generation
        self.compiles += 1

    def sync(self) -> "CSRView":
        """Catch up with the graph: no-op, incremental append, or recompile.

        Mirrors the :class:`~repro.graphs.traversal.BallCache` protocol:
        an ``"add"``-only change-log delta patches exactly the touched
        rows (an added edge only changes its two endpoints' rows; a new
        node is itself touched, so one interning pass over the touched
        set covers every id the patched rows need).  Anything else —
        removal, bulk record, unknowable history — recompiles.
        """
        graph = self.graph
        if graph.generation == self._generation:
            return self
        changes = graph.changes_since(self._generation)
        if changes is None or any(kind != "add" for kind, _ in changes):
            self._recompile()
            return self
        with _T_CSR_PATCH:
            touched: Set[Node] = set()
            for _, nodes in changes:
                touched.update(nodes)
            adj = graph.adjacency()
            ids = self._ids
            for node in touched:
                if node not in ids:
                    ids[node] = len(self._labels)
                    self._labels.append(node)
                    self._visited.append(0)
            for node in touched:
                self._patched[ids[node]] = [ids[v] for v in adj[node]]
            self.appends += 1
            self._generation = graph.generation
        if len(self._patched) > PATCH_BASE + len(self._labels) // PATCH_FRACTION:
            self._recompile()
        return self

    # ------------------------------------------------------------------
    # Id-space introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def id_of(self, label: Node) -> int:
        """The dense int id interned for ``label`` (KeyError if absent)."""
        return self._ids[label]

    def label_of(self, node_id: int) -> Node:
        """The label interned at ``node_id`` (IndexError if out of range)."""
        return self._labels[node_id]

    @property
    def kernel(self) -> str:
        """Which sweep answers packed queries: ``csr+numpy`` or ``csr``."""
        return "csr+numpy" if _np is not None else "csr"

    # ------------------------------------------------------------------
    # Traversal kernels
    # ------------------------------------------------------------------
    def ball_labels(self, sources: Iterable[Node], radius: int) -> Set[Node]:
        """The paper's B(U, T) as a set of labels; sources must be nodes."""
        ids = self._ids
        source_ids = [ids[s] for s in sources]
        labels = self._labels
        if radius <= 0 or not source_ids:
            return {labels[i] for i in source_ids}
        reached = self._ball_ids(source_ids, radius)
        return {labels[i] for i in reached}

    def _ball_ids(self, source_ids: List[int], radius: int) -> List[int]:
        """Frontier sweep: interpreter row-view levels, vectorized when big.

        The visited set is a ``bytearray`` cleared output-sensitively in
        the ``finally`` block, so each call pays work proportional to the
        ball it returns — no O(n) reinitialization.  A level whose
        frontier reaches :data:`NUMPY_FRONTIER_MIN` (and an unpatched
        packed view) runs as one numpy gather sharing the same visited
        bytes zero-copy.
        """
        visited = self._visited
        rows = self._rows
        patched = self._patched
        vectorize = _np is not None and not patched
        np_visited = (
            _np.frombuffer(visited, dtype=_np.uint8) if vectorize else None
        )
        out: List[int] = []
        try:
            for s in source_ids:
                if not visited[s]:
                    visited[s] = 1
                    out.append(s)
            frontier: List[int] = list(out)
            for _ in range(radius):
                if not frontier:
                    break
                if vectorize and len(frontier) >= NUMPY_FRONTIER_MIN:
                    nxt = self._level_numpy(frontier, np_visited)
                elif patched:
                    nxt = []
                    for u in frontier:
                        row = patched.get(u)
                        if row is None:
                            row = rows[u]
                        for v in row:
                            if not visited[v]:
                                visited[v] = 1
                                nxt.append(v)
                else:
                    nxt = []
                    for u in frontier:
                        for v in rows[u]:
                            if not visited[v]:
                                visited[v] = 1
                                nxt.append(v)
                out.extend(nxt)
                frontier = nxt
            return out
        finally:
            for i in out:
                visited[i] = 0

    def _level_numpy(self, frontier: List[int], np_visited) -> List[int]:
        """One BFS level as a vectorized gather over the packed arrays."""
        np = _np
        indptr = self._np_indptr
        indices = self._np_indices
        front = np.asarray(frontier, dtype=np.intp)
        starts = indptr[front]
        counts = indptr[front + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return []
        ends = np.cumsum(counts)
        gather = np.repeat(starts - (ends - counts), counts) + np.arange(total)
        nbrs = indices[gather]
        fresh = np.unique(nbrs[np_visited[nbrs] == 0])
        np_visited[fresh] = 1
        return fresh.tolist()

    def distances(
        self, sources: Iterable[Node], max_dist: Optional[int] = None
    ) -> Dict[Node, int]:
        """Multi-source BFS distances, same contract as ``bfs_distances``."""
        ids = self._ids
        labels = self._labels
        rows = self._rows
        patched = self._patched
        dist_ids: Dict[int, int] = {}
        frontier: List[int] = []
        for s in sources:
            i = ids[s]
            if i not in dist_ids:
                dist_ids[i] = 0
                frontier.append(i)
        d = 0
        while frontier and (max_dist is None or d < max_dist):
            d += 1
            nxt: List[int] = []
            for u in frontier:
                row = patched.get(u)
                if row is None:
                    row = rows[u]
                for v in row:
                    if v not in dist_ids:
                        dist_ids[v] = d
                        nxt.append(v)
            frontier = nxt
        return {labels[i]: d for i, d in dist_ids.items()}


def csr_view(graph: "Graph") -> CSRView:
    """The (lazily compiled, generation-synced) CSR view of ``graph``.

    One view is cached per graph instance; every access revalidates it
    against the generation counter, so callers always see the current
    structure.  This — not ``graph._adj`` — is the accessor traversal
    code uses when the ``csr`` backend is active.
    """
    view = graph._csr
    if view is None:
        view = CSRView(graph)
        graph._csr = view
        return view
    return view.sync()
