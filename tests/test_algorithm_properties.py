"""Property-based tests of the upper-bound algorithms at budget.

The strongest correctness statement we can check mechanically: for
random instances of the right family and *random adversarial reveal
orders*, the algorithms at the paper's locality budget always produce
proper colorings within their color budget.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.akbari import AkbariBipartiteColoring
from repro.core.unify import UnifyColoring, recommended_locality
from repro.families.grids import SimpleGrid
from repro.families.ktree import random_ktree
from repro.families.random_graphs import (
    random_connected_bipartite,
    random_reveal_order,
    random_tree,
)
from repro.families.triangular import TriangularGrid
from repro.models.online_local import OnlineLocalSimulator
from repro.oracles import KTreeOracle, TriangularOracle
from repro.verify.coloring import is_proper


def akbari_budget(n):
    return 3 * math.ceil(math.log2(max(2, n))) + 2


@given(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10 ** 6),
)
@settings(max_examples=15, deadline=None)
def test_akbari_on_random_grids_and_orders(rows, cols, seed):
    grid = SimpleGrid(rows, cols)
    order = random_reveal_order(sorted(grid.graph.nodes()), seed=seed)
    sim = OnlineLocalSimulator(
        grid.graph,
        AkbariBipartiteColoring(),
        locality=akbari_budget(grid.num_nodes),
        num_colors=3,
    )
    coloring = sim.run(order)
    assert is_proper(grid.graph, coloring)


@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=0, max_value=10 ** 6),
)
@settings(max_examples=15, deadline=None)
def test_akbari_on_random_trees(size, seed):
    tree = random_tree(size, seed=seed)
    order = random_reveal_order(sorted(tree.nodes()), seed=seed + 1)
    sim = OnlineLocalSimulator(
        tree, AkbariBipartiteColoring(), locality=akbari_budget(size), num_colors=3
    )
    assert is_proper(tree, sim.run(order))


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=10 ** 6),
)
@settings(max_examples=10, deadline=None)
def test_akbari_on_random_bipartite(left, right, extra, seed):
    graph = random_connected_bipartite(left, right, extra, seed=seed)
    order = random_reveal_order(sorted(graph.nodes()), seed=seed)
    sim = OnlineLocalSimulator(
        graph,
        AkbariBipartiteColoring(),
        locality=akbari_budget(graph.num_nodes),
        num_colors=3,
    )
    assert is_proper(graph, sim.run(order))


@given(
    st.integers(min_value=3, max_value=9),
    st.integers(min_value=0, max_value=10 ** 6),
)
@settings(max_examples=8, deadline=None)
def test_unify_on_random_triangular_orders(side, seed):
    tri = TriangularGrid(side)
    order = random_reveal_order(sorted(tri.graph.nodes()), seed=seed)
    budget = recommended_locality(3, 1, tri.num_nodes)
    sim = OnlineLocalSimulator(
        tri.graph, UnifyColoring(TriangularOracle()), locality=budget, num_colors=4
    )
    assert is_proper(tri.graph, sim.run(order))


@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=5, max_value=25),
    st.integers(min_value=0, max_value=10 ** 6),
)
@settings(max_examples=8, deadline=None)
def test_unify_on_random_ktrees(tree_k, size, seed):
    size = max(size, tree_k + 1)
    tree = random_ktree(tree_k, size, seed=seed)
    order = random_reveal_order(sorted(tree.graph.nodes(), key=repr), seed=seed)
    budget = recommended_locality(tree_k + 1, 1, size)
    sim = OnlineLocalSimulator(
        tree.graph,
        UnifyColoring(KTreeOracle(tree_k)),
        locality=budget,
        num_colors=tree_k + 2,
    )
    assert is_proper(tree.graph, sim.run(order))
