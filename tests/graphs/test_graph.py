"""Tests for the Graph substrate."""

import pytest

from repro.graphs.graph import BATCH_TOUCH_LIMIT, LOG_CAPACITY, Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_nodes_only(self):
        g = Graph(nodes=[1, 2, 3])
        assert g.num_nodes == 3
        assert g.num_edges == 0

    def test_edges_create_endpoints(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_tuple_nodes(self):
        g = Graph(edges=[((0, 0), (0, 1))])
        assert (0, 0) in g
        assert g.has_edge((0, 0), (0, 1))

    def test_add_edges_bulk(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3), (3, 1)])
        assert g.num_edges == 3


class TestQueries:
    def test_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == frozenset({2, 3})
        assert g.neighbors(2) == frozenset({1})

    def test_neighbors_missing_node(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.neighbors(42)

    def test_degree(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(4) == 1

    def test_max_degree(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_has_edge_absent_nodes(self):
        g = Graph(edges=[(1, 2)])
        assert not g.has_edge(1, 99)
        assert not g.has_edge(98, 99)

    def test_edges_listed_once(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        edges = list(g.edges())
        assert len(edges) == 3
        normalized = {frozenset(e) for e in edges}
        assert normalized == {
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({1, 3}),
        }

    def test_len_and_iter(self):
        g = Graph(nodes=[1, 2], edges=[(2, 3)])
        assert len(g) == 3
        assert set(g) == {1, 2, 3}

    def test_contains(self):
        g = Graph(nodes=["x"])
        assert "x" in g
        assert "y" not in g


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert g.num_nodes == 3

    def test_remove_missing_edge(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_node(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_node(2)
        assert 2 not in g
        assert g.num_edges == 0

    def test_remove_missing_node(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.remove_node(5)


class TestDerived:
    def test_induced_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.induced_subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_induced_subgraph_ignores_foreign_nodes(self):
        g = Graph(edges=[(1, 2)])
        sub = g.induced_subgraph([1, 2, 99])
        assert sub.num_nodes == 2

    def test_induced_subgraph_keeps_isolated(self):
        g = Graph(nodes=[5], edges=[(1, 2)])
        sub = g.induced_subgraph([1, 5])
        assert sub.num_nodes == 2
        assert sub.num_edges == 0

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_nodes == 2
        assert clone.num_nodes == 3

    def test_relabel(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        relabeled = g.relabel({1: "a", 2: "b", 3: "c"})
        assert relabeled.has_edge("a", "b")
        assert relabeled.has_edge("b", "c")
        assert relabeled.num_nodes == 3

    def test_relabel_partial(self):
        g = Graph(edges=[(1, 2)])
        relabeled = g.relabel({1: "a"})
        assert relabeled.has_edge("a", 2)

    def test_relabel_collision_rejected(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(ValueError):
            g.relabel({1: "x", 2: "x"})

    def test_equality(self):
        g1 = Graph(edges=[(1, 2)])
        g2 = Graph(edges=[(1, 2)])
        g3 = Graph(edges=[(1, 3)])
        assert g1 == g2
        assert g1 != g3

    def test_repr(self):
        assert repr(Graph(edges=[(1, 2)])) == "Graph(n=2, m=1)"


class TestGeneration:
    def test_bulk_construction_is_one_generation(self):
        g = Graph(nodes=[1, 2], edges=[(2, 3), (3, 4)])
        assert g.generation == 1
        assert Graph().generation == 0

    def test_add_edges_is_one_generation(self):
        g = Graph(edges=[(1, 2)])
        g.add_edges([(2, 3), (3, 4), (4, 5)])
        assert g.generation == 2

    def test_single_mutations_bump_once_each(self):
        g = Graph()
        g.add_node(1)
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        g.remove_node(2)
        assert g.generation == 4

    def test_idempotent_mutations_do_not_bump(self):
        g = Graph(edges=[(1, 2)])
        before = g.generation
        g.add_node(1)
        g.add_edge(2, 1)
        assert g.generation == before

    def test_empty_batch_commits_nothing(self):
        g = Graph(edges=[(1, 2)])
        before = g.generation
        with g.batch():
            pass
        with g.batch():
            g.add_node(1)  # idempotent: no structural change
        assert g.generation == before

    def test_nested_batches_commit_once(self):
        g = Graph()
        with g.batch():
            g.add_edge(1, 2)
            with g.batch():
                g.add_edge(2, 3)
        assert g.generation == 1

    def test_copy_carries_generation(self):
        g = Graph(edges=[(1, 2)])
        g.add_edge(2, 3)
        clone = g.copy()
        assert clone.generation == g.generation
        assert clone.num_edges == g.num_edges
        assert clone.fingerprint == g.fingerprint

    def test_derived_graphs_have_consistent_counters(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.induced_subgraph([1, 2, 3])
        assert sub.generation == 1
        assert sub.num_edges == 2
        relabeled = g.relabel({1: "a"})
        assert relabeled.generation == 1
        assert relabeled.num_edges == 4


class TestChangeLog:
    def test_no_change_is_empty(self):
        g = Graph(edges=[(1, 2)])
        assert g.changes_since(g.generation) == []

    def test_records_additions_with_touched_nodes(self):
        g = Graph(edges=[(1, 2)])
        base = g.generation
        g.add_edge(2, 3)
        g.add_node(9)
        changes = g.changes_since(base)
        assert changes == [("add", (2, 3)), ("add", (9,))]

    def test_records_removals(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        base = g.generation
        g.remove_edge(1, 2)
        g.remove_node(3)
        kinds = [kind for kind, _ in g.changes_since(base)]
        assert kinds == ["remove", "remove"]

    def test_batch_coalesces_to_one_record(self):
        g = Graph(edges=[(1, 2)])
        base = g.generation
        with g.batch():
            g.add_edge(2, 3)
            g.add_edge(3, 4)
        changes = g.changes_since(base)
        assert len(changes) == 1
        kind, nodes = changes[0]
        assert kind == "add"
        assert set(nodes) == {2, 3, 4}

    def test_batch_with_removal_is_a_remove_record(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        base = g.generation
        with g.batch():
            g.add_edge(3, 4)
            g.remove_edge(1, 2)
        assert g.changes_since(base) == [("remove", ())]

    def test_oversized_batch_degrades_to_bulk(self):
        g = Graph()
        base = g.generation
        with g.batch():
            for i in range(BATCH_TOUCH_LIMIT + 2):
                g.add_node(i)
        assert g.changes_since(base) == [("bulk", ())]

    def test_unknown_generation_is_none(self):
        g = Graph(edges=[(1, 2)])
        assert g.changes_since(g.generation + 5) is None

    def test_overflow_makes_history_unknowable(self):
        g = Graph()
        base = g.generation
        for i in range(LOG_CAPACITY + 10):
            g.add_node(i)
        assert g.changes_since(base) is None
        # Post-overflow history is tracked again.
        recent = g.generation
        g.add_node("fresh")
        assert g.changes_since(recent) == [("add", ("fresh",))]

    def test_copy_starts_a_fresh_log(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        assert clone.changes_since(clone.generation) == []
        assert clone.changes_since(0) is None  # pre-copy history unknowable
        clone.add_edge(2, 3)
        assert clone.changes_since(clone.generation - 1) == [("add", (2, 3))]


class TestFingerprint:
    def test_order_independent(self):
        a = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        b = Graph(edges=[(3, 4), (1, 2), (2, 3)])
        assert a.fingerprint == b.fingerprint
        assert a.structural_key() == b.structural_key()

    def test_mutation_changes_and_reverting_restores(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        original = g.structural_key()
        g.add_edge(1, 3)
        assert g.structural_key() != original
        g.remove_edge(1, 3)
        assert g.structural_key() == original

    def test_different_graphs_differ(self):
        a = Graph(edges=[(1, 2), (3, 4)])
        b = Graph(edges=[(1, 2), (3, 5)])
        assert a.structural_key() != b.structural_key()

    def test_isolated_node_counts(self):
        a = Graph(edges=[(1, 2)])
        b = Graph(nodes=[7], edges=[(1, 2)])
        assert a.structural_key() != b.structural_key()


class TestNeighborMemoization:
    def test_same_object_until_mutation(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        first = g.neighbors(1)
        assert g.neighbors(1) is first
        g.add_edge(1, 4)
        assert g.neighbors(1) == frozenset({2, 3, 4})

    def test_remove_node_invalidates_neighbors(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.neighbors(1)
        g.neighbors(3)
        g.remove_node(2)
        assert g.neighbors(1) == frozenset()
        assert g.neighbors(3) == frozenset()

    def test_remove_edge_invalidates_both_endpoints(self):
        g = Graph(edges=[(1, 2)])
        g.neighbors(1)
        g.neighbors(2)
        g.remove_edge(1, 2)
        assert g.neighbors(1) == frozenset()
        assert g.neighbors(2) == frozenset()

    def test_num_edges_tracks_all_mutations(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        assert g.num_edges == 3
        g.remove_node(2)  # drops two incident edges
        assert g.num_edges == 1
        g.add_edge(1, 4)
        assert g.num_edges == 2


class TestBatchException:
    """A batch body that raises must leave the bookkeeping consistent
    with the mutations that already applied (regression: the old exit
    path committed nothing, leaving generation/change-log stale)."""

    def test_failed_batch_still_bumps_generation(self):
        g = Graph(edges=[(i, i + 1) for i in range(5)])
        base = g.generation
        with pytest.raises(RuntimeError, match="boom"):
            with g.batch():
                g.add_edge(0, 99)
                raise RuntimeError("boom")
        assert g.has_edge(0, 99)  # the mutation DID apply...
        assert g.generation == base + 1  # ...so the counter must say so

    def test_failed_batch_commits_an_opaque_record(self):
        g = Graph(edges=[(i, i + 1) for i in range(5)])
        base = g.generation
        with pytest.raises(RuntimeError):
            with g.batch():
                g.add_edge(0, 99)
                raise RuntimeError
        # Conservative: the caller aborted mid-way, so consumers must not
        # trust a scoped touched set.
        assert g.changes_since(base) == [("bulk", ())]

    def test_failed_batch_with_removal_records_remove(self):
        g = Graph(edges=[(i, i + 1) for i in range(5)])
        base = g.generation
        with pytest.raises(RuntimeError):
            with g.batch():
                g.remove_edge(0, 1)
                raise RuntimeError
        assert g.changes_since(base) == [("remove", ())]

    def test_failed_batch_without_mutations_commits_nothing(self):
        g = Graph(edges=[(0, 1)])
        base = g.generation
        with pytest.raises(RuntimeError):
            with g.batch():
                raise RuntimeError
        assert g.generation == base
        assert g.changes_since(base) == []

    def test_fingerprint_matches_directly_built_graph(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        with pytest.raises(RuntimeError):
            with g.batch():
                g.add_edge(2, 3)
                raise RuntimeError
        assert g.fingerprint == Graph(edges=[(0, 1), (1, 2), (2, 3)]).fingerprint

    def test_inner_exception_caught_outer_commits_add(self):
        g = Graph(edges=[(0, 1)])
        base = g.generation
        with g.batch():
            g.add_edge(1, 2)
            try:
                with g.batch():
                    g.add_edge(2, 3)
                    raise ValueError("inner")
            except ValueError:
                pass
            g.add_edge(3, 4)
        assert g.generation == base + 1
        changes = g.changes_since(base)
        assert len(changes) == 1
        kind, nodes = changes[0]
        assert kind == "add"
        assert {1, 2, 3, 4} <= set(nodes)

    def test_ball_cache_correct_after_failed_batch(self):
        from repro.graphs.traversal import BallCache, ball

        g = Graph(edges=[(i, i + 1) for i in range(5)])
        cache = BallCache(g)
        cache.ball(0, 2)
        with pytest.raises(RuntimeError):
            with g.batch():
                g.add_edge(1, 50)
                raise RuntimeError
        assert cache.ball(0, 2) == ball(g, 0, 2)
        assert 50 in cache.ball(0, 2)
