"""Tests for the path/cycle LCL solvers (MIS, maximal matching)."""

import random

import pytest

from repro.core.colevishkin import round_bound
from repro.core.lcl_paths import (
    is_maximal_independent_set,
    is_maximal_matching,
    maximal_independent_set,
    maximal_matching,
)


def random_ids(n, seed):
    return random.Random(seed).sample(range(10 ** 6), n)


class TestMIS:
    @pytest.mark.parametrize("n", (1, 2, 3, 7, 50, 151))
    def test_paths(self, n):
        ids = random_ids(n, seed=n)
        members, rounds = maximal_independent_set(ids)
        assert is_maximal_independent_set(members, n, cyclic=False)
        assert rounds <= round_bound(max(ids)) + 3

    @pytest.mark.parametrize("n", (3, 4, 5, 60, 61))
    def test_cycles(self, n):
        ids = random_ids(n, seed=n + 100)
        members, rounds = maximal_independent_set(ids, cyclic=True)
        assert is_maximal_independent_set(members, n, cyclic=True)

    def test_empty(self):
        assert maximal_independent_set([]) == (set(), 0)

    def test_singleton(self):
        members, __ = maximal_independent_set([42])
        assert members == {0}

    def test_mis_density(self):
        """On a path, any MIS has at least ceil(n/3) members."""
        n = 90
        members, __ = maximal_independent_set(random_ids(n, 5))
        assert len(members) >= n // 3


class TestMaximalMatching:
    @pytest.mark.parametrize("n", (2, 3, 8, 51, 120))
    def test_paths(self, n):
        ids = random_ids(n, seed=n)
        matching, rounds = maximal_matching(ids)
        assert is_maximal_matching(matching, n, cyclic=False)
        assert rounds <= round_bound(max(ids)) + 4

    @pytest.mark.parametrize("n", (3, 4, 5, 64, 65))
    def test_cycles(self, n):
        ids = random_ids(n, seed=n + 7)
        matching, __ = maximal_matching(ids, cyclic=True)
        assert is_maximal_matching(matching, n, cyclic=True)

    def test_trivial_sizes(self):
        assert maximal_matching([]) == (set(), 0)
        assert maximal_matching([3]) == (set(), 0)

    def test_matching_density(self):
        """A maximal matching on a path covers at least n/3 edges-worth
        of nodes... concretely: at least floor(n/3) edges."""
        n = 99
        matching, __ = maximal_matching(random_ids(n, 11))
        assert len(matching) >= n // 3 - 1


class TestCheckers:
    def test_mis_checker_rejects_dependent_set(self):
        assert not is_maximal_independent_set({0, 1}, 4, cyclic=False)

    def test_mis_checker_rejects_non_maximal(self):
        # Path of 5: {0} leaves 2,3,4 uncovered (2 has no member nbr).
        assert not is_maximal_independent_set({0}, 5, cyclic=False)

    def test_matching_checker_rejects_overlap(self):
        assert not is_maximal_matching({(0, 1), (1, 2)}, 4, cyclic=False)

    def test_matching_checker_rejects_non_maximal(self):
        assert not is_maximal_matching({(0, 1)}, 5, cyclic=False)
        assert is_maximal_matching({(0, 1), (2, 3)}, 5, cyclic=False)