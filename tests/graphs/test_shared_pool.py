"""Tests for the cross-process shared ball pool: seqlock torn-read
discipline, CRC payload integrity, collision safety, sidecar lifecycle,
and the BallCache integration."""

import glob
import json
import os
import struct
import subprocess
import sys
import zlib

import pytest

from repro.graphs.graph import Graph
from repro.graphs.shared_pool import (
    _SLOT,
    SharedBallPool,
    active_pool,
    list_segment_sidecars,
    pid_alive,
    publish_segment,
    retire_segment,
    set_active_pool,
    shared_balls_enabled,
    sweep_stale_segments,
)
from repro.graphs.traversal import BallCache
from repro.observability.metrics import scoped_registry

pytestmark = pytest.mark.skipif(
    not shared_balls_enabled(), reason="shared memory unavailable"
)


@pytest.fixture
def pool():
    segment = SharedBallPool.create(slots=16, slot_bytes=2048)
    if segment is None:
        pytest.skip("could not create a shared-memory segment")
    yield segment
    segment.unlink()


def slot_offset_of(segment: SharedBallPool, key) -> int:
    from repro.graphs.shared_pool import _key_bytes, _key_hash

    return segment._slot_offset(_key_hash(_key_bytes(key)) % segment.slots)


# ----------------------------------------------------------------------
# Slot protocol
# ----------------------------------------------------------------------


def test_put_get_round_trip(pool):
    key = ("struct", (0, 0), 2)
    value = frozenset({(0, 0), (0, 1), (1, 0)})
    assert pool.put(key, value) is True
    assert pool.get(key) == value


def test_get_miss_and_attach_round_trip(pool):
    assert pool.get("absent") is None
    sibling = SharedBallPool.attach(pool.name)
    assert sibling is not None
    pool.put("k", [1, 2, 3])
    assert sibling.get("k") == [1, 2, 3]
    sibling.close()


def test_attach_unknown_segment_returns_none():
    assert SharedBallPool.attach("repro-balls-no-such-segment") is None


def test_torn_slot_is_discarded(pool):
    """A writer SIGKILLed mid-write leaves the generation odd; readers
    must skip the slot rather than deserialize half a payload."""
    key = ("torn",)
    assert pool.put(key, "value")
    offset = slot_offset_of(pool, key)
    gen, khash, paylen, crc = _SLOT.unpack_from(pool._shm.buf, offset)
    assert gen % 2 == 0
    _SLOT.pack_into(pool._shm.buf, offset, gen + 1, khash, paylen, crc)
    assert pool.get(key) is None
    # The next put reclaims the torn slot.
    assert pool.put(key, "fresh")
    assert pool.get(key) == "fresh"


def test_corrupted_payload_fails_crc(pool):
    """Interleaved bytes from racing writers settle under an even
    generation; the CRC is what catches them."""
    key = ("crc",)
    assert pool.put(key, "payload")
    offset = slot_offset_of(pool, key)
    flip = offset + _SLOT.size + 3
    pool._shm.buf[flip] = pool._shm.buf[flip] ^ 0xFF
    assert pool.get(key) is None


def test_oversized_value_is_rejected(pool):
    assert pool.put("big", "x" * (pool.slot_bytes + 1)) is False
    assert pool.get("big") is None


def test_collision_overwrites_and_never_serves_wrong_key():
    segment = SharedBallPool.create(slots=1, slot_bytes=2048)
    if segment is None:
        pytest.skip("could not create a shared-memory segment")
    try:
        segment.put("first", 1)
        segment.put("second", 2)  # single slot: must overwrite
        assert segment.get("second") == 2
        # The evicted key reads as a miss, never as the other entry.
        assert segment.get("first") is None
    finally:
        segment.unlink()


def test_closed_pool_is_inert(pool):
    pool.put("k", 1)
    pool.close()
    assert pool.get("k") is None
    assert pool.put("k", 2) is False
    pool.close()  # idempotent


# ----------------------------------------------------------------------
# Sidecars and the stale sweep
# ----------------------------------------------------------------------


def test_publish_and_retire_sidecar(tmp_path, pool):
    path = publish_segment(tmp_path, pool)
    assert os.path.exists(path)
    ((found, payload),) = list_segment_sidecars(tmp_path)
    assert found == path
    assert payload == {"segment": pool.name, "pid": os.getpid()}
    # The owner is alive, so a sweep must leave it alone.
    assert sweep_stale_segments(tmp_path) == 0
    retire_segment(tmp_path, pool)
    assert list_segment_sidecars(tmp_path) == []


def test_sweep_unlinks_segments_of_dead_owners(tmp_path):
    segment = SharedBallPool.create(slots=4, slot_bytes=1024)
    if segment is None:
        pytest.skip("could not create a shared-memory segment")
    # A subprocess that has already exited donates a provably dead pid.
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    dead_pid = int(probe.stdout)
    assert not pid_alive(dead_pid)
    sidecar = tmp_path / f"balls-{dead_pid}.segment"
    sidecar.write_text(
        json.dumps({"segment": segment.name, "pid": dead_pid}) + "\n"
    )
    assert sweep_stale_segments(tmp_path) == 1
    assert list_segment_sidecars(tmp_path) == []
    assert SharedBallPool.attach(segment.name) is None  # unlinked
    segment.close()


def test_pool_run_leaves_no_segments_behind(tmp_path):
    """A 2-worker campaign creates a segment and must unlink it and its
    sidecar on the way out — including /dev/shm itself."""
    from repro.analysis.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="segment-lifecycle",
        adversaries=("theorem1-grid",),
        victims=("greedy", "akbari"),
        localities=(1,),
        timeout=10.0,
    )
    # Only segments born during this run count: /dev/shm may hold
    # leftovers of unrelated SIGKILLed processes (their owners sweep
    # those via the sidecar + pid-liveness path, keyed by store).
    before = set(glob.glob("/dev/shm/repro-balls-*"))
    outcome = run_campaign(spec, tmp_path / "store", workers=2)
    assert not outcome.errors and len(outcome.rows) == 2
    assert list_segment_sidecars(tmp_path / "store") == []
    assert set(glob.glob("/dev/shm/repro-balls-*")) - before == set()


# ----------------------------------------------------------------------
# BallCache integration
# ----------------------------------------------------------------------


def test_ball_cache_serves_from_shared_segment(pool):
    """With the in-process pool cleared, a miss must be served from the
    shared segment (counted as an shm hit) instead of re-running BFS."""
    graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
    previous = set_active_pool(pool)
    try:
        with scoped_registry():
            BallCache.clear_shared_store()
            first = BallCache(graph).ball(2, 1)
            stats = BallCache.global_stats()
            assert stats["shm_puts"] >= 1
            BallCache.clear_shared_store()  # drop the in-process copy
            second = BallCache(graph).ball(2, 1)
            assert second == first == frozenset({1, 2, 3})
            assert BallCache.global_stats()["shm_hits"] >= 1
    finally:
        assert active_pool() is pool
        set_active_pool(previous)
        BallCache.clear_shared_store()
