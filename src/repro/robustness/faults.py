"""Fault injection: deliberately broken Online-LOCAL algorithms.

Each :class:`FaultyAlgorithm` wraps an honest inner algorithm (greedy by
default) and behaves identically until a trigger step, then injects one
specific failure mode.  They serve two purposes:

* **tests** — proving the supervisor classifies every failure mode as a
  structured forfeit instead of crashing the sweep, and
* **tournament victims** — a standing victim family
  (:func:`faulty_victims`) demonstrating that every adversary degrades
  gracefully against adversarial *implementations*, not just adversarial
  *strategies*.

The paper's theorems quantify over all algorithms; a harness that dies
on the first buggy one is quantifying over less.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from repro.core.baselines import GreedyOnlineColorer
from repro.models.base import AlgorithmView, Color, NodeId, OnlineAlgorithm


class FaultyAlgorithm(OnlineAlgorithm):
    """Base class: honest until ``trigger_step``, faulty afterwards.

    Parameters
    ----------
    inner:
        The honest algorithm to impersonate (default: first-fit greedy).
    trigger_step:
        The 1-based step index at which :meth:`inject` takes over.
    """

    #: Short identifier of the failure mode, used in victim names.
    kind: str = "faulty"

    def __init__(
        self,
        inner: Optional[OnlineAlgorithm] = None,
        trigger_step: int = 3,
    ) -> None:
        self.inner = inner if inner is not None else GreedyOnlineColorer()
        self.trigger_step = trigger_step
        self.name = f"{self.kind}({self.inner.name}@{trigger_step})"
        self.steps_taken = 0

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n=n, locality=locality, num_colors=num_colors)
        self.steps_taken = 0
        self.inner.reset(n=n, locality=locality, num_colors=num_colors)

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        self.steps_taken += 1
        if self.steps_taken >= self.trigger_step:
            return self.inject(view, target)
        return self.inner.step(view, target)

    def inject(self, view: AlgorithmView, target: NodeId):
        """The injected fault; subclasses override."""
        raise NotImplementedError


class CrashingAlgorithm(FaultyAlgorithm):
    """Raises an arbitrary exception — the classic victim crash."""

    kind = "crash-on-step"

    def inject(self, view: AlgorithmView, target: NodeId):
        raise RuntimeError(
            f"injected crash at step {self.steps_taken} (target {target})"
        )


class InvalidColorAlgorithm(FaultyAlgorithm):
    """Returns a color far outside ``1..num_colors``."""

    kind = "invalid-color"

    def inject(self, view: AlgorithmView, target: NodeId):
        return {target: self.num_colors + 97}


class NoneReturningAlgorithm(FaultyAlgorithm):
    """Returns ``None`` instead of a node→color mapping."""

    kind = "returns-none"

    def inject(self, view: AlgorithmView, target: NodeId):
        return None


class InfiniteLoopAlgorithm(FaultyAlgorithm):
    """Spins inside a single ``step`` call, never returning.

    The supervisor's preemptive alarm is expected to interrupt the spin.
    As a safety valve for unsupervised runs, the loop gives up after
    ``max_spin_seconds`` and raises — so even a misconfigured harness
    terminates, classified as a crash rather than a hang.
    """

    kind = "infinite-loop"

    def __init__(
        self,
        inner: Optional[OnlineAlgorithm] = None,
        trigger_step: int = 3,
        max_spin_seconds: float = 10.0,
    ) -> None:
        super().__init__(inner=inner, trigger_step=trigger_step)
        self.max_spin_seconds = max_spin_seconds

    def inject(self, view: AlgorithmView, target: NodeId):
        give_up = time.monotonic() + self.max_spin_seconds
        while time.monotonic() < give_up:
            pass
        raise RuntimeError(
            f"runaway loop escaped supervision for {self.max_spin_seconds}s"
        )


class FlipFlopAlgorithm(FaultyAlgorithm):
    """Nondeterministic flip-flop: tries to recolor earlier commitments.

    Colors the target honestly but also re-submits the previous target
    with a *different* color — a recoloring violation the view tracker
    must reject.
    """

    kind = "flip-flop"

    def inject(self, view: AlgorithmView, target: NodeId):
        assignment = dict(self.inner.step(view, target))
        for earlier in reversed(view.reveal_sequence[:-1]):
            committed = view.colors.get(earlier)
            if committed is not None:
                flipped = committed % self.num_colors + 1
                assignment[earlier] = flipped
                break
        return assignment


def faulty_victims(
    trigger_step: int = 3,
    max_spin_seconds: float = 10.0,
) -> dict:
    """The standing fault-injection victim family for tournaments.

    Returns name → zero-argument factory, mirroring
    :func:`repro.analysis.tournament.default_victims`.
    """
    return {
        "faulty-crash": lambda: CrashingAlgorithm(trigger_step=trigger_step),
        "faulty-invalid-color": lambda: InvalidColorAlgorithm(
            trigger_step=trigger_step
        ),
        "faulty-none": lambda: NoneReturningAlgorithm(trigger_step=trigger_step),
        "faulty-infinite-loop": lambda: InfiniteLoopAlgorithm(
            trigger_step=trigger_step, max_spin_seconds=max_spin_seconds
        ),
        "faulty-flip-flop": lambda: FlipFlopAlgorithm(trigger_step=trigger_step),
    }
