"""The (incremental) Dynamic-LOCAL model [AEL+23], see Section 1.

The adversary constructs the graph dynamically: each step *inserts* a new
node together with its edges to existing nodes.  Following each
insertion, an algorithm with locality ``T`` may adjust the solution —
recolor nodes — only within the ``T``-radius neighborhood of the point of
change, and the solution must be valid (a proper coloring of the current
graph) after every step.

This completes the library's coverage of the paper's five-model
landscape: LOCAL, SLOCAL, Dynamic-LOCAL (incremental, here) and
Dynamic-LOCAL± (with deletions, :class:`FullyDynamicLocalSimulator`),
and Online-LOCAL are all executable.  Since Online-LOCAL is the
strongest model, the paper's Ω-lower bounds transfer to Dynamic-LOCAL;
the demonstration here is the upper-bound side — dynamic algorithms
whose adjustment radius is tracked and enforced.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache, ball

Node = Hashable
Color = int


class DynamicViolation(Exception):
    """The algorithm recolored outside the allowed radius, produced an
    improper intermediate coloring, or exceeded its color budget."""


@dataclass
class DynamicView:
    """What the algorithm sees after an insertion: the T-ball around the
    new node in the *current* graph, with the current colors inside."""

    graph: Graph
    new_node: Node
    colors: Dict[Node, Color]
    locality: int


class DynamicAlgorithm(ABC):
    """A deterministic incremental Dynamic-LOCAL algorithm."""

    name: str = "dynamic-algorithm"

    def reset(self, locality: int, num_colors: int) -> None:
        self.locality = locality
        self.num_colors = num_colors

    @abstractmethod
    def update(self, view: DynamicView) -> Mapping[Node, Color]:
        """Colors to (re)assign within the ball; must cover the new node."""


class DynamicLocalSimulator:
    """Drives a dynamic algorithm through a sequence of node insertions.

    Enforces the model: every recolored node lies within
    :math:`\\mathcal{B}(v, T)` of the inserted node ``v``, colors stay in
    budget, and the coloring is proper after every step (violations raise
    :class:`DynamicViolation` — in lower-bound experiments a violation is
    the adversary's win).
    """

    def __init__(
        self,
        algorithm: DynamicAlgorithm,
        locality: int,
        num_colors: int,
    ) -> None:
        if locality < 0:
            raise ValueError(f"locality must be non-negative, got {locality}")
        self.algorithm = algorithm
        self.locality = locality
        self.num_colors = num_colors
        self.graph = Graph()
        # The graph mutates on every insert, which is exactly the workload
        # scoped invalidation exists for: each insert evicts only balls
        # the new node landed in, instead of flushing the whole cache.
        self._balls = BallCache(self.graph)
        self.colors: Dict[Node, Color] = {}
        self.recolor_counts: Dict[Node, int] = {}
        algorithm.reset(locality=locality, num_colors=num_colors)

    def insert(self, node: Node, neighbors: Iterable[Node] = ()) -> Color:
        """Insert ``node`` adjacent to existing ``neighbors``; run one
        update; enforce the model; return the new node's color."""
        if node in self.graph:
            raise ValueError(f"node {node!r} already inserted")
        neighbors = list(neighbors)
        for nbr in neighbors:
            if nbr not in self.graph:
                raise ValueError(f"neighbor {nbr!r} not in the graph yet")
        with self.graph.batch():  # one generation bump per insertion
            self.graph.add_node(node)
            for nbr in neighbors:
                self.graph.add_edge(node, nbr)

        allowed = self._balls.ball(node, self.locality)
        view = DynamicView(
            graph=self.graph.induced_subgraph(allowed),
            new_node=node,
            colors={u: self.colors[u] for u in allowed if u in self.colors},
            locality=self.locality,
        )
        assignment = dict(self.algorithm.update(view))
        if node not in assignment:
            raise DynamicViolation(
                f"{self.algorithm.name}: inserted node {node!r} not colored"
            )
        for target, color in assignment.items():
            if target not in allowed:
                raise DynamicViolation(
                    f"{self.algorithm.name}: recolored {target!r} outside "
                    f"the {self.locality}-ball of the insertion point"
                )
            if not 1 <= color <= self.num_colors:
                raise DynamicViolation(
                    f"{self.algorithm.name}: color {color} outside "
                    f"1..{self.num_colors}"
                )
            if target in self.colors and self.colors[target] != color:
                self.recolor_counts[target] = (
                    self.recolor_counts.get(target, 0) + 1
                )
            self.colors[target] = color
        self._check_proper(assignment)
        return self.colors[node]

    def _check_proper(self, changed: Optional[Mapping[Node, Color]] = None) -> None:
        """Properness check; colors only change around the modification
        point, so checking edges incident to ``changed`` suffices (a full
        scan is done when ``changed`` is None)."""
        if changed is None:
            candidates = self.graph.nodes()
        else:
            candidates = changed
        for u in candidates:
            if u not in self.graph:
                continue
            color_u = self.colors.get(u)
            if color_u is None:
                continue
            for v in self.graph.neighbors(u):
                if self.colors.get(v) == color_u:
                    raise DynamicViolation(
                        f"improper intermediate coloring: {u!r} ~ {v!r} "
                        f"share color {color_u}"
                    )

    def total_recolorings(self) -> int:
        """How many color *changes* (not initial assignments) occurred."""
        return sum(self.recolor_counts.values())


class FullyDynamicLocalSimulator(DynamicLocalSimulator):
    """The Dynamic-LOCAL± variant [AEL+23]: deletions are allowed too.

    Deleting a node is a modification whose point of change is the set of
    its former neighbors; the algorithm may adjust labels within the
    T-ball of that set.  For coloring problems a deletion never breaks
    properness, so the default repair hook does nothing — but the hook is
    part of the model, and algorithms for other labeling problems (e.g.
    maximal matching, dominating set) would need it.
    """

    def delete(self, node: Node) -> None:
        """Remove ``node``; run the algorithm's repair hook around the
        former neighborhood; enforce the model."""
        if node not in self.graph:
            raise ValueError(f"node {node!r} not in the graph")
        former_neighbors = set(self.graph.neighbors(node))
        self.graph.remove_node(node)
        self.colors.pop(node, None)
        self.recolor_counts.pop(node, None)
        if not former_neighbors:
            return
        allowed = ball(self.graph, former_neighbors, self.locality)
        repair = getattr(self.algorithm, "repair_after_deletion", None)
        if repair is None:
            self._check_proper()
            return
        view = DynamicView(
            graph=self.graph.induced_subgraph(allowed),
            new_node=min(former_neighbors, key=repr),
            colors={u: self.colors[u] for u in allowed if u in self.colors},
            locality=self.locality,
        )
        assignment = dict(repair(view, frozenset(former_neighbors)))
        for target, color in assignment.items():
            if target not in allowed:
                raise DynamicViolation(
                    f"{self.algorithm.name}: repaired {target!r} outside the "
                    f"deletion's {self.locality}-ball"
                )
            if not 1 <= color <= self.num_colors:
                raise DynamicViolation(
                    f"{self.algorithm.name}: color {color} outside "
                    f"1..{self.num_colors}"
                )
            if target in self.colors and self.colors[target] != color:
                self.recolor_counts[target] = (
                    self.recolor_counts.get(target, 0) + 1
                )
            self.colors[target] = color
        self._check_proper(assignment)


class DynamicGreedy(DynamicAlgorithm):
    """Locality-0 greedy: color the new node, never recolor.

    Proper whenever ``num_colors > max degree`` — the dynamic analogue of
    the SLOCAL greedy example, and a baseline showing (Δ+1)-coloring is
    trivial in every model of the sandwich.
    """

    name = "dynamic-greedy"

    def update(self, view: DynamicView) -> Mapping[Node, Color]:
        used = {
            view.colors.get(v)
            for v in view.graph.neighbors(view.new_node)
        }
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {view.new_node: color}
        raise DynamicViolation("dynamic-greedy needs degree+1 colors")


class DynamicBipartiteRecolor(DynamicAlgorithm):
    """Best-effort dynamic 3-coloring of incrementally built bipartite
    graphs: 2-color via the parity visible in the ball, recoloring the
    smaller conflicting side within the ball when parities clash.

    With locality ``T`` this survives insertion sequences whose
    components stay within diameter ~T of each merge point, and fails on
    adversarial sequences — as it must: Theorem 1's Ω(log n) transfers to
    Dynamic-LOCAL through the model sandwich, and
    ``tests/models/test_dynamic_local.py`` exhibits a failing sequence.
    """

    name = "dynamic-bipartite-recolor"

    def update(self, view: DynamicView) -> Mapping[Node, Color]:
        from repro.graphs.traversal import bfs_distances

        node = view.new_node
        neighbor_colors = {
            view.colors[v]
            for v in view.graph.neighbors(node)
            if v in view.colors
        }
        available = [c for c in (1, 2) if c not in neighbor_colors]
        if available:
            return {node: available[0]}
        # Both 1 and 2 blocked: fragments with clashing parities meet
        # here.  Flip 1 <-> 2 on every component holding a 1-colored
        # neighbor, provided all of them are strictly inside the ball
        # (a component touching the ball boundary may continue outside,
        # where we are not allowed to recolor).  Otherwise fall back to
        # color 3 for the new node — and if 3 is blocked too, the
        # algorithm has genuinely lost (the simulator will flag it).
        distances = bfs_distances(view.graph, node)
        flip: Set[Node] = set()
        safe = True
        for v in sorted(view.graph.neighbors(node), key=repr):
            if view.colors.get(v) != 1 or v in flip:
                continue
            component = self._colored_component(view, v, exclude=node)
            if any(
                distances.get(u, view.locality + 1) >= view.locality
                for u in component
            ):
                safe = False
                break
            flip |= component
        if safe and flip:
            assignment = {
                u: (2 if view.colors[u] == 1 else 1)
                for u in flip
                if view.colors.get(u) in (1, 2)
            }
            assignment[node] = 1
            return assignment
        return {node: 3}

    @staticmethod
    def _colored_component(
        view: DynamicView, start: Node, exclude: Node
    ) -> Set[Node]:
        """The colored connected component of ``start`` inside the ball,
        not passing through ``exclude``."""
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nbr in view.graph.neighbors(current):
                if nbr == exclude or nbr in seen:
                    continue
                if nbr in view.colors:
                    seen.add(nbr)
                    stack.append(nbr)
        return seen
