"""Tests for the Definition 1.4 checker."""

import pytest

from repro.families.grids import SimpleGrid
from repro.families.ktree import random_ktree
from repro.families.triangular import TriangularGrid
from repro.graphs.graph import Graph
from repro.verify.liuc import (
    connected_subsets_up_to,
    has_locally_inferable_unique_coloring,
    partition_of_fragment,
    sample_connected_subsets,
)


def test_grids_are_in_L_2_0():
    """Bipartite graphs have locally inferable unique 2-colorings with
    radius 0 — exhaustively on a 3x3 grid."""
    grid = SimpleGrid(3, 3)
    ok, counterexample = has_locally_inferable_unique_coloring(
        grid.graph, k=2, ell=0, exhaustive_max_size=4
    )
    assert ok, counterexample


def test_triangular_grid_in_L_3_1():
    """Triangular grids (degenerate corners removed) are in L_{3,1} —
    sampled fragments of a side-4 grid."""
    tri = TriangularGrid(4)
    fragments = sample_connected_subsets(tri.graph, count=25, max_size=5, seed=3)
    ok, counterexample = has_locally_inferable_unique_coloring(
        tri.graph, k=3, ell=1, fragments=fragments
    )
    assert ok, counterexample


def test_triangular_grid_not_in_L_3_0():
    """Radius 0 is NOT enough for triangular grids: an induced 3-node
    path has partition-inequivalent 3-colorings (the endpoints may or may
    not share a part), while radius 1 pins it via the triangles."""
    tri = TriangularGrid(4)
    path = {(0, 0), (1, 0), (2, 0)}
    assert partition_of_fragment(tri.graph, path, k=3, ell=0) is None
    assert partition_of_fragment(tri.graph, path, k=3, ell=1) is not None


def test_degenerate_corner_breaks_the_property():
    """With the literal paper node set, the pendant corner witnesses a
    Definition 1.4 failure for every finite radius short of the graph."""
    tri = TriangularGrid(3, include_degenerate_corners=True)
    corner_fragment = {(0, 3), (0, 2), (0, 1)}
    assert partition_of_fragment(tri.graph, corner_fragment, k=3, ell=1) is None


def test_ktree_in_L_3_1():
    tree = random_ktree(2, 10, seed=2)
    fragments = sample_connected_subsets(tree.graph, count=15, max_size=4, seed=1)
    ok, counterexample = has_locally_inferable_unique_coloring(
        tree.graph, k=3, ell=1, fragments=fragments
    )
    assert ok, counterexample


def test_path_not_uniquely_3_colorable():
    path = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
    ok, counterexample = has_locally_inferable_unique_coloring(
        path, k=3, ell=1, fragments=[{1, 2, 3}]
    )
    assert not ok
    assert counterexample == {1, 2, 3}


def test_connected_subsets_enumeration():
    path = Graph(edges=[(0, 1), (1, 2)])
    subsets = [frozenset(s) for s in connected_subsets_up_to(path, 2)]
    assert len(subsets) == len(set(subsets))  # no duplicates
    assert set(subsets) == {
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
        frozenset({0, 1}),
        frozenset({1, 2}),
    }


def test_connected_subsets_on_cycle():
    cycle = Graph(edges=[(0, 1), (1, 2), (2, 0)])
    subsets = [frozenset(s) for s in connected_subsets_up_to(cycle, 3)]
    assert len(subsets) == len(set(subsets))
    assert frozenset({0, 1, 2}) in subsets
    assert len(subsets) == 3 + 3 + 1


def test_uncolorable_neighborhood_raises():
    triangle = Graph(edges=[(0, 1), (1, 2), (2, 0)])
    with pytest.raises(ValueError):
        partition_of_fragment(triangle, {0}, k=2, ell=1)


def test_checker_argument_validation():
    grid = SimpleGrid(2, 2)
    with pytest.raises(ValueError):
        has_locally_inferable_unique_coloring(grid.graph, k=2, ell=0)


def test_sampling_reproducible():
    grid = SimpleGrid(4, 4)
    a = sample_connected_subsets(grid.graph, count=5, max_size=4, seed=7)
    b = sample_connected_subsets(grid.graph, count=5, max_size=4, seed=7)
    assert a == b
