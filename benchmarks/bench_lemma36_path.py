"""Experiment L3.6 (Figure 5): forcing b-value k with bounded regions.

Measures, per target level k, the discovered-region length and reveal
count the path builder needs against the long-surviving greedy victim,
and checks both the 2^k recurrence our construction satisfies and the
paper's looser 5^(k+1) T budget.
"""

import pytest

from repro.adversaries.path_builder import PathBuilder
from repro.analysis.tables import render_table
from repro.core.baselines import GreedyOnlineColorer
from repro.models.adaptive import FloatingGridInstance

LEVELS = (1, 2, 3, 4, 5, 6, 7, 8)
T = 1


def build_to(level):
    instance = FloatingGridInstance(
        GreedyOnlineColorer(), locality=T, num_colors=3, declared_n=10 ** 9
    )
    builder = PathBuilder(instance)
    built = builder.build(level)
    assert built is not None, "greedy stays proper on a line"
    lo, hi = instance.fragment_row_extent(built.fragment)
    return built, hi - lo + 1, builder.reveals


def test_lemma36_region_growth():
    rows = []
    prev_region = None
    for level in LEVELS:
        built, region, reveals = build_to(level)
        ours = 2 ** level * (2 * T + 1) + 3 * (2 ** level - 1)
        paper = 5 ** (level + 1) * T
        assert built.b >= level
        assert region <= ours <= paper
        growth = "-" if prev_region is None else f"{region / prev_region:.2f}x"
        rows.append([level, built.b, region, ours, paper, reveals, growth])
        prev_region = region
    print()
    print(f"Lemma 3.6 (T={T}, victim=greedy): region needed to force b >= k")
    print(
        render_table(
            ["k", "b achieved", "region", "2^k bound", "paper 5^(k+1)T", "reveals", "growth"],
            rows,
        )
    )


def test_lemma36_growth_is_at_most_doubling_plus_gap():
    """R(k) <= 2 R(k-1) + 3 empirically, level to level."""
    regions = [build_to(level)[1] for level in LEVELS]
    for smaller, larger in zip(regions, regions[1:]):
        assert larger <= 2 * smaller + 3


@pytest.mark.parametrize("level", (3, 6))
def test_bench_lemma36(benchmark, level):
    built, region, reveals = benchmark(lambda: build_to(level))
    assert built.b >= level
