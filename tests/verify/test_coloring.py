"""Tests for the proper-coloring checkers."""

import pytest

from repro.graphs.graph import Graph
from repro.verify.coloring import (
    assert_proper,
    count_colors,
    find_monochromatic_edge,
    is_proper,
)


@pytest.fixture
def triangle():
    return Graph(edges=[(0, 1), (1, 2), (2, 0)])


def test_proper_coloring(triangle):
    assert is_proper(triangle, {0: 1, 1: 2, 2: 3})
    assert find_monochromatic_edge(triangle, {0: 1, 1: 2, 2: 3}) is None


def test_improper_coloring(triangle):
    coloring = {0: 1, 1: 1, 2: 2}
    assert not is_proper(triangle, coloring)
    edge = find_monochromatic_edge(triangle, coloring)
    assert set(edge) == {0, 1}


def test_partial_coloring(triangle):
    partial = {0: 1, 1: 2}
    assert find_monochromatic_edge(triangle, partial) is None
    assert not is_proper(triangle, partial)  # total required by default
    assert is_proper(triangle, partial, require_total=False)


def test_assert_proper_messages(triangle):
    with pytest.raises(AssertionError, match="uncolored"):
        assert_proper(triangle, {0: 1})
    with pytest.raises(AssertionError, match="monochromatic"):
        assert_proper(triangle, {0: 1, 1: 1, 2: 2})
    with pytest.raises(AssertionError, match="budget"):
        assert_proper(triangle, {0: 1, 1: 2, 2: 5}, max_colors=3)
    assert_proper(triangle, {0: 1, 1: 2, 2: 3}, max_colors=3)


def test_count_colors():
    assert count_colors({0: 1, 1: 2, 2: 1}) == {1, 2}
    assert count_colors({}) == set()
