"""Experiment helpers shared by the benchmark harness.

The central measurement is a *locality threshold*: for a given instance
size and victim/algorithm pairing, the largest locality at which the
adversary still wins, or dually the smallest locality at which an
upper-bound algorithm survives a battery of adversarial reveal orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class ExperimentRecord:
    """One measured point of a sweep, serializable into report tables."""

    experiment: str
    n: int
    parameters: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)


def threshold_locality(
    survives: Callable[[int], bool],
    low: int = 0,
    high: int = 64,
) -> Optional[int]:
    """The smallest locality T in [low, high] for which ``survives(T)``.

    Assumes monotonicity (surviving at T implies surviving at T' > T),
    which holds for the algorithms in this library because a larger ball
    strictly extends the information available.  Returns None when even
    ``high`` fails.

    Binary search: O(log(high-low)) survives() evaluations.
    """
    if not survives(high):
        return None
    lo, hi = low, high
    while lo < hi:
        mid = (lo + hi) // 2
        if survives(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def survival_battery(
    run_once: Callable[[int, int], bool],
    locality: int,
    seeds: List[int],
) -> bool:
    """Whether the algorithm survives ``run_once(locality, seed)`` for
    every seed in the battery."""
    return all(run_once(locality, seed) for seed in seeds)
