"""Tests for the LOCAL model simulator."""

import pytest

from repro.families.grids import SimpleGrid
from repro.graphs.graph import Graph
from repro.models.local import LocalAlgorithm, LocalSimulator, LocalView
from repro.verify.coloring import is_proper


class DegreeColorer(LocalAlgorithm):
    """Colors by the center's degree — a function of the 1-ball only."""

    name = "degree-colorer"

    def color(self, view: LocalView) -> int:
        return view.graph.degree(view.center) + 1


class ViewSizeProbe(LocalAlgorithm):
    name = "view-size-probe"

    def reset(self, n, locality, num_colors):
        super().reset(n, locality, num_colors)
        self.sizes = []

    def color(self, view: LocalView) -> int:
        self.sizes.append(view.graph.num_nodes)
        return 1


def test_views_have_correct_radius():
    grid = SimpleGrid(5, 5)
    probe = ViewSizeProbe()
    sim = LocalSimulator(grid.graph, probe, locality=1, num_colors=9)
    sim.run()
    # Interior nodes see 5 nodes, corners 3, edges 4.
    assert max(probe.sizes) == 5
    assert min(probe.sizes) == 3


def test_output_depends_only_on_view():
    g = Graph(edges=[(0, 1), (1, 2)])
    sim = LocalSimulator(g, DegreeColorer(), locality=1, num_colors=9)
    coloring = sim.run()
    assert coloring[1] == 3
    assert coloring[0] == 2


def test_full_view_enables_proper_coloring():
    """With T >= diameter the canonical LOCAL colorer 2-colors the grid."""
    from repro.core.baselines import CanonicalLocalColorer

    grid = SimpleGrid(4, 4)
    sim = LocalSimulator(grid.graph, CanonicalLocalColorer(), locality=8, num_colors=3)
    coloring = sim.run()
    assert is_proper(grid.graph, coloring)


def test_insufficient_view_fails_somewhere():
    """With a small radius the canonical colorer disagrees across nodes."""
    from repro.core.baselines import CanonicalLocalColorer

    grid = SimpleGrid(8, 8)
    sim = LocalSimulator(grid.graph, CanonicalLocalColorer(), locality=1, num_colors=3)
    coloring = sim.run()
    assert not is_proper(grid.graph, coloring)


def test_color_range_enforced():
    grid = SimpleGrid(3, 3)
    sim = LocalSimulator(grid.graph, DegreeColorer(), locality=1, num_colors=2)
    with pytest.raises(ValueError, match="outside"):
        sim.run()


def test_custom_id_map():
    g = Graph(edges=[(0, 1)])
    sim = LocalSimulator(
        g, DegreeColorer(), locality=1, num_colors=9, id_map={0: 100, 1: 200}
    )
    view = sim.view_of(0)
    assert view.center == 100
    assert view.graph.has_edge(100, 200)


def test_id_map_must_be_injective():
    g = Graph(edges=[(0, 1)])
    with pytest.raises(ValueError):
        LocalSimulator(g, DegreeColorer(), locality=1, num_colors=9, id_map={0: 7, 1: 7})
