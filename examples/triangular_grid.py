#!/usr/bin/env python3
"""Theorem 4 live: (k+1)-coloring a triangular grid with the paper's
type-unification algorithm (Figures 1, 7-10).

Triangular grids have a *locally inferable unique* 3-coloring
(Definition 1.4 with radius 1): any connected fragment's tripartition is
forced by the triangles in its 1-neighborhood (Figure 1).  The
generalized algorithm of Section 5.1.2 exploits this through an oracle,
unifying group *types* (permutations of parts to colors) with Algorithm
1's color-swapping layers when fragments merge.

This script (a) shows the oracle inferring the unique partition of a
random fragment, and (b) runs the full 4-coloring under an adversarial
order, rendering the result.
"""

from repro.core import UnifyColoring
from repro.core.unify import recommended_locality
from repro.families import TriangularGrid
from repro.families.random_graphs import scattered_reveal_order
from repro.models import OnlineLocalSimulator
from repro.oracles import TriangularOracle
from repro.render import render_triangular
from repro.verify import assert_proper
from repro.verify.liuc import sample_connected_subsets


def main() -> None:
    tri = TriangularGrid(16)
    n = tri.num_nodes
    oracle = TriangularOracle()

    # (a) Figure 1: the unique tripartition of a connected fragment.
    fragment = sample_connected_subsets(tri.graph, count=1, max_size=14, seed=5)[0]
    parts = oracle.infer(tri.graph, fragment)
    print(f"Fragment of {len(fragment)} nodes; inferred parts (Figure 1):")
    print(render_triangular(tri, {v: parts[v] for v in fragment}))
    print()

    # (b) The full Theorem 4 run.
    budget = recommended_locality(3, oracle.radius, n)
    print(f"4-coloring the side-16 triangular grid (n={n}) at the paper "
          f"budget T = 3(k-1)log2(n)+l = {budget}")
    algorithm = UnifyColoring(oracle)
    sim = OnlineLocalSimulator(tri.graph, algorithm, locality=budget, num_colors=4)
    order = scattered_reveal_order(sorted(tri.graph.nodes()), seed=11)
    coloring = sim.run(order)
    assert_proper(tri.graph, coloring, max_colors=4)
    print(f"Proper 4-coloring; type swaps performed: {algorithm.swap_count}")
    print()
    print(render_triangular(tri, coloring))


if __name__ == "__main__":
    main()
