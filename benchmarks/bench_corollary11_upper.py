"""Experiment C1.1 (Corollary 1.1): O(log n) upper bound for 3-coloring
bipartite graphs in Online-LOCAL, and the exponential separation from
LOCAL.

Measures, per grid size, the smallest locality at which the Akbari
algorithm survives a battery of adversarial reveal orders, and checks:

* it always survives at the paper's 3·log2(n) budget (the upper bound —
  the content of Corollary 1.1),
* the measured threshold stays strictly below √n (the separation from
  the LOCAL model, where 3-coloring grids needs Θ(√n) [BHK+17]), and
* the LOCAL-model baseline (canonical full-view colorer, run through the
  sandwich adapter) needs Θ(√n)-scale locality on the same orders.

Note on shapes: with n ≤ a few thousand the asymptotic log-vs-polynomial
regime is not separable from 5 data points; the budget bound and the
√n separation are the claims that are decidable at this scale, and both
are asserted.  The best-fit model is printed for the record.
"""


from conftest import akbari_survives, akbari_threshold, paper_akbari_budget
from repro.analysis.experiments import threshold_locality
from repro.analysis.fitting import best_growth_model
from repro.analysis.tables import render_table
from repro.core.baselines import CanonicalLocalColorer
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import scattered_reveal_order
from repro.models.online_local import OnlineLocalSimulator
from repro.models.simulation import LocalAsOnline
from repro.verify.coloring import is_proper

# The full sweep (incl. side 32) runs in repro.analysis.report; the
# bench asserts on a faster subset.
SIDES = (8, 12, 16, 24)


def local_baseline_survives(grid: SimpleGrid, locality: int, seed: int) -> bool:
    sim = OnlineLocalSimulator(
        grid.graph,
        LocalAsOnline(CanonicalLocalColorer()),
        locality=locality,
        num_colors=3,
    )
    order = scattered_reveal_order(sorted(grid.graph.nodes()), seed=seed)
    coloring = sim.run(order)
    return is_proper(grid.graph, coloring)


def measure():
    rows = []
    for side in SIDES:
        n = side * side
        grid = SimpleGrid(side, side)
        budget = paper_akbari_budget(n)
        online = akbari_threshold(side, seeds=range(2), high=budget + 4)
        local = threshold_locality(
            lambda T: all(
                local_baseline_survives(grid, T, seed) for seed in range(2)
            ),
            low=0,
            high=2 * side + 2,
        )
        rows.append([n, side, budget, online, local])
    return rows


def test_corollary11_upper_bound_and_separation():
    rows = measure()
    print()
    print("Corollary 1.1: survival thresholds (Online-LOCAL Akbari vs "
          "LOCAL canonical baseline)")
    print(
        render_table(
            ["n", "sqrt n", "budget 3log2(n)", "akbari threshold",
             "LOCAL baseline threshold"],
            rows,
        )
    )
    for n, side, budget, online, local in rows:
        assert online is not None, f"no survival even at budget+4, n={n}"
        assert online <= budget, (
            f"threshold {online} exceeds the paper budget {budget} at n={n}"
        )
        assert online < side, (
            f"threshold {online} not below sqrt(n)={side}: no separation"
        )
        # The LOCAL baseline needs a constant fraction of the diameter.
        assert local is None or local >= side // 2
    fit = best_growth_model(
        [float(row[0]) for row in rows], [float(row[3]) for row in rows]
    )
    print(f"akbari threshold best-fit: {fit.model} (R^2 = {fit.r_squared:.3f}) "
          f"[shape not decidable at this scale; see EXPERIMENTS.md]")


def test_bench_corollary11(benchmark):
    grid = SimpleGrid(16, 16)
    budget = paper_akbari_budget(256)
    ok = benchmark(lambda: akbari_survives(grid, budget, seed=0))
    assert ok
