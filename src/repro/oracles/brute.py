"""The brute-force oracle: enumerate all proper k-colorings of
:math:`G[\\mathcal{B}(C, \\ell)]` and check Definition 1.4 directly.

Exponential in the neighborhood size — strictly a validation tool.  The
test suite uses it to (a) confirm the fast oracles return the same
partition, and (b) verify membership in :math:`\\mathcal{L}_{k,\\ell}`
for small instances (see :mod:`repro.verify.liuc` for the full property
checker).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import ball
from repro.oracles.base import OracleError, PartitionOracle

Node = Hashable


def proper_colorings(
    graph: Graph, num_colors: int, limit: Optional[int] = None
) -> Iterator[Dict[Node, int]]:
    """Yield proper colorings of ``graph`` with colors ``0..num_colors-1``.

    Backtracking in sorted node order with symmetry breaking on the first
    node is *not* applied — callers comparing colorings up to permutation
    handle symmetry themselves.  ``limit`` caps the number yielded.
    """
    nodes = sorted(graph.nodes(), key=repr)
    assignment: Dict[Node, int] = {}
    produced = 0

    def backtrack(index: int) -> Iterator[Dict[Node, int]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if index == len(nodes):
            produced += 1
            yield dict(assignment)
            return
        node = nodes[index]
        forbidden = {
            assignment[v] for v in graph.neighbors(node) if v in assignment
        }
        for color in range(num_colors):
            if color in forbidden:
                continue
            assignment[node] = color
            yield from backtrack(index + 1)
            del assignment[node]

    yield from backtrack(0)


class BruteForceOracle(PartitionOracle):
    """Definition 1.4 by exhaustive enumeration.

    Enumerates every proper ``num_parts``-coloring of the ℓ-neighborhood
    of the component, restricts each to the component, and checks that
    all restrictions agree up to permutation.  Raises
    :class:`OracleError` if they do not (the graph is then *not* in
    :math:`\\mathcal{L}_{k,\\ell}` as far as this fragment witnesses).
    """

    def __init__(self, num_parts: int, radius: int) -> None:
        if num_parts < 2:
            raise ValueError(f"need at least 2 parts, got {num_parts}")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.num_parts = num_parts
        self.radius = radius

    def infer(self, graph: Graph, component: Set[Node]) -> Dict[Node, int]:
        if not component:
            raise OracleError("cannot partition an empty component")
        neighborhood = ball(graph, component, self.radius)
        sub = graph.induced_subgraph(neighborhood)
        ordered = sorted(component, key=repr)
        reference: Optional[List[int]] = None
        reference_parts: Optional[Dict[Node, int]] = None
        for coloring in proper_colorings(sub, self.num_parts):
            restricted = [coloring[node] for node in ordered]
            signature = _partition_signature(restricted)
            if reference is None:
                reference = signature
                reference_parts = {
                    node: color for node, color in zip(ordered, restricted)
                }
            elif signature != reference:
                raise OracleError(
                    "two neighborhood colorings induce different partitions "
                    "of the component — Definition 1.4 fails here"
                )
        if reference_parts is None:
            raise OracleError(
                f"the neighborhood has no proper {self.num_parts}-coloring"
            )
        return self._normalize(reference_parts)


def _partition_signature(colors: List[int]) -> List[int]:
    """Canonical form of a color sequence up to color permutation."""
    relabel: Dict[int, int] = {}
    signature = []
    for color in colors:
        if color not in relabel:
            relabel[color] = len(relabel)
        signature.append(relabel[color])
    return signature
