"""Common result record for adversary runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class AdversaryError(Exception):
    """The adversary reached a state the paper proves unreachable —
    indicates a bug in the adversary or a dishonest simulator, never a
    legitimate algorithm win."""


@dataclass
class AdversaryResult:
    """Outcome of one adversary-vs-algorithm game.

    Attributes
    ----------
    won:
        Whether the adversary defeated the algorithm.
    reason:
        ``"monochromatic-edge"`` (an explicit improper edge exists in the
        committed coloring), ``"model-violation"`` (the algorithm colored
        an unseen node, recolored a node, or used an out-of-range color),
        or ``"survived"`` (the algorithm produced a locally consistent
        coloring — expected only when its locality exceeds the theorem's
        threshold or it cheats outside the model).
    improper_edge:
        A host-labeled witness edge when reason is monochromatic-edge.
    certificate:
        The b-value certificate explaining *why* the loss was forced
        (Theorems 1 and 2), if one was assembled before the improper edge
        appeared.
    stats:
        Adversary-specific measurements (region length, reveals used,
        achieved b-value, ...), consumed by the benchmarks.
    """

    won: bool
    reason: str
    improper_edge: Optional[Tuple[Any, Any]] = None
    certificate: Optional[Any] = None
    stats: Dict[str, Any] = field(default_factory=dict)
