"""Verification: coloring checkers, structural classifiers, certificates.

Everything an adversary claims is checked here: improper edges are
located explicitly, b-value contradictions are recomputed from committed
colors, and the Definition 1.4 membership of the graph families is
validated by exhaustive enumeration on small instances.
"""

from repro.verify.coloring import (
    assert_proper,
    count_colors,
    find_monochromatic_edge,
    is_proper,
)
from repro.verify.gadget_props import (
    colorful_lines,
    confined_colors,
    classify_gadget,
)
from repro.verify.liuc import has_locally_inferable_unique_coloring
from repro.verify.certificates import (
    CycleCertificate,
    TorusCertificate,
    verify_cycle_certificate,
    verify_torus_certificate,
)

__all__ = [
    "assert_proper",
    "count_colors",
    "find_monochromatic_edge",
    "is_proper",
    "colorful_lines",
    "confined_colors",
    "classify_gadget",
    "has_locally_inferable_unique_coloring",
    "CycleCertificate",
    "TorusCertificate",
    "verify_cycle_certificate",
    "verify_torus_certificate",
]
