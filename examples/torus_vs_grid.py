#!/usr/bin/env python3
"""Theorem 2 live: the same algorithm that wins on grids at O(log n)
locality loses on odd toroidal and cylindrical grids at any locality
below ~√n/4.

The adversary reveals two rows whose T-balls are disjoint bands, then —
because the algorithm cannot tell a band from its mirror image — picks
the second band's orientation so the two oppositely-directed row cycles
have b-values that do NOT cancel, violating Equation (1).  No proper
3-coloring can complete such a partial coloring.
"""

import math

from repro.adversaries import TorusAdversary
from repro.analysis.tables import render_table
from repro.core import AkbariBipartiteColoring
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import scattered_reveal_order
from repro.models import OnlineLocalSimulator
from repro.verify import is_proper


def main() -> None:
    # On the grid, Akbari at budget T survives.
    side = 16
    grid = SimpleGrid(side, side)
    budget = 3 * math.ceil(math.log2(side * side))
    sim = OnlineLocalSimulator(
        grid.graph, AkbariBipartiteColoring(), locality=budget, num_colors=3
    )
    coloring = sim.run(scattered_reveal_order(sorted(grid.graph.nodes()), seed=1))
    print(f"Simple {side}x{side} grid, T={budget}: "
          f"{'proper' if is_proper(grid.graph, coloring) else 'IMPROPER'}")
    print()

    # On odd tori and cylinders, the adversary wins at every tested T.
    rows = []
    for topology in ("torus", "cylinder"):
        for T in (1, 2, 3):
            adversary = TorusAdversary(locality=T, topology=topology)
            result = adversary.run(AkbariBipartiteColoring())
            rows.append(
                [
                    topology,
                    T,
                    f"{adversary.side}x{adversary.side}",
                    "DEFEATED" if result.won else "survived",
                    result.stats.get("b_sum", "-"),
                    str(result.improper_edge) if result.improper_edge else "-",
                ]
            )
    print("Theorem 2: two-row orientation adversary "
          "(b(C1)+b(C2) must be 0 for proper colorings, but both are odd):")
    print(
        render_table(
            ["topology", "T", "size", "verdict", "b1+b2", "witness edge"], rows
        )
    )


if __name__ == "__main__":
    main()
