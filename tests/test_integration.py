"""End-to-end integration tests crossing all subsystems.

Each test is a miniature of one of the paper's headline statements, run
through the full stack: family construction, model simulation, algorithm,
adversary, and verification.
"""

import math


from repro.adversaries import (
    GadgetAdversary,
    GridAdversary,
    TorusAdversary,
    reduce_to_grid,
)
from repro.analysis.experiments import threshold_locality
from repro.core import AkbariBipartiteColoring, GreedyOnlineColorer, UnifyColoring
from repro.core.unify import recommended_locality
from repro.families import SimpleGrid, TriangularGrid
from repro.families.random_graphs import random_reveal_order
from repro.models import OnlineLocalSimulator
from repro.oracles import CliqueChainOracle, TriangularOracle
from repro.verify import assert_proper, is_proper


class TestCorollary11TightBound:
    """Θ(log n) for 3-coloring bipartite graphs: upper and lower sides."""

    def test_upper_side(self):
        """Akbari at the paper's budget survives adversarial orders."""
        grid = SimpleGrid(16, 16)
        budget = 3 * math.ceil(math.log2(256)) + 2
        for seed in range(2):
            sim = OnlineLocalSimulator(
                grid.graph, AkbariBipartiteColoring(), locality=budget, num_colors=3
            )
            order = random_reveal_order(sorted(grid.graph.nodes()), seed=seed)
            assert_proper(grid.graph, sim.run(order), max_colors=3)

    def test_lower_side(self):
        """The same algorithm run at T = 1, 2 is defeated by the
        Theorem 1 adversary."""
        for T in (1, 2):
            result = GridAdversary(locality=T).run(AkbariBipartiteColoring())
            assert result.won


class TestTheorem2Separation:
    """Grids vs tori: the SAME algorithm family that wins on grids at
    O(log n) locality loses on tori at any locality below √n/4."""

    def test_torus_defeat_scales_with_side(self):
        for T in (1, 2):
            result = TorusAdversary(locality=T).run(AkbariBipartiteColoring())
            assert result.won
            assert result.stats["side"] >= 4 * T + 4


class TestTheorem3:
    def test_gadget_defeat_with_generous_colors(self):
        """(2k-2)-coloring fails even though 2k-2 > k: the budget is not
        the obstacle, the global row/column commitment is."""
        result = GadgetAdversary(k=4, locality=2).run(GreedyOnlineColorer())
        assert result.won
        # 2k-2 = 6 colors available for a 4-partite graph.


class TestTheorem4And5:
    def test_triangular_grid_both_sides(self):
        tri = TriangularGrid(10)
        budget = recommended_locality(3, 1, tri.num_nodes)
        alg = UnifyColoring(TriangularOracle())
        sim = OnlineLocalSimulator(tri.graph, alg, locality=budget, num_colors=4)
        order = random_reveal_order(sorted(tri.graph.nodes()), seed=0)
        assert_proper(tri.graph, sim.run(order), max_colors=4)

    def test_hierarchy_reduction_defeat(self):
        inner = UnifyColoring(CliqueChainOracle(3, 3))
        result = GridAdversary(locality=1).run(reduce_to_grid(inner, k=3))
        assert result.won


class TestThresholdMeasurement:
    """The benchmark machinery end-to-end: find the smallest locality at
    which Akbari survives a fixed adversarial order on a small grid."""

    def test_threshold_exists_and_is_positive(self):
        grid = SimpleGrid(12, 12)
        order = random_reveal_order(sorted(grid.graph.nodes()), seed=5)

        def survives(T: int) -> bool:
            sim = OnlineLocalSimulator(
                grid.graph, AkbariBipartiteColoring(), locality=T, num_colors=3
            )
            try:
                coloring = sim.run(list(order))
            except Exception:
                return False
            return is_proper(grid.graph, coloring)

        threshold = threshold_locality(survives, low=0, high=40)
        assert threshold is not None
        assert 1 <= threshold <= 40
