"""Tests for the baseline colorers."""

from repro.core.baselines import (
    CanonicalLocalColorer,
    CheatingCoordinateColorer,
    GreedyOnlineColorer,
    GreedySLocalColorer,
)
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import random_reveal_order
from repro.models.local import LocalSimulator
from repro.models.online_local import OnlineLocalSimulator
from repro.verify.coloring import is_proper


def test_greedy_online_proper_with_enough_colors():
    grid = SimpleGrid(8, 8)
    sim = OnlineLocalSimulator(grid.graph, GreedyOnlineColorer(), locality=1, num_colors=5)
    coloring = sim.run(random_reveal_order(sorted(grid.graph.nodes()), seed=2))
    assert is_proper(grid.graph, coloring)


def test_greedy_online_never_crashes_when_cornered():
    """With 2 colors on a grid, greedy must eventually go improper but
    still colors everything."""
    grid = SimpleGrid(5, 5)
    sim = OnlineLocalSimulator(grid.graph, GreedyOnlineColorer(), locality=1, num_colors=2)
    coloring = sim.run(random_reveal_order(sorted(grid.graph.nodes()), seed=0))
    assert set(coloring) == set(grid.graph.nodes())


def test_greedy_slocal_matches_greedy_online_decisions():
    grid = SimpleGrid(6, 6)
    order = random_reveal_order(sorted(grid.graph.nodes()), seed=5)
    sims = [
        OnlineLocalSimulator(grid.graph, alg, locality=1, num_colors=4)
        for alg in (GreedyOnlineColorer(), GreedySLocalColorer())
    ]
    colorings = [sim.run(list(order)) for sim in sims]
    assert colorings[0] == colorings[1]


def test_canonical_local_full_view():
    grid = SimpleGrid(5, 6)
    sim = LocalSimulator(
        grid.graph, CanonicalLocalColorer(), locality=11, num_colors=3
    )
    assert is_proper(grid.graph, sim.run())


def test_cheating_colorer_beats_any_order_with_leaked_labels():
    """The out-of-model control: with coordinates, 2-coloring a grid needs
    zero locality and no memory."""
    grid = SimpleGrid(10, 10)
    sim = OnlineLocalSimulator(
        grid.graph,
        CheatingCoordinateColorer(),
        locality=0,
        num_colors=3,
        leak_labels=True,
    )
    coloring = sim.run(random_reveal_order(sorted(grid.graph.nodes()), seed=9))
    assert is_proper(grid.graph, coloring)
    assert set(coloring.values()) <= {1, 2}
