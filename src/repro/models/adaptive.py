"""Adaptive Online-LOCAL instances: the host graph is committed lazily.

The lower-bound proofs exploit the defining power of the Online-LOCAL
adversary: while two discovered regions are disconnected *from the
viewpoint of the algorithm*, the adversary may still decide how they fit
together in the final input graph — their relative distances, directions,
and labelings (Section 3.2: "the adversary has the flexibility to adjust
the directions of these components and the distances between these
components").

Two mechanisms cover everything the paper's adversaries need:

* :class:`FloatingGridInstance` — fragments of an (effectively unbounded)
  simple grid, each with its own local coordinate frame.  The adversary
  reveals nodes inside fragments, then *merges* fragments by committing a
  relative translation and optional horizontal reflection.  Used by the
  Lemma 3.6 path builder and the Theorem 1 adversary, where the gap
  length ℓ ∈ {2, 3} between discovered regions is chosen after the
  colors are seen.

* :class:`LateAutomorphismInstance` — a fixed host graph with declared
  *fragment regions*; each region comes with a set of full-host
  automorphisms that fix it setwise.  While reveals stay inside a region,
  all candidate automorphisms generate literally identical views, so the
  adversary may pick one after seeing the colors.  Used by the Theorem 2
  (reflect one row band of a torus/cylinder) and Theorem 3 (transpose the
  suffix gadget fragment) adversaries.

Both classes log every reveal and provide :meth:`audit`, which replays
the whole game against the committed host graph and verifies that every
view shown to the algorithm was exactly the induced subgraph
:math:`G_i` required by the model — adversary wins are machine-checked,
never asserted.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.families.grids import SimpleGrid
from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache
from repro.models.base import Color, NodeId, OnlineAlgorithm, ViewTracker
from repro.observability.metrics import BoundCounter
from repro.observability.trace import TRACER

Coord = Tuple[int, int]
HostNode = Hashable

_REVEALS = BoundCounter("reveals_total")


class ConsistencyError(Exception):
    """Raised when an adversary move would falsify an earlier view."""


@lru_cache(maxsize=None)
def _diamond_offsets(radius: int) -> Tuple[Coord, ...]:
    """All L1 offsets of norm ≤ ``radius`` (translation-invariant, so
    memoized once per radius instead of rebuilt per reveal)."""
    return tuple(
        (dx, dy)
        for dx in range(-radius, radius + 1)
        for dy in range(-(radius - abs(dx)), radius - abs(dx) + 1)
    )


def _plane_ball(center: Coord, radius: int) -> Set[Coord]:
    """The L1 ball (diamond) around ``center`` in the infinite grid Z^2."""
    x0, y0 = center
    return {(x0 + dx, y0 + dy) for dx, dy in _diamond_offsets(radius)}


def _l1(a: Coord, b: Coord) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class _Fragment:
    """A connected-ish revealed region with its own integer frame."""

    __slots__ = ("seen", "revealed", "alive")

    def __init__(self) -> None:
        self.seen: Dict[Coord, NodeId] = {}
        self.revealed: List[Coord] = []
        self.alive = True


class FloatingGridInstance:
    """A simple-grid instance whose geometry is committed lazily.

    Parameters
    ----------
    algorithm:
        The Online-LOCAL algorithm under attack.
    locality:
        The algorithm's locality budget ``T``.
    num_colors:
        Color budget (3 for the paper's grid adversaries).
    declared_n:
        The value of ``n`` told to the algorithm.  The adversaries
        declare the paper's :math:`\\sqrt{n} \\times \\sqrt{n}` grid but
        only materialize the bounding box actually touched, which is
        sound because every revealed node stays ≥ T away from the
        materialized boundary.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        locality: int,
        num_colors: int,
        declared_n: int,
    ) -> None:
        self.locality = locality
        self.tracker = ViewTracker(
            algorithm, n=declared_n, locality=locality, num_colors=num_colors
        )
        self._fragments: Dict[int, _Fragment] = {}
        self._next_fragment = 0
        self._log: List[Tuple[NodeId, FrozenSet[NodeId]]] = []
        # Populated by commit():
        self.host: Optional[SimpleGrid] = None
        self._host_id_of: Dict[Coord, NodeId] = {}
        self._host_node_of_id: Dict[NodeId, Coord] = {}
        self._committed_offsets: Dict[int, Coord] = {}

    # ------------------------------------------------------------------
    # Fragment phase
    # ------------------------------------------------------------------
    def new_fragment(self) -> int:
        """Declare a fresh fragment; returns its handle."""
        if self.host is not None:
            raise ConsistencyError("cannot create fragments after commit")
        handle = self._next_fragment
        self._next_fragment += 1
        self._fragments[handle] = _Fragment()
        return handle

    def reveal(self, fragment: int, coord: Coord) -> Color:
        """Reveal the node at ``coord`` in the fragment's local frame.

        Extends the fragment's seen region by the T-ball (a full diamond
        — fragments are implicitly far from every grid border until
        commit) and runs one algorithm step.
        """
        if self.host is not None:
            raise ConsistencyError("use reveal_committed after commit")
        frag = self._fragments[fragment]
        if not frag.alive:
            raise ConsistencyError(f"fragment {fragment} was merged away")
        fresh = [
            c for c in sorted(_plane_ball(coord, self.locality)) if c not in frag.seen
        ]
        fresh_ids = []
        for c in fresh:
            node_id = self._new_id(frag, c)
            fresh_ids.append(node_id)
        edges = []
        for c in fresh:
            c_id = frag.seen[c]
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nbr = (c[0] + dx, c[1] + dy)
                nbr_id = frag.seen.get(nbr)
                if nbr_id is not None:
                    edges.append((c_id, nbr_id))
        self.tracker.extend(fresh_ids, edges)
        frag.revealed.append(coord)
        target = frag.seen[coord]
        color = self.tracker.reveal(target)
        self._log.append((target, frozenset(fresh_ids)))
        _REVEALS.inc()
        if TRACER.enabled:
            TRACER.event(
                "reveal",
                model="floating-grid",
                fragment=fragment,
                node=coord,
                id=target,
                color=color,
                fresh=len(fresh_ids),
            )
        return color

    def _new_id(self, frag: _Fragment, coord: Coord) -> NodeId:
        node_id = self._id_counter = getattr(self, "_id_counter", -1) + 1
        frag.seen[coord] = node_id
        return node_id

    def fragment_color(self, fragment: int, coord: Coord) -> Optional[Color]:
        """The committed color at a fragment-frame coordinate, or None."""
        frag = self._fragments[fragment]
        node_id = frag.seen.get(coord)
        if node_id is None:
            return None
        return self.tracker.colors.get(node_id)

    def fragment_row_extent(self, fragment: int, y: int = 0) -> Tuple[int, int]:
        """The (min x, max x) of the fragment's seen nodes on row ``y``."""
        xs = [x for (x, yy) in self._fragments[fragment].seen if yy == y]
        if not xs:
            raise ValueError(f"fragment {fragment} has no seen nodes on row {y}")
        return min(xs), max(xs)

    def merge(
        self,
        frag_a: int,
        frag_b: int,
        dx: int,
        dy: int,
        reflect: bool = False,
    ) -> None:
        """Fold fragment ``frag_b`` into ``frag_a``'s frame.

        A node at ``(x, y)`` in b's frame lands at ``(dx - x, dy + y)``
        when ``reflect`` else ``(dx + x, dy + y)``.  The two seen regions
        must end up at L1 distance ≥ 2 (disjoint and non-adjacent) —
        otherwise earlier views, which showed the fragments as
        disconnected, would be falsified.

        Raises
        ------
        ConsistencyError
            If the placement would overlap or touch the regions.
        """
        if self.host is not None:
            raise ConsistencyError("cannot merge after commit")
        if frag_a == frag_b:
            raise ValueError("cannot merge a fragment with itself")
        a = self._fragments[frag_a]
        b = self._fragments[frag_b]
        if not (a.alive and b.alive):
            raise ConsistencyError("merge involves a dead fragment")

        def transform(coord: Coord) -> Coord:
            x, y = coord
            return (dx - x, dy + y) if reflect else (dx + x, dy + y)

        moved = {transform(c): node_id for c, node_id in b.seen.items()}
        for coord in moved:
            for existing in self._near(a.seen, coord, 1):
                raise ConsistencyError(
                    f"merge places b-node at {coord} within distance 1 of "
                    f"a-node at {existing}; earlier views showed them "
                    f"disconnected"
                )
        a.seen.update(moved)
        a.revealed.extend(transform(c) for c in b.revealed)
        b.alive = False
        del self._fragments[frag_b]
        if TRACER.enabled:
            TRACER.event(
                "fragment-merge",
                into=frag_a,
                merged=frag_b,
                dx=dx,
                dy=dy,
                reflect=reflect,
            )

    @staticmethod
    def _near(seen: Dict[Coord, NodeId], coord: Coord, radius: int) -> List[Coord]:
        """Seen coords within L1 distance ``radius`` of ``coord``."""
        x, y = coord
        hits = []
        for ddx in range(-radius, radius + 1):
            for ddy in range(-(radius - abs(ddx)), radius - abs(ddx) + 1):
                candidate = (x + ddx, y + ddy)
                if candidate in seen:
                    hits.append(candidate)
        return hits

    # ------------------------------------------------------------------
    # Commit phase
    # ------------------------------------------------------------------
    def commit(self, reference: Optional[int] = None) -> SimpleGrid:
        """Fix the host grid: bounding box of all seen nodes plus a T margin.

        Remaining fragments are stacked vertically with gaps of
        ``2T + 2`` so no earlier view is falsified.  After commit, use
        :meth:`reveal_committed` with ``(x, y)`` coordinates in the
        *reference* fragment's frame (default: the lowest live handle;
        other fragments' offsets are available via
        :meth:`committed_offset`).
        """
        if self.host is not None:
            raise ConsistencyError("already committed")
        if not self._fragments:
            raise ConsistencyError("nothing revealed; nothing to commit")
        # Stack fragments: the reference fragment keeps its frame;
        # others are translated below it.
        handles = sorted(self._fragments)
        if reference is not None:
            if reference not in self._fragments:
                raise ConsistencyError(
                    f"reference fragment {reference} is not alive"
                )
            handles.remove(reference)
            handles.insert(0, reference)
        global_seen: Dict[Coord, NodeId] = {}
        global_revealed: List[Coord] = []
        floor = None
        for handle in handles:
            frag = self._fragments[handle]
            ys = [c[1] for c in frag.seen]
            xs = [c[0] for c in frag.seen]
            if floor is None:
                offset = (0, 0)
            else:
                offset = (0, floor - max(ys) - (2 * self.locality + 2))
            self._committed_offsets[handle] = offset
            for (x, y), node_id in frag.seen.items():
                global_seen[(x + offset[0], y + offset[1])] = node_id
            global_revealed.extend(
                (x + offset[0], y + offset[1]) for (x, y) in frag.revealed
            )
            floor = min(c[1] + offset[1] for c in frag.seen)

        xs = [c[0] for c in global_seen]
        ys = [c[1] for c in global_seen]
        margin = self.locality
        min_x, max_x = min(xs) - margin, max(xs) + margin
        min_y, max_y = min(ys) - margin, max(ys) + margin
        rows = max_y - min_y + 1
        cols = max_x - min_x + 1
        self.host = SimpleGrid(rows, cols)
        # The host is fixed from here on: every post-commit reveal and the
        # final audit query balls on it, so they share one cache.
        self._balls = BallCache(self.host.graph)
        self._origin = (min_x, min_y)

        def to_host(coord: Coord) -> Coord:
            return (coord[1] - min_y, coord[0] - min_x)

        self._to_host = to_host
        for coord, node_id in global_seen.items():
            host_coord = to_host(coord)
            self._host_id_of[host_coord] = node_id
            self._host_node_of_id[node_id] = host_coord
        self._host_revealed = [to_host(c) for c in global_revealed]
        self._fragments.clear()
        return self.host

    def committed_offset(self, fragment: int) -> Coord:
        """The translation applied to a fragment's frame at commit time."""
        return self._committed_offsets[fragment]

    def reveal_committed(self, coord: Coord) -> Color:
        """Reveal a node after commit, by fragment-0 frame coordinates."""
        if self.host is None:
            raise ConsistencyError("commit() first")
        host_coord = self._to_host(coord)
        return self._reveal_host(host_coord)

    def _reveal_host(self, host_coord: Coord) -> Color:
        region = self._balls.ball(host_coord, self.locality)
        fresh = sorted(c for c in region if c not in self._host_id_of)
        fresh_ids = []
        for c in fresh:
            node_id = self._id_counter = getattr(self, "_id_counter", -1) + 1
            self._host_id_of[c] = node_id
            self._host_node_of_id[node_id] = c
            fresh_ids.append(node_id)
        edges = []
        for c in fresh:
            c_id = self._host_id_of[c]
            for nbr in self.host.graph.neighbors(c):
                nbr_id = self._host_id_of.get(nbr)
                if nbr_id is not None:
                    edges.append((c_id, nbr_id))
        self.tracker.extend(fresh_ids, edges)
        target = self._host_id_of[host_coord]
        self._host_revealed.append(host_coord)
        color = self.tracker.reveal(target)
        self._log.append((target, frozenset(fresh_ids)))
        _REVEALS.inc()
        if TRACER.enabled:
            TRACER.event(
                "reveal",
                model="floating-grid",
                phase="committed",
                node=host_coord,
                id=target,
                color=color,
                fresh=len(fresh_ids),
            )
        return color

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def coloring(self) -> Dict[Coord, Color]:
        """Committed colors keyed by host ``(row, col)`` coordinates."""
        if self.host is None:
            raise ConsistencyError("commit() before reading the host coloring")
        return {
            self._host_node_of_id[node_id]: color
            for node_id, color in self.tracker.colors.items()
        }

    def color_at(self, fragment_coord: Coord) -> Optional[Color]:
        """Color of a node given in fragment-0 frame coordinates."""
        if self.host is None:
            raise ConsistencyError("commit() before reading colors by frame")
        node_id = self._host_id_of.get(self._to_host(fragment_coord))
        if node_id is None:
            return None
        return self.tracker.colors.get(node_id)

    def audit(self) -> None:
        """Replay the whole game against the committed host grid.

        Verifies that every reveal added exactly the recorded fresh ids
        and that the final view equals the host-induced subgraph on the
        seen region.  Raises :class:`ConsistencyError` on any mismatch.
        """
        if self.host is None:
            raise ConsistencyError("commit() before audit")
        # Derive the true host-coordinate reveal order from the log (the
        # log is in play order; per-fragment bookkeeping is not).
        seen: Set[Coord] = set()
        for target_id, fresh_ids in self._log:
            host_coord = self._host_node_of_id.get(target_id)
            if host_coord is None:
                raise ConsistencyError(
                    f"revealed id {target_id} has no committed host position"
                )
            region = self._balls.ball(host_coord, self.locality)
            recomputed = frozenset(
                self._host_id_of[c] for c in region if c not in seen
            )
            if recomputed != fresh_ids:
                raise ConsistencyError(
                    f"view growth at {host_coord} was "
                    f"{sorted(fresh_ids)} but host replay gives "
                    f"{sorted(recomputed)}"
                )
            seen |= region
        expected = self.host.graph.induced_subgraph(seen).relabel(
            {c: self._host_id_of[c] for c in seen}
        )
        if expected != self.tracker.view_graph:
            raise ConsistencyError("final view differs from host-induced subgraph")


class LateAutomorphismInstance:
    """A fixed host whose fragment labelings are committed lazily.

    The adversary declares *fragment regions* up front, each with a named
    set of full-host automorphisms fixing the region setwise.  While all
    reveals keep their balls inside a region, the views generated under
    any candidate automorphism are identical, so the adversary may pick
    the automorphism after seeing the algorithm's colors.  Once every
    fragment is committed the rest of the graph can be revealed freely.
    """

    def __init__(
        self,
        host: Graph,
        algorithm: OnlineAlgorithm,
        locality: int,
        num_colors: int,
        declared_n: Optional[int] = None,
    ) -> None:
        self.host = host
        self.locality = locality
        self._balls = BallCache(host)
        self.tracker = ViewTracker(
            algorithm,
            n=declared_n if declared_n is not None else host.num_nodes,
            locality=locality,
            num_colors=num_colors,
        )
        self._regions: Dict[int, Set[HostNode]] = {}
        self._autos: Dict[int, Dict[str, Dict[HostNode, HostNode]]] = {}
        self._committed: Dict[int, str] = {}
        self._next_fragment = 0
        # During the fragment phase, ids map to *pre-image* host labels.
        self._pre_id_of: Dict[Tuple[int, HostNode], NodeId] = {}
        self._pre_node_of: Dict[NodeId, Tuple[int, HostNode]] = {}
        self._frag_seen: Dict[int, Set[HostNode]] = {}
        self._frag_revealed: Dict[int, List[HostNode]] = {}
        # After commits, ids map to true host nodes.
        self._id_of_host: Dict[HostNode, NodeId] = {}
        self._host_of_id: Dict[NodeId, HostNode] = {}
        self._id_counter = -1
        self._log: List[Tuple[NodeId, FrozenSet[NodeId]]] = []
        self._host_revealed: List[HostNode] = []
        self._free_phase = False

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add_fragment(
        self,
        region: Set[HostNode],
        automorphisms: Dict[str, Dict[HostNode, HostNode]],
    ) -> int:
        """Declare a fragment region with candidate automorphisms.

        Every automorphism must be a full-host automorphism fixing the
        region setwise; ``"identity"`` is always available implicitly.
        Regions must be pairwise disjoint and non-adjacent.
        """
        region = set(region)
        for node in region:
            if node not in self.host:
                raise ValueError(f"region node {node!r} not in host")
        for other in self._regions.values():
            if region & other:
                raise ValueError("fragment regions must be disjoint")
            for u in region:
                for v in self.host.neighbors(u):
                    if v in other:
                        raise ValueError("fragment regions must be non-adjacent")
        for name, mapping in automorphisms.items():
            self._check_automorphism(mapping, region, name)
        handle = self._next_fragment
        self._next_fragment += 1
        self._regions[handle] = region
        autos = dict(automorphisms)
        autos.setdefault("identity", {node: node for node in self.host.nodes()})
        self._autos[handle] = autos
        self._frag_seen[handle] = set()
        self._frag_revealed[handle] = []
        return handle

    def _check_automorphism(
        self,
        mapping: Dict[HostNode, HostNode],
        region: Set[HostNode],
        name: str,
    ) -> None:
        if set(mapping) != set(self.host.nodes()):
            raise ValueError(f"automorphism {name!r} must cover every host node")
        if set(mapping.values()) != set(self.host.nodes()):
            raise ValueError(f"automorphism {name!r} is not a bijection")
        if {mapping[node] for node in region} != region:
            raise ValueError(f"automorphism {name!r} does not fix the region setwise")
        for u, v in self.host.edges():
            if not self.host.has_edge(mapping[u], mapping[v]):
                raise ValueError(f"automorphism {name!r} does not preserve edges")

    # ------------------------------------------------------------------
    # Fragment phase
    # ------------------------------------------------------------------
    def reveal_in_fragment(self, fragment: int, node: HostNode) -> Color:
        """Reveal a node whose T-ball lies inside the fragment's region."""
        if fragment in self._committed:
            raise ConsistencyError(f"fragment {fragment} already committed")
        region = self._regions[fragment]
        ball_nodes = self._balls.ball(node, self.locality)
        if not ball_nodes <= region:
            outside = next(iter(ball_nodes - region))
            raise ConsistencyError(
                f"ball of {node!r} leaves the fragment region at {outside!r}"
            )
        seen = self._frag_seen[fragment]
        fresh = sorted(ball_nodes - seen, key=repr)
        fresh_ids = []
        for u in fresh:
            self._id_counter += 1
            self._pre_id_of[(fragment, u)] = self._id_counter
            self._pre_node_of[self._id_counter] = (fragment, u)
            fresh_ids.append(self._id_counter)
        seen |= ball_nodes
        edges = []
        for u in fresh:
            u_id = self._pre_id_of[(fragment, u)]
            for v in self.host.neighbors(u):
                if v in seen:
                    edges.append((u_id, self._pre_id_of[(fragment, v)]))
        self.tracker.extend(fresh_ids, edges)
        target = self._pre_id_of[(fragment, node)]
        self._frag_revealed[fragment].append(node)
        color = self.tracker.reveal(target)
        self._log.append((target, frozenset(fresh_ids)))
        _REVEALS.inc()
        if TRACER.enabled:
            TRACER.event(
                "reveal",
                model="late-automorphism",
                fragment=fragment,
                node=node,
                id=target,
                color=color,
                fresh=len(fresh_ids),
            )
        return color

    def fragment_color(self, fragment: int, pre_node: HostNode) -> Optional[Color]:
        """The committed color of a pre-image node of an uncommitted
        fragment (the adversary inspects colors before choosing the
        automorphism)."""
        node_id = self._pre_id_of.get((fragment, pre_node))
        if node_id is None:
            return None
        return self.tracker.colors.get(node_id)

    def commit_fragment(self, fragment: int, automorphism: str) -> None:
        """Fix a fragment's labeling to the named automorphism."""
        if fragment in self._committed:
            raise ConsistencyError(f"fragment {fragment} already committed")
        mapping = self._autos[fragment][automorphism]
        self._committed[fragment] = automorphism
        if TRACER.enabled:
            TRACER.event(
                "fragment-commit", fragment=fragment, automorphism=automorphism
            )
        for pre_node in self._frag_seen[fragment]:
            node_id = self._pre_id_of[(fragment, pre_node)]
            true_node = mapping[pre_node]
            self._id_of_host[true_node] = node_id
            self._host_of_id[node_id] = true_node
        for pre_node in self._frag_revealed[fragment]:
            self._host_revealed.append(mapping[pre_node])

    # ------------------------------------------------------------------
    # Free phase
    # ------------------------------------------------------------------
    def reveal(self, node: HostNode) -> Color:
        """Reveal any host node; all fragments must be committed first."""
        if set(self._regions) - set(self._committed):
            raise ConsistencyError("commit every fragment before free reveals")
        self._free_phase = True
        region = self._balls.ball(node, self.locality)
        fresh = sorted((u for u in region if u not in self._id_of_host), key=repr)
        fresh_ids = []
        for u in fresh:
            self._id_counter += 1
            self._id_of_host[u] = self._id_counter
            self._host_of_id[self._id_counter] = u
            fresh_ids.append(self._id_counter)
        edges = []
        for u in fresh:
            u_id = self._id_of_host[u]
            for v in self.host.neighbors(u):
                v_id = self._id_of_host.get(v)
                if v_id is not None:
                    edges.append((u_id, v_id))
        self.tracker.extend(fresh_ids, edges)
        target = self._id_of_host[node]
        self._host_revealed.append(node)
        color = self.tracker.reveal(target)
        self._log.append((target, frozenset(fresh_ids)))
        _REVEALS.inc()
        if TRACER.enabled:
            TRACER.event(
                "reveal",
                model="late-automorphism",
                phase="free",
                node=node,
                id=target,
                color=color,
                fresh=len(fresh_ids),
            )
        return color

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def coloring(self) -> Dict[HostNode, Color]:
        """Committed colors keyed by true host nodes."""
        if set(self._regions) - set(self._committed):
            raise ConsistencyError("commit every fragment before reading colors")
        return {
            self._host_of_id[node_id]: color
            for node_id, color in self.tracker.colors.items()
        }

    def audit(self) -> None:
        """Replay against the host; raise ConsistencyError on any mismatch."""
        if set(self._regions) - set(self._committed):
            raise ConsistencyError("commit every fragment before audit")
        if len(self._log) != len(self._host_revealed):
            raise ConsistencyError("reveal log length mismatch")
        # The per-fragment reveals were logged in play order globally, but
        # _host_revealed groups fragment reveals at commit time.  Rebuild
        # the true host order from the log via the final id map.
        ordered_hosts = [self._host_of_id[target] for target, __ in self._log]
        seen: Set[HostNode] = set()
        for (target_id, fresh_ids), node in zip(self._log, ordered_hosts):
            region = self._balls.ball(node, self.locality)
            recomputed = frozenset(
                self._id_of_host[u] for u in region if u not in seen
            )
            if recomputed != fresh_ids:
                raise ConsistencyError(
                    f"view growth at {node!r} was {sorted(fresh_ids)} but "
                    f"host replay gives {sorted(recomputed)}"
                )
            seen |= region
        expected = self.host.induced_subgraph(seen).relabel(
            {u: self._id_of_host[u] for u in seen}
        )
        if expected != self.tracker.view_graph:
            raise ConsistencyError("final view differs from host-induced subgraph")
