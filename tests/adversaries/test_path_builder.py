"""Tests for the Lemma 3.6 path builder."""

import pytest

from repro.adversaries.path_builder import PathBuilder, _direction
from repro.core.baselines import GreedyOnlineColorer
from repro.core.akbari import AkbariBipartiteColoring
from repro.models.adaptive import FloatingGridInstance


def make_builder(algorithm, locality):
    instance = FloatingGridInstance(
        algorithm, locality=locality, num_colors=3, declared_n=10 ** 9
    )
    return instance, PathBuilder(instance)


def test_base_case():
    instance, builder = make_builder(AkbariBipartiteColoring(), locality=2)
    built = builder.build(0)
    assert built is not None
    assert built.b == 0
    assert built.path == (0, 0)


@pytest.mark.parametrize("level", (1, 2, 3, 4, 5))
def test_forces_b_value_vs_akbari(level):
    """Against truncated Akbari the builder must reach each level with a
    proper partial coloring (Akbari with T=2 stays locally consistent on
    a line for a while)."""
    instance, builder = make_builder(AkbariBipartiteColoring(), locality=2)
    built = builder.build(level)
    if built is None:
        # Akbari went improper — also a legitimate adversary win.
        assert builder.improper
        return
    assert built.b >= level
    # The achieved b-value must be recomputable from committed colors.
    assert builder.path_b(built.fragment, *built.path) == built.b


def test_region_growth_is_bounded():
    """Region length obeys R(k) <= 2^k (2T+1) + 3(2^k - 1) and the
    paper's looser 5^(k+1) T bound."""
    level = 4
    T = 2
    instance, builder = make_builder(GreedyOnlineColorer(), locality=T)
    built = builder.build(level)
    assert built is not None, "greedy stays proper through the build"
    lo, hi = instance.fragment_row_extent(built.fragment)
    length = hi - lo + 1
    ours = 2 ** level * (2 * T + 1) + 3 * (2 ** level - 1)
    assert length <= ours
    assert length <= 5 ** (level + 1) * T


def test_improper_short_circuit():
    """Against greedy with 2 usable colors the victim breaks quickly and
    the builder reports the win instead of looping."""

    class TwoColorGreedy(GreedyOnlineColorer):
        name = "two-color-greedy"

        def step(self, view, target):
            used = {view.colors.get(v) for v in view.graph.neighbors(target)}
            for color in (1, 2):
                if color not in used:
                    return {target: color}
            return {target: 1}

    instance, builder = make_builder(TwoColorGreedy(), locality=1)
    built = builder.build(8)
    # A 2-coloring of a row never reaches b >= 2 without going improper
    # somewhere (parities force it), so the builder must stop early.
    assert built is None or built.b >= 8


def test_parity_gap_choice_is_deterministic():
    """Two runs against the same deterministic victim are identical."""
    results = []
    for __ in range(2):
        instance, builder = make_builder(AkbariBipartiteColoring(), locality=2)
        built = builder.build(3)
        summary = (
            (built.path, built.b) if built is not None else ("improper",)
        )
        results.append((summary, builder.reveals))
    assert results[0] == results[1]


def test_direction_helper():
    assert _direction((0, 5)) == 1
    assert _direction((5, 0)) == -1
    assert _direction((2, 2)) == 1


def test_negative_level_rejected():
    instance, builder = make_builder(GreedyOnlineColorer(), locality=1)
    with pytest.raises(ValueError):
        builder.build(-1)
