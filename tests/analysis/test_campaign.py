"""Tests for the campaign engine: spec expansion, store dedupe,
kill-and-resume, and the adaptive threshold search."""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.analysis.campaign import (
    AdversaryRef,
    CampaignError,
    CampaignSpec,
    ThresholdSearchSpec,
    _Bisection,
    campaign_from_dict,
    campaign_status,
    hash_of,
    load_campaign,
    run_campaign,
    run_threshold_search,
    threshold_table,
)
from repro.analysis.store import ResultStore
from repro.registry import FIXED_VICTIM

#: A two-adversary, two-victim, two-locality sweep: 8 fast games.
SMALL = dict(
    name="small",
    adversaries=("theorem1-grid", "theorem2-cylinder"),
    victims=("greedy", "akbari"),
    localities=(0, 1),
)


# ----------------------------------------------------------------------
# Spec construction and expansion
# ----------------------------------------------------------------------


def test_expansion_is_deterministic():
    one = CampaignSpec(**SMALL).expand()
    two = CampaignSpec(**SMALL).expand()
    assert [hash_of(s) for s in one] == [hash_of(s) for s in two]
    assert len(one) == 8
    # Locality-major, then adversary, then victim.
    assert [(s.locality, s.adversary, s.victim) for s in one[:3]] == [
        (0, "theorem1-grid", "greedy"),
        (0, "theorem1-grid", "akbari"),
        (0, "theorem2-cylinder", "greedy"),
    ]


def test_expansion_plays_fixed_victim_once():
    spec = CampaignSpec(
        adversaries=("theorem5-reduction",), victims=("greedy", "akbari")
    )
    games = spec.expand()
    assert len(games) == 1
    assert games[0].victim == FIXED_VICTIM


def test_tournament_is_a_prebaked_campaign():
    spec = CampaignSpec.tournament(locality=1)
    games = spec.expand()
    assert spec.name == "tournament(T=1)"
    assert all(game.locality == 1 for game in games)


def test_from_dict_round_trips_through_payload():
    spec = CampaignSpec(**SMALL)
    again = campaign_from_dict(spec.to_payload())
    assert again == spec
    assert [hash_of(s) for s in again.expand()] == [
        hash_of(s) for s in spec.expand()
    ]


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(CampaignError, match="unknown campaign spec fields"):
        CampaignSpec.from_dict({"name": "x", "adversarys": []})
    with pytest.raises(CampaignError, match="unknown campaign kind"):
        campaign_from_dict({"kind": "mystery"})


def test_locality_range_expansion():
    spec = CampaignSpec.from_dict(
        {"localities": {"start": 0, "stop": 6, "step": 2}}
    )
    assert spec.localities == (0, 2, 4, 6)
    with pytest.raises(CampaignError, match="locality range"):
        CampaignSpec.from_dict({"localities": {"start": 0}})


def test_adversary_ref_forms():
    assert AdversaryRef.of("theorem1-grid") == AdversaryRef("theorem1-grid")
    ref = AdversaryRef.of(
        {"name": "theorem3-gadget(2k-2)", "params": {"k": 4}}
    )
    assert ref.params == (("k", 4),)
    assert ref.label() == "theorem3-gadget(2k-2)[k=4]"
    with pytest.raises(CampaignError):
        AdversaryRef.of({"params": {"k": 4}})


def test_validate_rejects_unknown_names():
    with pytest.raises(Exception, match="unknown adversary"):
        CampaignSpec(adversaries=("nope",)).validate()


def test_load_campaign_json(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(
        '{"kind": "threshold", "adversaries": ["theorem1-grid"], '
        '"victims": ["greedy"], "low": 0, "high": 3}'
    )
    spec = load_campaign(path)
    assert isinstance(spec, ThresholdSearchSpec)
    assert (spec.low, spec.high) == (0, 3)
    with pytest.raises(CampaignError, match="no campaign spec"):
        load_campaign(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Hash semantics
# ----------------------------------------------------------------------


def test_hash_excludes_run_plumbing():
    """Timeout and journal/trace paths are machine properties, not game
    identity — changing them must not invalidate stored rows."""
    fast = CampaignSpec(**SMALL, timeout=1.0).expand()
    slow = CampaignSpec(**SMALL, timeout=99.0).expand(
        journal_path="j.jsonl", trace_path="t.jsonl"
    )
    assert [hash_of(s) for s in fast] == [hash_of(s) for s in slow]


def test_hash_includes_step_budget_and_params():
    plain = CampaignSpec(**SMALL).expand()
    budgeted = CampaignSpec(**SMALL, step_budget=10).expand()
    assert hash_of(plain[0]) != hash_of(budgeted[0])
    small_k = ThresholdSearchSpec(
        adversaries=(AdversaryRef.of(
            {"name": "theorem3-gadget(2k-2)", "params": {"k": 3}}
        ),),
        victims=("greedy",),
    )
    big_k = ThresholdSearchSpec(
        adversaries=(AdversaryRef.of(
            {"name": "theorem3-gadget(2k-2)", "params": {"k": 4}}
        ),),
        victims=("greedy",),
    )
    assert hash_of(
        small_k.game(small_k.adversaries[0], "greedy", 1)
    ) != hash_of(big_k.game(big_k.adversaries[0], "greedy", 1))


# ----------------------------------------------------------------------
# Store dedupe and budgeted resume
# ----------------------------------------------------------------------


def test_second_run_plays_nothing(tmp_path):
    spec = CampaignSpec(**SMALL)
    first = run_campaign(spec, tmp_path / "store")
    assert (first.played, first.deduped) == (8, 0)
    assert not first.errors
    second = run_campaign(spec, tmp_path / "store")
    assert (second.played, second.deduped) == (0, 8)
    assert second.rows == first.rows


def test_overlapping_campaigns_share_rows(tmp_path):
    """A different spec covering some of the same games dedupes them."""
    run_campaign(CampaignSpec(**SMALL), tmp_path / "store")
    overlap = CampaignSpec(
        name="overlap",
        adversaries=("theorem1-grid",),
        victims=("greedy", "akbari", "local-canonical"),
        localities=(1,),
    )
    outcome = run_campaign(overlap, tmp_path / "store")
    assert outcome.deduped == 2  # greedy/akbari at T=1 came from `small`
    assert outcome.played == 1  # only local-canonical was new


def test_budgeted_runs_converge_to_uninterrupted(tmp_path):
    """Stopping after max_games and re-running reaches the exact store an
    uninterrupted run produces, with zero games replayed."""
    spec = CampaignSpec(**SMALL)
    reference = run_campaign(spec, tmp_path / "ref")

    partial = run_campaign(spec, tmp_path / "store", max_games=3)
    assert (partial.played, partial.deduped) == (3, 0)
    resumed = run_campaign(spec, tmp_path / "store", max_games=None)
    assert (resumed.played, resumed.deduped) == (5, 3)
    assert resumed.rows == reference.rows

    store = ResultStore(tmp_path / "store")
    hashes = [row["spec_hash"] for row in store.rows()]
    assert len(hashes) == len(set(hashes))  # no game ever stored twice


def test_worker_pool_matches_serial(tmp_path):
    spec = CampaignSpec(**SMALL)
    serial = run_campaign(spec, tmp_path / "serial")
    parallel = run_campaign(spec, tmp_path / "parallel", workers=2)
    assert parallel.rows == serial.rows
    assert (parallel.played, parallel.deduped) == (8, 0)


def test_errors_are_reported_not_stored(tmp_path, monkeypatch):
    """A game whose factory blows up lands in errors and is retried by
    the next run, never recorded as a row."""
    from repro.analysis.worker_pool import shutdown_warm_pool
    from repro.registry import ADVERSARIES

    # This registration lives inside a test function, so only fork
    # workers can inherit it: forkserver children re-import modules
    # (and re-run module-level registrations in real __main__ scripts)
    # but never see in-process, function-local registry mutations.
    monkeypatch.setenv("REPRO_POOL_START", "fork")
    shutdown_warm_pool()  # drop any parked forkserver fleet

    @ADVERSARIES.register("test-broken")
    def _broken(locality, **params):
        raise RuntimeError("rigged to fail")

    try:
        spec = CampaignSpec(
            name="broken", adversaries=("test-broken",), victims=("greedy",)
        )
        outcome = run_campaign(spec, tmp_path / "store", retries=0)
        assert outcome.played == 0
        assert len(outcome.errors) == 1
        assert "rigged to fail" in outcome.errors[0]["error"]
        assert len(ResultStore(tmp_path / "store")) == 0
    finally:
        ADVERSARIES.unregister("test-broken")
        shutdown_warm_pool()  # don't park fork workers for later tests


# ----------------------------------------------------------------------
# Kill-and-resume (the acceptance scenario)
# ----------------------------------------------------------------------

_KILL_SCRIPT = """
import sys
from repro.analysis.campaign import ThresholdSearchSpec, run_threshold_search

spec = ThresholdSearchSpec(
    name="kill-test",
    adversaries=("theorem1-grid", "theorem2-cylinder"),
    victims=("greedy", "akbari", "local-canonical"),
    low=0,
    high=1,
)
run_threshold_search(spec, sys.argv[1], workers=2)
"""


def _kill_spec() -> ThresholdSearchSpec:
    return ThresholdSearchSpec(
        name="kill-test",
        adversaries=("theorem1-grid", "theorem2-cylinder"),
        victims=("greedy", "akbari", "local-canonical"),
        low=0,
        high=1,
    )


def _store_snapshot(root):
    """Store contents as a comparable value: hash -> full row."""
    return ResultStore(root).index()


@pytest.mark.slow
def test_sigkill_mid_campaign_resumes_with_zero_replays(tmp_path):
    """SIGKILL a threshold-search campaign at a random point; the resumed
    run must (a) replay zero stored games and (b) end with a store
    row-for-row identical to an uninterrupted run's."""
    import random

    reference_results, _ = run_threshold_search(_kill_spec(), tmp_path / "ref")

    store_dir = tmp_path / "killed"
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, os.fspath(store_dir)], env=env
    )
    try:
        # Wait until at least one game is durably stored, then kill at a
        # random moment while the campaign is (most likely) still going.
        deadline = time.time() + 60
        while time.time() < deadline:
            if len(_store_snapshot(store_dir)) >= 1:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        time.sleep(random.uniform(0.0, 0.3))
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait()

    stored_before = _store_snapshot(store_dir)
    assert len(stored_before) >= 1, "kill landed before any game was stored"

    results, outcome = run_threshold_search(_kill_spec(), store_dir)
    assert not outcome.errors
    # Zero replays: everything already on disk was deduped, not replayed.
    assert outcome.deduped >= len(stored_before)
    assert all(digest in outcome.rows for digest in stored_before)

    assert _store_snapshot(store_dir) == _store_snapshot(tmp_path / "ref")
    assert results == reference_results

    # And the run ledger shows the played/deduped split.
    statuses, runs = campaign_status(store_dir)
    assert any(status.kind == "threshold" for status in statuses)
    assert runs[-1]["played"] + runs[-1]["deduped"] >= len(stored_before)


# ----------------------------------------------------------------------
# Adaptive bisection
# ----------------------------------------------------------------------


def _drive(bisection, survives_at):
    probes = []
    while not bisection.done:
        probe = bisection.next_probe()
        probes.append(probe)
        bisection.feed(probe, survives=survives_at(probe))
    return probes


def test_bisection_adversary_wins_everywhere():
    b = _Bisection(0, 4)
    probes = _drive(b, lambda t: False)
    assert probes == [4]
    assert b.threshold is None


def test_bisection_finds_exact_threshold():
    for true_threshold in range(0, 5):
        b = _Bisection(0, 4)
        _drive(b, lambda t, k=true_threshold: t >= k)
        assert b.threshold == true_threshold, true_threshold


def test_bisection_probe_count_is_logarithmic():
    b = _Bisection(0, 1024)
    probes = _drive(b, lambda t: t >= 700)
    assert b.threshold == 700
    assert len(probes) <= 12  # 1 (check-high) + log2(1024) + 1


def test_threshold_search_end_to_end(tmp_path):
    spec = ThresholdSearchSpec(
        adversaries=("theorem1-grid",), victims=("greedy",), low=0, high=2
    )
    results, outcome = run_threshold_search(spec, tmp_path / "store")
    (result,) = results
    assert result.converged
    assert result.threshold is None  # the lower bound held through high
    assert result.probes == 1  # losing at high decides immediately
    assert result.n is not None
    table = threshold_table(results)
    assert ">2" in table and "theorem1-grid" in table

    # A rerun derives the identical answer from the store alone.
    again, outcome2 = run_threshold_search(spec, tmp_path / "store")
    assert again == results
    assert (outcome2.played, outcome2.deduped) == (0, 1)


def test_campaign_status_reports_progress(tmp_path):
    spec = CampaignSpec(**SMALL)
    run_campaign(spec, tmp_path / "store", max_games=3)
    statuses, runs = campaign_status(tmp_path / "store")
    (status,) = statuses
    assert (status.done, status.total) == (3, 8)
    assert runs[0]["played"] == 3
    run_campaign(spec, tmp_path / "store")
    statuses, runs = campaign_status(tmp_path / "store")
    assert (statuses[0].done, statuses[0].total) == (8, 8)
    assert (runs[-1]["played"], runs[-1]["deduped"]) == (5, 3)


def test_backoff_delay_full_jitter_windows_and_cap():
    from repro.analysis.campaign import BACKOFF_CAP_SECONDS, _backoff_delay

    class Rng:
        def __init__(self):
            self.windows = []

        def uniform(self, low, high):
            self.windows.append((low, high))
            return high

    rng = Rng()
    delays = [_backoff_delay(attempt, 0.5, rng=rng) for attempt in (1, 2, 3, 4)]
    assert delays == [0.5, 1.0, 2.0, 2.0]  # doubles, then clamps at the cap
    assert rng.windows == [(0.0, 0.5), (0.0, 1.0), (0.0, 2.0), (0.0, 2.0)]
    assert BACKOFF_CAP_SECONDS == 2.0
    # Zero base means zero delay and no draw at all.
    before = list(rng.windows)
    assert _backoff_delay(5, 0.0, rng=rng) == 0.0
    assert rng.windows == before
    # A custom cap clamps tighter.
    assert _backoff_delay(10, 1.0, cap=0.3, rng=rng) == 0.3


# ----------------------------------------------------------------------
# Phase attribution in the run ledger
# ----------------------------------------------------------------------


def test_run_ledger_records_phases_when_timed(tmp_path):
    from repro.observability.timers import phase_timers_enabled

    assert not phase_timers_enabled()
    run_campaign(CampaignSpec(**SMALL), tmp_path / "store", timers=True)
    assert not phase_timers_enabled()  # restored afterwards

    entry = ResultStore(tmp_path / "store").runs()[-1]
    assert entry["wall_seconds"] > 0
    phases = entry["phases"]
    assert phases and all(s >= 0 for s in phases.values())
    assert "spec-expand" in phases
    from repro.analysis.executor import resolve_workers

    if resolve_workers(None) > 1:
        # Pooled runs (REPRO_WORKERS > 1): compute and fsync happen in
        # the workers; the parent's own phases are the IPC/idle split.
        assert "ack-wait" in phases
        assert "worker:compute" in phases
    else:
        # Serial runs time compute directly; fsync rides along.
        assert "compute" in phases
        assert "store-fsync" in phases
    assert 0.0 < entry["phase_coverage"]


def test_run_ledger_omits_phases_when_untimed(tmp_path):
    run_campaign(CampaignSpec(**SMALL), tmp_path / "store", timers=False)
    entry = ResultStore(tmp_path / "store").runs()[-1]
    assert entry["wall_seconds"] > 0
    assert "phases" not in entry
    assert "phase_coverage" not in entry


def test_threshold_search_ledger_records_phases(tmp_path):
    spec = ThresholdSearchSpec(
        name="phase-probe",
        adversaries=("theorem1-grid",),
        victims=("greedy",),
        low=0,
        high=2,
    )
    run_threshold_search(spec, tmp_path / "store", timers=True)
    entry = ResultStore(tmp_path / "store").runs()[-1]
    assert entry["kind"] == "threshold"
    assert entry["wall_seconds"] > 0
    assert entry["phases"]


# ----------------------------------------------------------------------
# Spec schema versioning
# ----------------------------------------------------------------------


def test_versioned_spec_accepted_silently():
    import warnings

    from repro.analysis.campaign import SPEC_VERSION

    payload = {"version": SPEC_VERSION, "kind": "sweep", "name": "v",
               "victims": ["greedy"], "localities": [1]}
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        spec = campaign_from_dict(payload)
    assert spec.name == "v"


def test_versionless_spec_accepted_as_v1_with_warning():
    payload = {"kind": "sweep", "name": "old", "victims": ["greedy"]}
    with pytest.warns(FutureWarning, match="no 'version' field"):
        spec = campaign_from_dict(payload)
    assert spec.name == "old"
    # campaign_from_dict normalizes before dispatching to the per-class
    # from_dict, so a versionless payload warns exactly once.
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        campaign_from_dict(payload)
    assert sum(1 for w in caught if w.category is FutureWarning) == 1


def test_unknown_spec_version_rejected():
    from repro.analysis.campaign import SpecVersionError

    payload = {"version": 99, "kind": "sweep", "victims": ["greedy"]}
    with pytest.raises(SpecVersionError, match="version 99"):
        campaign_from_dict(payload)
    with pytest.raises(SpecVersionError):
        CampaignSpec.from_dict({"version": 99})
    with pytest.raises(SpecVersionError):
        ThresholdSearchSpec.from_dict({"version": "2"})


def test_spec_version_error_is_a_campaign_error():
    from repro.analysis.campaign import SpecVersionError

    assert issubclass(SpecVersionError, CampaignError)


def test_payloads_carry_the_spec_version():
    from repro.analysis.campaign import SPEC_VERSION

    assert CampaignSpec(victims=("greedy",)).to_payload()["version"] \
        == SPEC_VERSION
    assert ThresholdSearchSpec(victims=("greedy",)).to_payload()["version"] \
        == SPEC_VERSION
    # Round-tripping a payload is silent: emitted payloads are versioned.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        campaign_from_dict(CampaignSpec(victims=("greedy",)).to_payload())


def test_example_specs_are_versioned():
    """The shipped example specs declare the schema version (the
    migration the version field's introduction required)."""
    import glob
    import json

    examples = sorted(glob.glob(
        os.path.join(os.path.dirname(__file__), "..", "..",
                     "examples", "campaigns", "*.json")
    ))
    assert examples, "example campaign specs should exist"
    for path in examples:
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["version"] == 1, path
