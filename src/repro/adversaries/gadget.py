"""The Theorem 3 adversary: Ω(n) for (2k-2)-coloring k-partite graphs.

The hard instance is the gadget chain :math:`G^*` (Section 4).  Under a
proper (2k-2)-coloring every gadget is exactly one of row-colorful /
column-colorful (Claim 4.5), and consecutive gadgets must agree
(Lemma 4.6) — so all gadgets agree.

The adversary reveals the first and last gadgets; with locality
``T ≤ (length - 3) / 2`` their discovered regions are disjoint, so the
algorithm cannot tell rows from columns in the far fragment.  Transposing
every gadget is a full-host automorphism, so the adversary commits the
far fragment *transposed* whenever the two end gadgets initially agree —
forcing row-colorful vs column-colorful ends.  Completing the coloring
then necessarily creates a monochromatic edge somewhere along the chain.
"""

from __future__ import annotations

from typing import Optional

from repro.adversaries.result import AdversaryError, AdversaryResult
from repro.families.gadgets import GadgetChain
from repro.models.adaptive import LateAutomorphismInstance
from repro.models.base import AlgorithmError, OnlineAlgorithm
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER
from repro.verify.coloring import find_monochromatic_edge
from repro.verify.gadget_props import classify_gadget


class GadgetAdversary:
    """Defeats (2k-2)-coloring of the gadget chain at locality o(n).

    Parameters
    ----------
    k:
        Gadget dimension (the graph is k-partite).  Needs ``k >= 3`` —
        for k = 2 the statement is false (Corollary 1.1).
    locality:
        The victim's locality budget ``T``.
    length:
        Number of gadgets; defaults to the smallest value keeping the two
        end fragments disjoint, ``2T + 3``.
    colors:
        The color budget ``c``; defaults to the theorem's ``2k - 2`` and
        may be anything in ``k .. 2k - 2`` — Claims 4.3/4.5 only need "at
        most 2k-2", so the same adversary realizes Corollary 1.3
        ((k+1)-coloring k-partite graphs has locality Ω(n) for k ≥ 3) by
        setting ``colors = k + 1``.
    """

    def __init__(
        self,
        k: int,
        locality: int,
        length: Optional[int] = None,
        colors: Optional[int] = None,
    ) -> None:
        if k < 3:
            raise ValueError(f"the gadget adversary needs k >= 3, got {k}")
        if locality < 0:
            raise ValueError(f"locality must be non-negative, got {locality}")
        minimum = 2 * locality + 3
        if length is None:
            length = minimum
        if length < minimum:
            raise ValueError(
                f"chain length {length} too small for locality {locality}: "
                f"need at least {minimum} gadgets"
            )
        if colors is None:
            colors = 2 * k - 2
        if not k <= colors <= 2 * k - 2:
            raise ValueError(
                f"the gadget argument covers k <= colors <= 2k-2 = "
                f"{2 * k - 2}, got {colors}"
            )
        self.k = k
        self.locality = locality
        self.length = length
        self.colors = colors

    # ------------------------------------------------------------------
    def run(self, algorithm: OnlineAlgorithm) -> AdversaryResult:
        """Play the full game against ``algorithm``."""
        stats = {
            "k": self.k,
            "locality": self.locality,
            "length": self.length,
            "colors": self.colors,
            "declared_n": self.length * self.k * self.k,
        }
        try:
            return self._play(algorithm, stats)
        except AlgorithmError as error:
            return AdversaryResult(
                won=True,
                reason="model-violation",
                stats={**stats, "violation": str(error)},
            )

    def _play(self, algorithm: OnlineAlgorithm, stats: dict) -> AdversaryResult:
        k, T, length = self.k, self.locality, self.length
        chain = GadgetChain(k, length)
        host = chain.graph
        instance = LateAutomorphismInstance(
            host, algorithm, locality=T, num_colors=self.colors
        )
        transpose = chain.transpose()
        region_head = {
            (g, i, j)
            for g in range(0, T + 1)
            for i in range(k)
            for j in range(k)
        }
        region_tail = {
            (g, i, j)
            for g in range(length - 1 - T, length)
            for i in range(k)
            for j in range(k)
        }
        frag_head = instance.add_fragment(region_head, {})
        frag_tail = instance.add_fragment(region_tail, {"transpose": transpose})

        improper = False
        for node in chain.gadget_nodes(0):
            instance.reveal_in_fragment(frag_head, node)
            improper |= instance.tracker.monochromatic_in_last_step()
        for node in chain.gadget_nodes(length - 1):
            instance.reveal_in_fragment(frag_tail, node)
            improper |= instance.tracker.monochromatic_in_last_step()

        instance.commit_fragment(frag_head, "identity")
        if improper:
            instance.commit_fragment(frag_tail, "identity")
            return self._finish(instance, host, stats)

        head_coloring = {
            node: instance.fragment_color(frag_head, node)
            for node in chain.gadget_nodes(0)
        }
        tail_coloring = {
            node: instance.fragment_color(frag_tail, node)
            for node in chain.gadget_nodes(length - 1)
        }
        head_class = classify_gadget(
            [chain.row(0, i) for i in range(k)],
            [chain.column(0, j) for j in range(k)],
            head_coloring,
        )
        tail_class = classify_gadget(
            [chain.row(length - 1, i) for i in range(k)],
            [chain.column(length - 1, j) for j in range(k)],
            tail_coloring,
        )
        stats["head_class"] = head_class
        stats["tail_class"] = tail_class
        if head_class in ("both", "neither") or tail_class in ("both", "neither"):
            # Claim 4.5 says this is impossible for a proper coloring, so
            # an improper edge must already exist inside a gadget.
            instance.commit_fragment(frag_tail, "identity")
            result = self._finish(instance, host, stats)
            if not result.won:
                raise AdversaryError(
                    "gadget classified 'both'/'neither' under a proper "
                    "coloring — contradicts Claim 4.5"
                )
            return result

        # Force disagreement between the two ends.
        if head_class == tail_class:
            instance.commit_fragment(frag_tail, "transpose")
            stats["tail_committed"] = "transpose"
        else:
            instance.commit_fragment(frag_tail, "identity")
            stats["tail_committed"] = "identity"
        get_registry().inc("adversary_rounds")
        if TRACER.enabled:
            TRACER.event(
                "gadget-ends-committed",
                theorem="theorem3",
                head_class=head_class,
                tail_class=tail_class,
                tail_committed=stats["tail_committed"],
            )

        # Reveal everything else; Lemma 4.6 makes a proper completion
        # impossible.
        for node in sorted(host.nodes()):
            node_id = instance._id_of_host.get(node)
            if node_id is None or instance.tracker.colors.get(node_id) is None:
                instance.reveal(node)

        return self._finish(instance, host, stats, expect_win=True)

    def _finish(
        self, instance, host, stats, expect_win: bool = False
    ) -> AdversaryResult:
        instance.audit()
        coloring = instance.coloring()
        edge = find_monochromatic_edge(host, coloring)
        if edge is not None:
            return AdversaryResult(
                won=True,
                reason="monochromatic-edge",
                improper_edge=edge,
                stats=stats,
            )
        if expect_win and all(node in coloring for node in host.nodes()):
            raise AdversaryError(
                "complete proper (2k-2)-coloring with disagreeing end "
                "gadgets — contradicts Lemma 4.6"
            )
        return AdversaryResult(won=False, reason="survived", stats=stats)
