"""The triangular-grid oracle: ℓ = 1, triangle-chain propagation.

Implements the paper's Figure 1 argument as an algorithm.  Any node of a
connected fragment ``C`` of a triangular grid lies in a unit triangle
within :math:`\\mathcal{B}(C, 1)`, and any two such triangles are linked
by a chain of edge-sharing triangles inside :math:`\\mathcal{B}(C, 1)`.
Fixing the three parts of one triangle therefore forces the part of every
node of ``C``: whenever an edge ``{u, v}`` has both parts known, every
common neighbor ``w`` must take the third part.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import ball
from repro.oracles.base import OracleError, PartitionOracle

Node = Hashable


class TriangularOracle(PartitionOracle):
    """Unique-tripartition inference for triangular-grid fragments."""

    num_parts = 3
    radius = 1

    def infer(self, graph: Graph, component: Set[Node]) -> Dict[Node, int]:
        if not component:
            raise OracleError("cannot partition an empty component")
        allowed = ball(graph, component, self.radius)
        seed = self._seed_triangle(graph, component, allowed)
        parts: Dict[Node, int] = {}
        for index, node in enumerate(sorted(seed, key=repr)):
            parts[node] = index
        queue = deque()
        for u in seed:
            for v in seed:
                if u != v and graph.has_edge(u, v):
                    queue.append((u, v))
        while queue:
            u, v = queue.popleft()
            third = 3 - parts[u] - parts[v]
            for w in graph.neighbors(u) & graph.neighbors(v):
                if w not in allowed:
                    continue
                if w in parts:
                    if parts[w] != third:
                        raise OracleError(
                            f"inconsistent triangle at {w!r}: fragment is not "
                            f"a triangular-grid fragment"
                        )
                    continue
                parts[w] = third
                for x in graph.neighbors(w):
                    if x in parts:
                        queue.append((w, x))
        missing = component - set(parts)
        if missing:
            raise OracleError(
                f"{len(missing)} component node(s) not reachable by triangle "
                f"chains (e.g. {next(iter(missing))!r})"
            )
        return self._normalize({node: parts[node] for node in parts})

    def _seed_triangle(
        self, graph: Graph, component: Set[Node], allowed: Set[Node]
    ) -> Tuple[Node, Node, Node]:
        """The lexicographically first triangle in the allowed region that
        touches the component."""
        for u in sorted(component, key=repr):
            nbrs = sorted((v for v in graph.neighbors(u) if v in allowed), key=repr)
            for i, v in enumerate(nbrs):
                for w in nbrs[i + 1:]:
                    if graph.has_edge(v, w):
                        return (u, v, w)
        raise OracleError("no triangle touches the component; wrong family?")
