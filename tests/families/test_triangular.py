"""Tests for triangular grids."""

import pytest

from repro.families.triangular import TriangularGrid
from repro.graphs.traversal import is_connected
from repro.verify.coloring import is_proper


def test_node_count_excludes_degenerate_corners():
    tri = TriangularGrid(4)
    assert tri.num_nodes == 5 * 6 // 2 - 2


def test_literal_node_count_with_corners():
    tri = TriangularGrid(4, include_degenerate_corners=True)
    assert tri.num_nodes == 5 * 6 // 2


def test_degenerate_corners_have_degree_one():
    tri = TriangularGrid(4, include_degenerate_corners=True)
    assert tri.graph.degree((0, 4)) == 1
    assert tri.graph.degree((4, 0)) == 1


def test_edge_rule():
    tri = TriangularGrid(4)
    assert tri.graph.has_edge((1, 1), (2, 1))
    assert tri.graph.has_edge((1, 1), (1, 2))
    assert tri.graph.has_edge((1, 1), (2, 2))
    assert tri.graph.has_edge((1, 1), (0, 0))
    # The anti-diagonal is not an edge direction.
    assert not tri.graph.has_edge((1, 1), (2, 0))
    assert not tri.graph.has_edge((1, 1), (0, 2))


def test_canonical_coloring_is_proper():
    tri = TriangularGrid(6)
    coloring = {node: tri.canonical_color(node) + 1 for node in tri.graph.nodes()}
    assert is_proper(tri.graph, coloring)
    assert set(coloring.values()) == {1, 2, 3}


def test_every_node_in_a_triangle():
    tri = TriangularGrid(5)
    covered = set()
    for a, b, c in tri.triangles():
        covered.update((a, b, c))
    assert covered == set(tri.graph.nodes())


def test_triangles_are_cliques():
    tri = TriangularGrid(4)
    for a, b, c in tri.triangles():
        assert tri.graph.has_edge(a, b)
        assert tri.graph.has_edge(b, c)
        assert tri.graph.has_edge(a, c)


def test_triangle_count():
    # Side-2 grid without corners: nodes (0,0),(1,0),(0,1),(1,1),(2,0)x,(0,2)x
    tri = TriangularGrid(2)
    assert len(tri.triangles()) == 2


def test_connected():
    assert is_connected(TriangularGrid(5).graph)


def test_side_validation():
    with pytest.raises(ValueError):
        TriangularGrid(1)
    with pytest.raises(ValueError):
        TriangularGrid(0, include_degenerate_corners=True)


def test_repr():
    assert "TriangularGrid" in repr(TriangularGrid(3))
