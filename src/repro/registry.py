"""String-keyed factory registries for adversaries, victims, and families.

Until PR 5 the tournament hardcoded its portfolios: the adversary lineup
lived in a dict literal inside ``analysis/tournament.py``, the victim
portfolio in another, and the CLI redeclared a third copy — so a new
adversary (or a third-party one) meant editing three files and could
never ride along a declarative campaign spec.  This module replaces the
literals with three process-global :class:`Registry` instances:

* :data:`ADVERSARIES` — ``name -> factory(locality, **params)`` returning
  either a victim→:class:`~repro.adversaries.result.AdversaryResult`
  callable or a :class:`FixedVictimGame` wrapper,
* :data:`VICTIMS` — ``name -> factory()`` returning a fresh
  :class:`~repro.models.base.OnlineAlgorithm`, and
* :data:`FAMILIES` — ``name -> factory(**params)`` returning a graph
  family object exposing ``.graph``.

Campaign specs (:mod:`repro.analysis.campaign`), the tournament
portfolios, and the CLI's ``--adversary``/``--victim`` flags all resolve
through these registries, so third-party code extends every surface at
once::

    from repro.registry import register_adversary

    @register_adversary("my-adversary")
    def _my_adversary(locality, **params):
        return lambda victim: MyAdversary(locality, **params).run(victim)

Names are resolved by exact string match; an unknown name raises
:class:`RegistryError` listing the registered choices.  Registration
order is preserved (it defines the deterministic sweep order of the
default portfolios), and duplicate registration is an error unless
``replace=True`` is passed — overriding a builtin is legitimate for
experiments, silently shadowing one is not.

Parallel note: worker processes resolve specs by *name*, so a custom
registration must be importable (or fork-inherited) in the worker.  On
the default ``fork`` start method registrations made before the pool
spawns are inherited automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.adversaries.gadget import GadgetAdversary
from repro.adversaries.grid import GridAdversary
from repro.adversaries.reduction import reduce_to_grid
from repro.adversaries.result import AdversaryResult
from repro.adversaries.torus import TorusAdversary
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.core.unify import UnifyColoring
from repro.families.gadgets import GadgetChain
from repro.families.grids import CylindricalGrid, SimpleGrid, ToroidalGrid
from repro.families.ktree import random_ktree
from repro.families.triangular import TriangularGrid
from repro.models.base import OnlineAlgorithm
from repro.models.simulation import LocalAsOnline
from repro.oracles import CliqueChainOracle
from repro.robustness.faults import faulty_victims

#: Victim column used for fixed-victim games (their victim is determined
#: by construction, not by the sweep).
FIXED_VICTIM = "(fixed)"


class RegistryError(LookupError):
    """An unknown or duplicate registry name."""


@dataclass(frozen=True)
class FixedVictimGame:
    """A tournament entry whose victim is fixed by construction.

    The Theorem 5 reduction chain builds its own victim (the reduced
    hierarchy colorer); sweeping it against the victim portfolio would
    replay the identical game once per victim.  Wrapping the play in
    this marker makes sweeps play it exactly once, recorded under the
    :data:`FIXED_VICTIM` column.
    """

    play: Callable[[], AdversaryResult]


AdversaryEntry = Union[
    Callable[[OnlineAlgorithm], AdversaryResult], FixedVictimGame
]


class Registry:
    """An ordered, string-keyed factory registry.

    Parameters
    ----------
    kind:
        Human-readable entry kind (``"adversary"``), used in error
        messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}
        self._metadata: Dict[str, Dict[str, Any]] = {}

    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        replace: bool = False,
        **metadata: Any,
    ) -> Callable:
        """Register ``factory`` under ``name``; usable as a decorator.

        Duplicate names raise :class:`RegistryError` unless
        ``replace=True``.  Extra keyword arguments are stored as entry
        metadata (see :meth:`metadata`); the adversary registry uses
        ``fixed_victim=True`` to mark entries that ignore the victim
        portfolio.
        """
        if factory is None:
            def decorator(f: Callable) -> Callable:
                return self.register(name, f, replace=replace, **metadata)

            return decorator
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._factories and not replace:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; pass "
                f"replace=True to override it"
            )
        self._factories[name] = factory
        self._metadata[name] = dict(metadata)
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (tests and experiment teardown)."""
        self.get(name)  # raises RegistryError with choices when unknown
        del self._factories[name]
        del self._metadata[name]

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``.

        Raises :class:`RegistryError` naming the registered choices when
        the name is unknown — the message the CLI surfaces verbatim.
        """
        try:
            return self._factories[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; choose from "
                f"{sorted(self._factories)}"
            ) from None

    def metadata(self, name: str) -> Dict[str, Any]:
        """A copy of the metadata stored with ``name``."""
        self.get(name)
        return dict(self._metadata[name])

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._factories)

    def items(self) -> Iterator[Tuple[str, Callable]]:
        return iter(list(self._factories.items()))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()!r})"


#: The three process-global registries.
ADVERSARIES = Registry("adversary")
VICTIMS = Registry("victim")
FAMILIES = Registry("graph family")

# Bound conveniences — the public registration/resolution surface.
register_adversary = ADVERSARIES.register
register_victim = VICTIMS.register
register_family = FAMILIES.register


def get_adversary(name: str) -> Callable[..., AdversaryEntry]:
    """The adversary factory for ``name``: ``factory(locality, **params)``
    returns a victim→result callable or a :class:`FixedVictimGame`."""
    return ADVERSARIES.get(name)


def get_victim(name: str) -> Callable[[], OnlineAlgorithm]:
    """The zero-argument victim factory for ``name``."""
    return VICTIMS.get(name)


def get_family(name: str) -> Callable:
    """The graph-family factory for ``name``."""
    return FAMILIES.get(name)


def list_adversaries() -> List[str]:
    return ADVERSARIES.names()


def list_victims() -> List[str]:
    return VICTIMS.names()


def list_families() -> List[str]:
    return FAMILIES.names()


def adversary_is_fixed(name: str) -> bool:
    """Whether ``name`` is a fixed-victim adversary (plays once per sweep
    under the :data:`FIXED_VICTIM` column, ignoring the victim
    portfolio)."""
    return bool(ADVERSARIES.metadata(name).get("fixed_victim", False))


# ----------------------------------------------------------------------
# Builtin victims
# ----------------------------------------------------------------------

#: The standard (honest) victim portfolio, in sweep order.
DEFAULT_VICTIMS: Tuple[str, ...] = ("greedy", "akbari", "local-canonical")

register_victim("greedy", GreedyOnlineColorer)
register_victim("akbari", AkbariBipartiteColoring)
register_victim(
    "local-canonical", lambda: LocalAsOnline(CanonicalLocalColorer())
)

#: The fault-injection victim family (PR 1), in sweep order.
FAULTY_VICTIM_NAMES: Tuple[str, ...] = tuple(faulty_victims())

for _name, _factory in faulty_victims().items():
    register_victim(_name, _factory)
del _name, _factory


# ----------------------------------------------------------------------
# Builtin adversaries
# ----------------------------------------------------------------------

#: The standard adversary lineup, in sweep order.
DEFAULT_ADVERSARIES: Tuple[str, ...] = (
    "theorem1-grid",
    "theorem2-torus",
    "theorem2-cylinder",
    "theorem3-gadget(2k-2)",
    "corollary13-gadget(k+1)",
    "theorem5-reduction",
)


@register_adversary("theorem1-grid")
def _theorem1_grid(locality: int, **params: Any) -> AdversaryEntry:
    return lambda victim: GridAdversary(locality=locality, **params).run(
        victim
    )


@register_adversary("theorem2-torus")
def _theorem2_torus(locality: int, **params: Any) -> AdversaryEntry:
    params.setdefault("topology", "torus")
    return lambda victim: TorusAdversary(locality=locality, **params).run(
        victim
    )


@register_adversary("theorem2-cylinder")
def _theorem2_cylinder(locality: int, **params: Any) -> AdversaryEntry:
    params.setdefault("topology", "cylinder")
    return lambda victim: TorusAdversary(locality=locality, **params).run(
        victim
    )


@register_adversary("theorem3-gadget(2k-2)")
def _theorem3_gadget(locality: int, k: int = 3, **params: Any) -> AdversaryEntry:
    return lambda victim: GadgetAdversary(
        k=k, locality=locality, **params
    ).run(victim)


@register_adversary("corollary13-gadget(k+1)")
def _corollary13_gadget(
    locality: int, k: int = 3, colors: int = 4, **params: Any
) -> AdversaryEntry:
    return lambda victim: GadgetAdversary(
        k=k, locality=locality, colors=colors, **params
    ).run(victim)


@register_adversary("theorem5-reduction", fixed_victim=True)
def _theorem5_reduction(locality: int, k: int = 3, **params: Any) -> AdversaryEntry:
    return FixedVictimGame(
        lambda: GridAdversary(locality=locality, **params).run(
            reduce_to_grid(UnifyColoring(CliqueChainOracle(k, k)), k=k)
        )
    )


# ----------------------------------------------------------------------
# Builtin graph families
# ----------------------------------------------------------------------

register_family(
    "grid", lambda rows=16, cols=None: SimpleGrid(
        rows, cols if cols is not None else rows
    )
)
register_family(
    "cylinder", lambda rows=16, cols=None: CylindricalGrid(
        rows, cols if cols is not None else rows
    )
)
register_family(
    "torus", lambda rows=16, cols=None: ToroidalGrid(
        rows, cols if cols is not None else rows
    )
)
register_family("triangular", lambda side=12: TriangularGrid(side))
register_family(
    "gadget-chain", lambda k=3, length=5: GadgetChain(k=k, length=length)
)
register_family(
    "ktree", lambda k=3, num_nodes=40, seed=0: random_ktree(
        k, num_nodes, seed=seed
    )
)
