"""Plain-text rendering of colorings, for the example scripts.

Colors are printed as digits; uncolored nodes as dots.  Triangular grids
are drawn with the diagonal sheared right so that unit triangles are
visually adjacent.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.families.grids import _GridBase
from repro.families.triangular import TriangularGrid

Node = Hashable
Color = int


def _glyph(color: Optional[Color]) -> str:
    if color is None:
        return "."
    if 0 <= color <= 9:
        return str(color)
    return chr(ord("a") + color - 10)


def render_grid(grid: _GridBase, coloring: Dict[Node, Color]) -> str:
    """Render any of the grid families row by row (row 0 on top)."""
    lines = []
    for i in range(grid.rows):
        lines.append(
            " ".join(_glyph(coloring.get((i, j))) for j in range(grid.cols))
        )
    return "\n".join(lines)


def render_triangular(tri: TriangularGrid, coloring: Dict[Node, Color]) -> str:
    """Render a triangular grid; row y is printed y half-steps right.

    The grid's node set is ``{(x, y)}`` with edges E/N/NE, so shifting
    each successive y-row right by one half-cell puts the NE diagonals
    next to each other visually.
    """
    lines = []
    for y in range(tri.side, -1, -1):
        cells = []
        for x in range(tri.side + 1 - y):
            node = (x, y)
            if node in tri.graph:
                cells.append(_glyph(coloring.get(node)))
        if cells:
            lines.append(" " * y + " ".join(cells))
    return "\n".join(lines)
