"""Experiment T5 (Theorem 5): Ω(log n) for (k+1)-coloring L_{k,l} graphs.

The executable form of Lemma 5.7: (k+1)-colorers of G_k, wrapped down to
3-colorers of the grid, are defeated by the Theorem 1 adversary — for
every k and every victim in the portfolio.  Also measures the reduction's
simulation overhead (it is locality-preserving, so the only cost is
bookkeeping).
"""

import pytest

from repro.adversaries.grid import GridAdversary
from repro.adversaries.reduction import HierarchyReduction, reduce_to_grid
from repro.analysis.tables import render_table
from repro.core.baselines import GreedyOnlineColorer
from repro.core.unify import UnifyColoring
from repro.families.hierarchy import Hierarchy
from repro.models.online_local import OnlineLocalSimulator
from repro.oracles import CliqueChainOracle


def victims(k):
    return {
        f"greedy-on-G{k}": lambda: GreedyOnlineColorer(),
        f"unify-on-G{k}": lambda: UnifyColoring(CliqueChainOracle(k, k)),
    }


def test_theorem5_reduction_chain_defeated():
    rows = []
    for k in (3, 4):
        for name, factory in victims(k).items():
            result = GridAdversary(locality=1).run(reduce_to_grid(factory(), k=k))
            assert result.won, f"{name} survived through the reduction"
            rows.append([k, name, result.reason])
    print()
    print("Theorem 5: grid adversary vs reduced (k+1)-colorers of G_k")
    print(render_table(["k", "victim", "outcome"], rows))


def test_reduction_preserves_locality_bookkeeping():
    """The wrapper answers from the same ball: its synthetic view never
    contains a node whose base is outside the real view."""
    h2 = Hierarchy(2, 5, 5)
    wrapper = HierarchyReduction(GreedyOnlineColorer())
    sim = OnlineLocalSimulator(h2.graph, wrapper, locality=2, num_colors=3)
    sim.reveal((2, (2, 2)))
    real_nodes = set(sim.tracker.view_graph.nodes())
    synthetic_bases = {
        label[1] for label in wrapper._tracker.view_graph.nodes()
    }
    # Synthetic bases are view ids of the real simulator.
    assert synthetic_bases <= real_nodes


@pytest.mark.parametrize("k", (3, 4))
def test_bench_theorem5(benchmark, k):
    result = benchmark(
        lambda: GridAdversary(locality=1).run(
            reduce_to_grid(GreedyOnlineColorer(), k=k)
        )
    )
    assert result.won


def test_bench_reduction_overhead(benchmark):
    """Wrapper vs direct greedy on the same grid run."""
    h2 = Hierarchy(2, 8, 8)
    order = sorted(h2.graph.nodes(), key=repr)

    def run():
        wrapper = HierarchyReduction(GreedyOnlineColorer())
        sim = OnlineLocalSimulator(h2.graph, wrapper, locality=2, num_colors=3)
        return sim.run(list(order))

    coloring = benchmark(run)
    assert len(coloring) == 64
