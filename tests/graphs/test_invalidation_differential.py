"""Differential property test for scoped ball-cache invalidation.

The safety property behind ``docs/performance.md``: under *any*
interleaving of ball queries and graph mutations, a scoped
:class:`~repro.graphs.traversal.BallCache` returns exactly what an
uncached :func:`~repro.graphs.traversal.ball` computes on the current
graph.  Runs ~200 seeded random interleavings per family (grid, torus,
k-tree), mixing edge/node additions, batched bulk additions, and
occasional removals (which must fall back to a full flush).
"""

import random

import pytest

from repro.families.grids import SimpleGrid, ToroidalGrid
from repro.families.ktree import deterministic_ktree
from repro.graphs.csr import set_graph_backend
from repro.graphs.traversal import BallCache, ball

FAMILIES = {
    "grid": lambda: SimpleGrid(5, 6).graph,
    "torus": lambda: ToroidalGrid(5, 5).graph,
    "ktree": lambda: deterministic_ktree(2, 14).graph,
}

#: Fixed per-family seed offsets (str hash is randomized per process).
SEED_BASE = {"grid": 1_000, "torus": 2_000, "ktree": 3_000}

#: Interleavings per family; 3 families x 70 ≈ 200 total.
INTERLEAVINGS = 70
STEPS = 25


def _mutate(graph, rng, spare_labels):
    """One random structural mutation; removals are deliberately rare so
    most interleavings exercise the scoped (non-flush) path."""
    roll = rng.random()
    nodes = list(graph.nodes())
    if roll < 0.45:  # add an edge between existing nodes (maybe a no-op)
        u, v = rng.sample(nodes, 2)
        if u != v:
            graph.add_edge(u, v)
    elif roll < 0.65:  # attach a brand-new node
        label = ("new", next(spare_labels))
        graph.add_edge(rng.choice(nodes), label)
    elif roll < 0.80:  # batched bulk addition
        anchor = rng.choice(nodes)
        with graph.batch():
            for _ in range(rng.randrange(1, 4)):
                label = ("bulk", next(spare_labels))
                graph.add_edge(anchor, label)
    elif roll < 0.90:  # remove an edge (forces a full flush)
        edges = list(graph.edges())
        if edges:
            u, v = rng.choice(edges)
            graph.remove_edge(u, v)
    else:  # remove a node (forces a full flush)
        victim = rng.choice(nodes)
        graph.remove_node(victim)


@pytest.fixture(params=["dict", "csr"])
def backend(request):
    """Run the property under both traversal kernels — invalidation must
    be sound no matter which backend computes the miss-path balls."""
    previous = set_graph_backend(request.param)
    yield request.param
    set_graph_backend(previous)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_scoped_cache_matches_uncached_ball(family, backend):
    build = FAMILIES[family]
    for seed in range(INTERLEAVINGS):
        rng = random.Random(SEED_BASE[family] + seed)
        graph = build()
        cache = BallCache(graph)
        spare_labels = iter(range(10_000))
        for _ in range(STEPS):
            if rng.random() < 0.55:
                nodes = list(graph.nodes())
                source = rng.choice(nodes)
                radius = rng.randrange(0, 4)
                expected = ball(graph, source, radius)
                got = cache.ball(source, radius)
                assert got == expected, (
                    f"{family} seed={seed}: cached B({source!r}, {radius}) "
                    f"= {sorted(got, key=repr)} but uncached gives "
                    f"{sorted(expected, key=repr)}"
                )
            else:
                _mutate(graph, rng, spare_labels)
        # Final sweep: every cached answer must match a fresh BFS.
        for node in list(graph.nodes())[:10]:
            for radius in (0, 1, 2, 3):
                assert cache.ball(node, radius) == ball(graph, node, radius)


def test_differential_exercises_both_flush_kinds():
    """Sanity-check the generator actually hits scoped *and* full paths
    (otherwise the property above would be vacuous)."""
    from repro.observability.metrics import scoped_registry

    with scoped_registry():
        for family, build in sorted(FAMILIES.items()):
            for seed in range(10):
                rng = random.Random(SEED_BASE[family] + seed)
                graph = build()
                cache = BallCache(graph)
                spare_labels = iter(range(10_000))
                for _ in range(STEPS):
                    if rng.random() < 0.55:
                        nodes = list(graph.nodes())
                        cache.ball(rng.choice(nodes), rng.randrange(0, 4))
                    else:
                        _mutate(graph, rng, spare_labels)
        stats = BallCache.global_stats()
        assert stats["scoped_flushes"] > 0
        assert stats["full_flushes"] > 0
        assert stats["hits"] > 0
