"""Experiment D1.4 (Figure 1): membership in L_{k,l} for the paper's
families, checked by exhaustive enumeration on small instances.

* grids ∈ L_{2,0} (bipartite, radius 0),
* triangular grids ∈ L_{3,1},
* k-trees ∈ L_{k+1,1},
* and the negative control: a path is NOT in L_{3,1}.
"""


from repro.analysis.tables import render_table
from repro.families.grids import SimpleGrid
from repro.families.ktree import random_ktree
from repro.families.triangular import TriangularGrid
from repro.graphs.graph import Graph
from repro.verify.liuc import (
    has_locally_inferable_unique_coloring,
    sample_connected_subsets,
)


def check(name, graph, k, ell, fragments):
    ok, counterexample = has_locally_inferable_unique_coloring(
        graph, k=k, ell=ell, fragments=fragments
    )
    return [name, k, ell, len(fragments), "holds" if ok else f"FAILS at {counterexample}"], ok


def test_liuc_membership_table():
    grid = SimpleGrid(3, 4)
    tri = TriangularGrid(4)
    ktree = random_ktree(2, 9, seed=0)
    rows = []
    cases = [
        ("simple grid", grid.graph, 2, 0,
         sample_connected_subsets(grid.graph, 20, 5, seed=1)),
        ("triangular grid", tri.graph, 3, 1,
         sample_connected_subsets(tri.graph, 20, 5, seed=2)),
        ("2-tree", ktree.graph, 3, 1,
         sample_connected_subsets(ktree.graph, 15, 4, seed=3)),
    ]
    for name, graph, k, ell, fragments in cases:
        row, ok = check(name, graph, k, ell, fragments)
        rows.append(row)
        assert ok, row
    # Negative control.
    path = Graph(edges=[(i, i + 1) for i in range(6)])
    row, ok = check("path (control)", path, 3, 1, [{2, 3, 4}])
    rows.append(row)
    assert not ok
    print()
    print("Definition 1.4 membership:")
    print(render_table(["family", "k", "l", "fragments", "verdict"], rows))


def test_bench_liuc_check(benchmark):
    tri = TriangularGrid(4)
    fragments = sample_connected_subsets(tri.graph, 5, 4, seed=9)
    ok, __ = benchmark(
        lambda: has_locally_inferable_unique_coloring(
            tri.graph, k=3, ell=1, fragments=fragments
        )
    )
    assert ok
