"""The bipartite oracle: ℓ = 0, parts = BFS parity.

Connected bipartite graphs have a unique bipartition, readable from the
fragment itself — this is why bipartite graphs are in
:math:`\\mathcal{L}_{2,0}` and why the Akbari algorithm needs no explicit
oracle machinery.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.oracles.base import OracleError, PartitionOracle

Node = Hashable


class BipartiteOracle(PartitionOracle):
    """Parity-based bipartition inference."""

    num_parts = 2
    radius = 0

    def infer(self, graph: Graph, component: Set[Node]) -> Dict[Node, int]:
        if not component:
            raise OracleError("cannot partition an empty component")
        sub = graph.induced_subgraph(component)
        anchor = min(sub.nodes(), key=repr)
        distances = bfs_distances(sub, anchor)
        if len(distances) != len(component):
            raise OracleError("component is not connected")
        parts = {node: dist % 2 for node, dist in distances.items()}
        for u, v in sub.edges():
            if parts[u] == parts[v]:
                raise OracleError("component is not bipartite")
        return self._normalize(parts)
