"""Tests for the model-sandwich adapters (LOCAL/SLOCAL inside Online-LOCAL)."""

from repro.core.baselines import CanonicalLocalColorer
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import random_reveal_order
from repro.models.local import LocalAlgorithm, LocalSimulator, LocalView
from repro.models.online_local import OnlineLocalSimulator
from repro.models.simulation import LocalAsOnline, SLocalAsOnline
from repro.models.slocal import SLocalAlgorithm, SLocalView
from repro.verify.coloring import is_proper


class BallFingerprint(LocalAlgorithm):
    """Colors by a fingerprint of the ball's structure (not ids)."""

    name = "fingerprint"

    def color(self, view: LocalView) -> int:
        return 1 + (view.graph.num_nodes + view.graph.num_edges) % 3


def test_local_as_online_matches_local_simulator():
    """Simulating a LOCAL algorithm in Online-LOCAL yields the exact same
    coloring, for every reveal order — the sandwich inclusion."""
    grid = SimpleGrid(5, 5)
    direct = LocalSimulator(
        grid.graph, BallFingerprint(), locality=2, num_colors=3
    ).run()
    for seed in range(3):
        order = random_reveal_order(sorted(grid.graph.nodes()), seed=seed)
        sim = OnlineLocalSimulator(
            grid.graph, LocalAsOnline(BallFingerprint()), locality=2, num_colors=3
        )
        online = sim.run(order)
        assert online == direct


def test_canonical_local_through_online():
    """The trivial LOCAL 2-coloring upper bound, run through Online-LOCAL."""
    grid = SimpleGrid(4, 5)
    sim = OnlineLocalSimulator(
        grid.graph,
        LocalAsOnline(CanonicalLocalColorer()),
        locality=9,  # >= diameter 7
        num_colors=3,
    )
    coloring = sim.run(sorted(grid.graph.nodes()))
    assert is_proper(grid.graph, coloring)


class GreedySLocal(SLocalAlgorithm):
    name = "greedy"

    def color(self, view: SLocalView) -> int:
        used = {view.colors.get(v) for v in view.graph.neighbors(view.center)}
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return color
        return 1


def test_slocal_as_online_is_proper():
    grid = SimpleGrid(6, 6)
    sim = OnlineLocalSimulator(
        grid.graph, SLocalAsOnline(GreedySLocal()), locality=1, num_colors=5
    )
    coloring = sim.run(random_reveal_order(sorted(grid.graph.nodes()), seed=3))
    assert is_proper(grid.graph, coloring)


def test_adapters_only_color_the_target():
    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(
        grid.graph, SLocalAsOnline(GreedySLocal()), locality=1, num_colors=5
    )
    sim.reveal((1, 1))
    assert len(sim.tracker.colors) == 1


def test_adapter_names():
    assert LocalAsOnline(BallFingerprint()).name == "local:fingerprint"
    assert SLocalAsOnline(GreedySLocal()).name == "slocal:greedy"
