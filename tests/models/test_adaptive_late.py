"""Tests for LateAutomorphismInstance (fixed host, lazy labelings)."""

import pytest

from repro.families.gadgets import GadgetChain
from repro.families.grids import ToroidalGrid
from repro.models.adaptive import ConsistencyError, LateAutomorphismInstance
from repro.models.base import OnlineAlgorithm


class Greedy(OnlineAlgorithm):
    name = "greedy"

    def step(self, view, target):
        used = {view.colors.get(v) for v in view.graph.neighbors(target)}
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {target: color}
        return {target: 1}


def torus_instance(side=9, locality=1):
    torus = ToroidalGrid(side, side)
    inst = LateAutomorphismInstance(
        torus.graph, Greedy(), locality=locality, num_colors=3
    )
    mirror = {
        (i, j): (i, (-j) % side)
        for i in range(side)
        for j in range(side)
    }
    return torus, inst, mirror


class TestDeclaration:
    def test_fragment_with_valid_automorphism(self):
        torus, inst, mirror = torus_instance()
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        frag = inst.add_fragment(band, {"mirror": mirror})
        assert frag == 0

    def test_non_automorphism_rejected(self):
        torus, inst, __ = torus_instance()
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        bad = {node: node for node in torus.graph.nodes()}
        bad[(0, 0)], bad[(4, 4)] = (4, 4), (0, 0)  # swaps across rows
        with pytest.raises(ValueError):
            inst.add_fragment(band, {"bad": bad})

    def test_mapping_must_fix_region(self):
        torus, inst, __ = torus_instance()
        band = {(0, j) for j in range(9)}
        shift_rows = {
            (i, j): ((i + 1) % 9, j) for i in range(9) for j in range(9)
        }  # a genuine automorphism, but it moves the band
        with pytest.raises(ValueError, match="setwise"):
            inst.add_fragment(band, {"shift": shift_rows})

    def test_overlapping_regions_rejected(self):
        torus, inst, mirror = torus_instance()
        band = {(i, j) for i in (0, 1) for j in range(9)}
        inst.add_fragment(band, {})
        with pytest.raises(ValueError, match="disjoint"):
            inst.add_fragment({(1, 0)}, {})

    def test_adjacent_regions_rejected(self):
        torus, inst, __ = torus_instance()
        inst.add_fragment({(0, j) for j in range(9)}, {})
        with pytest.raises(ValueError, match="non-adjacent"):
            inst.add_fragment({(1, j) for j in range(9)}, {})


class TestPlay:
    def test_ball_must_stay_inside_region(self):
        torus, inst, __ = torus_instance(locality=2)
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        frag = inst.add_fragment(band, {})
        with pytest.raises(ConsistencyError, match="leaves the fragment"):
            inst.reveal_in_fragment(frag, (1, 0))  # ball radius 2 exits rows 0-2

    def test_free_reveal_requires_commits(self):
        torus, inst, __ = torus_instance()
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        inst.add_fragment(band, {})
        with pytest.raises(ConsistencyError, match="commit every fragment"):
            inst.reveal((5, 5))

    def test_identity_commit_roundtrip(self):
        torus, inst, mirror = torus_instance()
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        frag = inst.add_fragment(band, {"mirror": mirror})
        for j in range(9):
            inst.reveal_in_fragment(frag, (1, j))
        pre = {j: inst.fragment_color(frag, (1, j)) for j in range(9)}
        inst.commit_fragment(frag, "identity")
        coloring = inst.coloring()
        assert all(coloring[(1, j)] == pre[j] for j in range(9))
        inst.audit()

    def test_mirror_commit_relocates_colors(self):
        torus, inst, mirror = torus_instance()
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        frag = inst.add_fragment(band, {"mirror": mirror})
        for j in range(9):
            inst.reveal_in_fragment(frag, (1, j))
        pre = {j: inst.fragment_color(frag, (1, j)) for j in range(9)}
        inst.commit_fragment(frag, "mirror")
        coloring = inst.coloring()
        assert all(coloring[(1, (-j) % 9)] == pre[j] for j in range(9))
        inst.audit()

    def test_full_game_with_free_phase(self):
        torus, inst, mirror = torus_instance()
        band = {(i, j) for i in (0, 1, 2) for j in range(9)}
        frag = inst.add_fragment(band, {"mirror": mirror})
        for j in range(9):
            inst.reveal_in_fragment(frag, (1, j))
        inst.commit_fragment(frag, "mirror")
        for node in sorted(torus.graph.nodes()):
            node_id = inst._id_of_host.get(node)
            if node_id is None or node_id not in inst.tracker.colors:
                inst.reveal(node)
        coloring = inst.coloring()
        assert set(coloring) == set(torus.graph.nodes())
        inst.audit()

    def test_double_commit_rejected(self):
        torus, inst, __ = torus_instance()
        frag = inst.add_fragment({(0, j) for j in range(9)}, {})
        inst.commit_fragment(frag, "identity")
        with pytest.raises(ConsistencyError):
            inst.commit_fragment(frag, "identity")

    def test_gadget_transpose_views_identical(self):
        """The core soundness property: both commit choices are consistent
        with everything the algorithm saw (the audit passes either way)."""
        for choice in ("identity", "transpose"):
            chain = GadgetChain(3, 7)
            inst = LateAutomorphismInstance(
                chain.graph, Greedy(), locality=1, num_colors=4
            )
            region = {
                (g, i, j) for g in (5, 6) for i in range(3) for j in range(3)
            }
            frag = inst.add_fragment(region, {"transpose": chain.transpose()})
            for node in chain.gadget_nodes(6):
                inst.reveal_in_fragment(frag, node)
            inst.commit_fragment(frag, choice)
            inst.audit()
