"""(k+1)-coloring graphs with locally inferable unique colorings.

This is the paper's upper-bound contribution (Section 5.1.2, Theorem 4):
an Online-LOCAL algorithm with locality ``O(log n)`` that (k+1)-colors
any graph in :math:`\\mathcal{L}_{k,\\ell}` with ℓ ∈ O(1), generalizing
Akbari et al.'s bipartite parity-flipping to arbitrary *types*
(assignments of the k colors to the k oracle parts) unified via
Algorithm 1's color-swapping layers.

Structure of the implementation
-------------------------------
* The algorithm runs with total locality ``T``; it spends ``ℓ`` of it on
  the oracle and manages groups over the *logic region* — the union of
  ``(T - ℓ)``-radius balls around revealed nodes — exactly the paper's
  accounting ("the oracle can be implemented with an extra locality of
  ℓ").
* A group's *type* is a permutation ``π`` (stored as a list:
  ``π[part] = color``).  When groups merge, each smaller group's type is
  rebased into the merged oracle frame and transformed into the largest
  group's type by at most ``k - 1`` color swaps.
* One swap = Algorithm 1: three ``change_index`` layers around the
  group's colored core, using the spare color ``k + 1`` as scratch.

The paper's budget is ``T = 3(k-1)·log2 n + ℓ``; the helper
:func:`recommended_locality` computes it.  Run below budget the algorithm
keeps playing best-effort (skipping unreachable layer nodes) and loses —
the behavior Theorem 5 proves unavoidable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graphs.traversal import ball
from repro.models.base import AlgorithmView, Color, NodeId, OnlineAlgorithm
from repro.oracles.base import OracleError, PartitionOracle


def recommended_locality(k: int, ell: int, n: int) -> int:
    """The paper's locality budget ``3(k-1)·log2(n) + ℓ`` (rounded up)."""
    if n < 2:
        return ell + 1
    return 3 * (k - 1) * math.ceil(math.log2(n)) + ell


class _Group:
    """Per-root group metadata over the logic region."""

    __slots__ = ("members", "colored", "pi")

    def __init__(self) -> None:
        self.members: Set[NodeId] = set()
        self.colored: Set[NodeId] = set()
        self.pi: Optional[List[Color]] = None  # pi[part] = color


class UnifyColoring(OnlineAlgorithm):
    """The Theorem 4 algorithm, parameterized by a partition oracle."""

    def __init__(self, oracle: PartitionOracle) -> None:
        self.oracle = oracle
        self.name = f"unify-k{oracle.num_parts}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n, locality, num_colors)
        k = self.oracle.num_parts
        if num_colors < k + 1:
            raise ValueError(
                f"(k+1)-coloring with k={k} needs {k + 1} colors, "
                f"got {num_colors}"
            )
        self.logic_radius = max(0, locality - self.oracle.radius)
        self._logic: Set[NodeId] = set()
        self._parent: Dict[NodeId, NodeId] = {}
        self._groups: Dict[NodeId, _Group] = {}
        self._part: Dict[NodeId, int] = {}
        self._colors: Dict[NodeId, Color] = {}
        self.swap_count = 0  # instrumentation for benchmarks

    # ------------------------------------------------------------------
    # Union-find over logic nodes (plain, with member sets at roots)
    # ------------------------------------------------------------------
    def _find(self, node: NodeId) -> NodeId:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def _union(self, u: NodeId, v: NodeId) -> NodeId:
        root_u, root_v = self._find(u), self._find(v)
        if root_u == root_v:
            return root_u
        group_u = self._groups[root_u]
        group_v = self._groups[root_v]
        if len(group_u.members) < len(group_v.members):
            root_u, root_v = root_v, root_u
            group_u, group_v = group_v, group_u
        self._parent[root_v] = root_u
        group_u.members |= group_v.members
        group_u.colored |= group_v.colored
        del self._groups[root_v]
        return root_u

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------
    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        assignment: Dict[NodeId, Color] = {}
        k = self.oracle.num_parts
        old_groups = self._absorb(view, target)
        root = self._find(target)
        group = self._groups[root]

        # Snapshot parts of old groups before the oracle call overwrites.
        old_parts = {
            node: self._part[node]
            for __, members, __, __ in old_groups
            for node in members
            if node in self._part
        }
        try:
            fresh_parts = self.oracle.infer(view.graph, set(group.members))
        except OracleError:
            self._greedy_color(view, target, assignment)
            group.colored |= set(assignment)
            return assignment
        # Oracle propagation may reach nodes of *other* logic groups
        # (through the seen region); their stored parts are calibrated to
        # their own group's frame and must not be overwritten here.
        self._part.update(
            {
                node: part
                for node, part in fresh_parts.items()
                if node in group.members
            }
        )

        if not old_groups:
            # A brand-new group: anchor the type so the target gets color 1.
            group.pi = self._initial_type(self._part[target], k)
            self._commit(target, 1, assignment)
        else:
            rebased = self._rebase(old_groups, old_parts, k)
            rebased.sort(key=lambda item: (-item[0], item[1]))
            reference_pi = list(rebased[0][1])
            for __, pi, colored in rebased[1:]:
                pi = list(pi)
                if pi != reference_pi:
                    self._transform_type(
                        view, set(colored), pi, reference_pi, assignment
                    )
            group.pi = reference_pi
            if target not in self._colors:
                color = reference_pi[self._part[target]]
                self._commit(target, color, assignment)
        group.colored |= set(assignment)
        return assignment

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _absorb(
        self, view: AlgorithmView, target: NodeId
    ) -> List[Tuple[int, Set[NodeId], Tuple[Color, ...], Set[NodeId]]]:
        """Grow the logic region by the target's logic ball and merge
        groups; returns snapshots of the old groups touched:
        ``(size, members, pi, colored)``."""
        new_logic = [
            node
            for node in ball(view.graph, target, self.logic_radius)
            if node not in self._logic
        ]
        snapshots: Dict[NodeId, Tuple[int, Set[NodeId], Tuple[Color, ...], Set[NodeId]]] = {}

        def touch(old_node: NodeId) -> None:
            old_root = self._find(old_node)
            if old_root not in snapshots:
                old = self._groups[old_root]
                if old.pi is not None:
                    snapshots[old_root] = (
                        len(old.members),
                        set(old.members),
                        tuple(old.pi),
                        set(old.colored),
                    )

        if target in self._logic:
            touch(target)
        for node in new_logic:
            for nbr in view.graph.neighbors(node):
                if nbr in self._logic:
                    touch(nbr)
        for node in new_logic:
            self._logic.add(node)
            self._parent[node] = node
            fresh = _Group()
            fresh.members.add(node)
            self._groups[node] = fresh
        for node in new_logic:
            for nbr in view.graph.neighbors(node):
                if nbr in self._logic:
                    self._union(node, nbr)
        return list(snapshots.values())

    def _initial_type(self, target_part: int, k: int) -> List[Color]:
        """A type giving the target's part color 1, others 2..k in order."""
        pi = [0] * k
        pi[target_part] = 1
        next_color = 2
        for part in range(k):
            if part != target_part:
                pi[part] = next_color
                next_color += 1
        return pi

    def _rebase(
        self,
        old_groups: Sequence[Tuple[int, Set[NodeId], Tuple[Color, ...], Set[NodeId]]],
        old_parts: Dict[NodeId, int],
        k: int,
    ) -> List[Tuple[int, List[Color], Set[NodeId]]]:
        """Express each old type in the fresh oracle frame.

        For each old group, the permutation σ (old part -> new part) is
        read off its member nodes; parts absent from the group are mapped
        in sorted order (they are unconstrained).  The rebased type is
        ``π'[σ(p)] = π[p]``.
        """
        result: List[Tuple[int, List[Color], Set[NodeId]]] = []
        for size, members, pi, colored in old_groups:
            sigma: Dict[int, int] = {}
            for node in members:
                old_part = old_parts.get(node)
                new_part = self._part.get(node)
                if old_part is None or new_part is None:
                    continue
                existing = sigma.get(old_part)
                if existing is None:
                    sigma[old_part] = new_part
                elif existing != new_part:
                    raise OracleError(
                        "oracle returned incoherent partitions across steps"
                    )
            unmapped_old = sorted(set(range(k)) - set(sigma))
            unmapped_new = sorted(set(range(k)) - set(sigma.values()))
            sigma.update(zip(unmapped_old, unmapped_new))
            new_pi = [0] * k
            for part in range(k):
                new_pi[sigma[part]] = pi[part]
            result.append((size, new_pi, colored))
        return result

    # ------------------------------------------------------------------
    # Algorithm 1: physical type transformation
    # ------------------------------------------------------------------
    def _transform_type(
        self,
        view: AlgorithmView,
        core: Set[NodeId],
        pi: List[Color],
        reference: List[Color],
        assignment: Dict[NodeId, Color],
    ) -> None:
        """Turn ``pi`` into ``reference`` by at most k-1 physical swaps."""
        k = len(pi)
        core = {node for node in core}
        for part in range(k):
            if pi[part] == reference[part]:
                continue
            other = pi.index(reference[part])
            self._swap(view, core, pi, pi[part], pi[other], assignment)
            self.swap_count += 1
        if pi != reference:
            raise AssertionError("type transformation failed to converge")

    def _swap(
        self,
        view: AlgorithmView,
        core: Set[NodeId],
        pi: List[Color],
        color_a: Color,
        color_b: Color,
        assignment: Dict[NodeId, Color],
    ) -> None:
        """Algorithm 1: swap two colors in ``pi`` with three layers."""
        scratch = self.oracle.num_parts + 1
        self._change_index(view, core, pi, color_a, scratch, assignment)
        self._change_index(view, core, pi, color_b, color_a, assignment)
        self._change_index(view, core, pi, scratch, color_b, assignment)

    def _change_index(
        self,
        view: AlgorithmView,
        core: Set[NodeId],
        pi: List[Color],
        old_color: Color,
        new_color: Color,
        assignment: Dict[NodeId, Color],
    ) -> None:
        """One layer: color B(core, 1) \\ core by the updated type.

        Each uncolored logic neighbor of the core in part ``s`` gets
        ``new_color`` if ``pi[s] == old_color``, else ``pi[s]``.
        Neighbors outside the logic region (or without an inferred part)
        are skipped — impossible under an honest budget, lossy otherwise.
        """
        layer: Set[NodeId] = set()
        for u in core:
            for v in view.graph.neighbors(u):
                if (
                    v not in layer
                    and v in self._logic
                    and self._color_of(v, assignment) is None
                ):
                    layer.add(v)
        for v in sorted(layer):
            part = self._part.get(v)
            if part is None:
                continue
            color = new_color if pi[part] == old_color else pi[part]
            self._commit(v, color, assignment)
            core.add(v)
        for part in range(len(pi)):
            if pi[part] == old_color:
                pi[part] = new_color

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _greedy_color(
        self,
        view: AlgorithmView,
        target: NodeId,
        assignment: Dict[NodeId, Color],
    ) -> None:
        used = {
            self._color_of(v, assignment)
            for v in view.graph.neighbors(target)
        }
        for color in range(1, self.num_colors + 1):
            if color not in used:
                self._commit(target, color, assignment)
                return
        self._commit(target, 1, assignment)

    def _color_of(
        self, node: NodeId, assignment: Dict[NodeId, Color]
    ) -> Optional[Color]:
        color = assignment.get(node)
        if color is not None:
            return color
        return self._colors.get(node)

    def _commit(
        self, node: NodeId, color: Color, assignment: Dict[NodeId, Color]
    ) -> None:
        if self._color_of(node, assignment) is not None:
            return
        assignment[node] = color
        self._colors[node] = color
