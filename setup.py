from setuptools import setup

# Legacy shim: environments without the `wheel` package cannot do PEP 660
# editable installs; `python setup.py develop` works and needs the entry
# point declared here (old setuptools ignores [project.scripts] in
# develop mode).
setup(entry_points={"console_scripts": ["repro=repro.cli:main"]})
