"""Tests for the Theorem 1 grid adversary."""

import pytest

from repro.adversaries.grid import GridAdversary
from repro.adversaries.result import AdversaryResult
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.models.simulation import LocalAsOnline


@pytest.mark.parametrize(
    "victim_factory",
    [GreedyOnlineColorer, AkbariBipartiteColoring],
    ids=["greedy", "akbari"],
)
def test_defeats_portfolio_at_t1(victim_factory):
    result = GridAdversary(locality=1).run(victim_factory())
    assert result.won
    assert result.reason in ("monochromatic-edge", "model-violation")


def test_defeats_akbari_at_t2():
    result = GridAdversary(locality=2).run(AkbariBipartiteColoring())
    assert result.won


def test_defeats_local_simulation():
    result = GridAdversary(locality=2).run(LocalAsOnline(CanonicalLocalColorer()))
    assert result.won


def test_win_certificate_is_verifiable():
    """When the victim survives to the end, the rectangle cycle's b-value
    certificate recomputes from the committed coloring."""
    adversary = GridAdversary(locality=1)
    result = adversary.run(GreedyOnlineColorer())
    assert result.won

    if result.certificate is not None:
        # Rebuild the host graph the adversary committed and verify.
        # The improper edge coexists with the certificate: properness
        # plus a nonzero cycle b-value would contradict Lemma 3.4.
        assert result.improper_edge is not None
        assert result.certificate.b_value != 0


def test_improper_edge_is_genuine():
    result = GridAdversary(locality=1).run(GreedyOnlineColorer())
    assert result.improper_edge is not None


def test_stats_are_recorded():
    result = GridAdversary(locality=1).run(GreedyOnlineColorer())
    assert result.stats["locality"] == 1
    assert result.stats["level"] == 9
    assert result.stats["reveals"] > 0


def test_declared_n_matches_paper_bound():
    adversary = GridAdversary(locality=1, level=3)
    assert adversary.declared_n() == (5 ** 4) ** 2


def test_custom_level():
    """A lower level still defeats greedy (its colorings are sloppy)."""
    result = GridAdversary(locality=1, level=6).run(GreedyOnlineColorer())
    # Level 6 = 4T+2 < 4T+5: the cycle bound may or may not trigger, but
    # the run must complete and report honestly.
    assert isinstance(result, AdversaryResult)


def test_validation():
    with pytest.raises(ValueError):
        GridAdversary(locality=-1)
    with pytest.raises(ValueError):
        GridAdversary(locality=0, level=0)


def test_determinism():
    r1 = GridAdversary(locality=1).run(AkbariBipartiteColoring())
    r2 = GridAdversary(locality=1).run(AkbariBipartiteColoring())
    assert r1.won == r2.won
    assert r1.stats == r2.stats


def test_thin_grid_remark():
    """The paper's remark after Theorem 1: a general (a x b) grid yields
    an Ω(min{log max(a,b), min(a,b)}) bound.  Executably: the committed
    host needs only 6T+3 rows — the construction fits arbitrarily thin
    grids as long as min(a,b) is a small multiple of T."""
    for T in (1, 2):
        adversary = GridAdversary(locality=T)
        result = adversary.run(GreedyOnlineColorer())
        assert result.won
        assert result.stats["host_rows"] <= adversary.required_rows()
        # The horizontal extent carries the log: region ~ 2^(4T+5).
        assert result.stats["host_cols"] >= result.stats["host_rows"]


def test_locality_zero_defeated():
    """Even zero-locality algorithms are defeated (level 5 suffices)."""
    result = GridAdversary(locality=0).run(GreedyOnlineColorer())
    assert result.won
