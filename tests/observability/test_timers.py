"""Tests for phase-attribution timers: gating, scoping, registry
binding, and the attribution/coverage math."""

import pytest

from repro.observability.metrics import MetricsRegistry, scoped_registry
from repro.observability.timers import (
    NULL_TIMER,
    PHASE_METRIC_PREFIX,
    TOP_LEVEL_PHASES,
    WORKER_SCOPE,
    PhaseTimer,
    attribution_coverage,
    get_phase_scope,
    phase_attribution,
    phase_delta,
    phase_timer,
    phase_timers_enabled,
    set_phase_scope,
    set_phase_timers,
    timed_phases,
)


@pytest.fixture(autouse=True)
def _timers_quiescent():
    """Every test starts and must end with timers off, scope empty."""
    assert not phase_timers_enabled()
    assert get_phase_scope() == ""
    yield
    set_phase_timers(False)
    set_phase_scope("")


def test_disabled_timer_records_nothing():
    with scoped_registry() as registry:
        with PhaseTimer("idle"):
            pass
        assert registry.snapshot()["histograms"] == {}


def test_enabled_timer_records_histogram():
    with scoped_registry() as registry:
        with timed_phases():
            with PhaseTimer("busy"):
                pass
            with PhaseTimer("busy"):
                pass
        summary = registry.snapshot()["histograms"][
            PHASE_METRIC_PREFIX + "busy"
        ]
        assert summary["count"] == 2
        assert summary["sum"] >= 0.0


def test_timed_phases_restores_previous_state():
    set_phase_timers(True)
    try:
        with timed_phases(enabled=False):
            assert not phase_timers_enabled()
        assert phase_timers_enabled()
    finally:
        set_phase_timers(False)


def test_phase_timer_factory_caches_handles():
    assert phase_timer("some-phase") is phase_timer("some-phase")
    assert phase_timer("some-phase") is not phase_timer("other-phase")


def test_scope_prefixes_metric_name():
    with scoped_registry() as registry:
        previous = set_phase_scope(WORKER_SCOPE)
        try:
            with timed_phases():
                with PhaseTimer("compute"):
                    pass
        finally:
            set_phase_scope(previous)
        names = list(registry.snapshot()["histograms"])
        assert names == [PHASE_METRIC_PREFIX + "worker:compute"]


def test_handle_rebinds_across_registries():
    """The same cached handle must land observations in whichever
    registry is active — the worker/benchmark scoping contract."""
    timer = PhaseTimer("rebind-check")
    with timed_phases():
        with scoped_registry() as first:
            with timer:
                pass
        with scoped_registry() as second:
            with timer:
                pass
            name = PHASE_METRIC_PREFIX + "rebind-check"
            assert second.snapshot()["histograms"][name]["count"] == 1
        assert first.snapshot()["histograms"][name]["count"] == 1


def test_null_timer_is_inert():
    with scoped_registry() as registry:
        with timed_phases():
            with NULL_TIMER:
                pass
            NULL_TIMER.observe(5.0)
        assert registry.snapshot()["histograms"] == {}


def test_phase_attribution_extracts_sums():
    registry = MetricsRegistry()
    registry.histogram(PHASE_METRIC_PREFIX + "ack-drain").observe(0.5)
    registry.histogram(PHASE_METRIC_PREFIX + "ack-drain").observe(0.25)
    registry.histogram(PHASE_METRIC_PREFIX + "worker:compute").observe(1.0)
    registry.histogram("unrelated_seconds").observe(9.0)
    phases = phase_attribution(registry.snapshot())
    assert phases == {"ack-drain": 0.75, "worker:compute": 1.0}


def test_phase_delta_keeps_positive_gains_only():
    before = {"ack-drain": 1.0, "compute": 2.0}
    after = {"ack-drain": 1.5, "compute": 2.0, "pipe-send": 0.25}
    assert phase_delta(before, after) == {
        "ack-drain": 0.5, "pipe-send": 0.25
    }


def test_attribution_coverage_counts_top_level_only():
    phases = {"ack-drain": 0.6, "compute": 0.3, "worker:compute": 5.0}
    assert attribution_coverage(phases, 1.0) == pytest.approx(0.9)
    assert attribution_coverage(phases, 0.0) is None
    assert "worker:compute" not in TOP_LEVEL_PHASES


def test_merged_worker_snapshot_keeps_scopes_distinct():
    """A worker-scoped snapshot merged into the parent must not collide
    with the parent's own phases — the cross-process naming contract."""
    parent = MetricsRegistry()
    parent.histogram(PHASE_METRIC_PREFIX + "compute").observe(1.0)
    with scoped_registry() as worker:
        previous = set_phase_scope(WORKER_SCOPE)
        try:
            with timed_phases():
                with phase_timer("compute"):
                    pass
        finally:
            set_phase_scope(previous)
        parent.merge(worker.snapshot())
    phases = phase_attribution(parent.snapshot())
    assert phases["compute"] == 1.0
    assert "worker:compute" in phases
