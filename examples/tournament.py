#!/usr/bin/env python3
"""All lower bounds vs all victims — the full supervised tournament.

The paper predicts a clean sweep: every adversary defeats every
deterministic algorithm whose locality is below its theorem's threshold.
The sweep also fields the fault-injection victim family (crashing,
invalid-color, None-returning, infinite-looping, flip-flopping) to show
the supervisor classifying every failure mode as a structured forfeit
instead of dying on the first broken victim.
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.analysis.tournament import forfeit_rows
from repro.api import (
    CampaignSpec,
    SubmitRequest,
    clean_sweep,
    honest_rows,
    run_tournament,
)


def main() -> None:
    # The typed form: the tournament is the pre-baked campaign, so the
    # request is a SubmitRequest over CampaignSpec.tournament().
    rows = run_tournament(
        SubmitRequest(
            spec=replace(
                CampaignSpec.tournament(locality=1, include_faulty=True),
                timeout=5.0,
            ),
        )
    )
    print(render_table(
        ["adversary", "victim", "T", "verdict", "how"],
        [
            [row.adversary, row.victim, row.locality,
             "FORFEIT" if row.forfeit
             else ("DEFEATED" if row.won else "survived"),
             row.reason]
            for row in rows
        ],
    ))
    print()
    honest = honest_rows(rows)
    if clean_sweep(honest):
        print(f"Clean sweep: {len(honest)}/{len(honest)} honest games won "
              f"by the adversaries, as the theorems demand.")
    else:
        losses = [row for row in honest if not row.won]
        print(f"UNEXPECTED: {len(losses)} game(s) survived: {losses}")
    forfeits = forfeit_rows(rows)
    print(f"Forfeits from the fault-injection family: {len(forfeits)} "
          f"(sweep completed anyway — that is the point).")
    if not clean_sweep(rows):
        raise SystemExit("tournament was not a clean sweep")


if __name__ == "__main__":
    main()
