"""Experiment TOURNAMENT: all adversaries vs all victims, clean sweep.

Also a useful regression net: any change weakening an adversary or
super-powering a victim breaks the sweep assertion immediately.
"""

import pytest

from repro.analysis.tables import render_table
from repro.analysis.tournament import clean_sweep, run_tournament


@pytest.mark.parametrize("locality", (1, 2))
def test_clean_sweep(locality):
    rows = run_tournament(locality=locality)
    print()
    print(f"Tournament at T={locality}:")
    print(render_table(
        ["adversary", "victim", "verdict"],
        [[r.adversary, r.victim, "defeated" if r.won else "SURVIVED"]
         for r in rows],
    ))
    assert clean_sweep(rows), [r for r in rows if not r.won]
    assert len(rows) == 18


def test_bench_tournament(benchmark):
    rows = benchmark(lambda: run_tournament(locality=1))
    assert clean_sweep(rows)
