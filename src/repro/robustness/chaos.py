"""Process-level chaos injection: deterministic, seed-driven faults.

:mod:`repro.robustness.faults` injects failures *inside* a game — a
victim that crashes, stalls, or cheats — and the supervisor converts
them into structured forfeits.  This module injects failures one layer
down, at the *process* level, where no in-process supervisor can help:
a worker that SIGKILLs itself mid-game, stalls past every deadline,
corrupts its result shard, or starts slowly.  The supervised worker
pool (:mod:`repro.analysis.worker_pool`) is the machinery that must
survive these; a :class:`ChaosPolicy` is how tests and the CI chaos job
prove it does.

Every decision is a **deterministic function of (seed, mode, key)** —
no ambient randomness — so a chaos run is exactly reproducible: the
same policy, seed, and work list produce the same kills, stalls, and
corruptions on every machine.  Game-level draws are keyed by
``(digest, attempt)``, so a game killed on its first dispatch redraws
on the requeue — which is how a sub-1.0 kill rate lets replays succeed
while a 1.0 rate drives the poison-quarantine path.

Workers consult the policy via an environment-passed spec::

    REPRO_CHAOS="kill:0.2,stall:0.1" REPRO_CHAOS_SEED=7 \\
        python -m repro.cli campaign run spec.json --store DIR --workers 2

Modes
-----
``kill``
    SIGKILL the worker's own process immediately before playing the
    drawn game (the in-flight game is lost; the pool must requeue it).
``stall``
    Sleep far past any lease deadline instead of playing (the pool must
    expire the lease and reap the worker).
``corrupt``
    Play the game, then write a truncated, newline-less junk line to
    the worker's result shard and raise :class:`OSError` instead of
    acknowledging — simulating a failed fsync / torn write.  The worker
    must report a structured error and the shard must stay parseable.
``slow-start``
    Sleep ``slow_start_seconds`` when the worker boots (keyed by worker
    index, not game), exercising dispatch against a lagging pool.

The parent process never applies chaos: only worker processes consult
the policy, so the degraded in-process serial path always completes.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.robustness.errors import ReproError

#: Environment knob naming the chaos spec (``"kill:0.2,stall:0.1"``).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Environment knob for the deterministic draw seed (default 0).
CHAOS_SEED_ENV_VAR = "REPRO_CHAOS_SEED"

#: Recognized fault modes, in the order they are drawn per game.
CHAOS_MODES = ("kill", "stall", "corrupt", "slow-start")


class ChaosSpecError(ReproError):
    """A malformed chaos spec string (unknown mode, bad rate)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic process-fault policy.

    Attributes
    ----------
    rates:
        ``((mode, probability), ...)`` — sorted, hashable; probabilities
        in ``[0, 1]``.
    seed:
        The draw seed; distinct seeds give independent fault patterns.
    stall_seconds:
        How long a ``stall`` draw sleeps — far longer than any lease so
        the pool, not the worker, ends the stall.
    slow_start_seconds:
        The boot delay a ``slow-start`` draw imposes.
    """

    rates: Tuple[Tuple[str, float], ...]
    seed: int = 0
    stall_seconds: float = 3600.0
    slow_start_seconds: float = 0.25

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ChaosPolicy":
        """Build a policy from a spec string like ``"kill:0.2,stall:0.1"``."""
        rates = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            mode, colon, rate_text = part.partition(":")
            mode = mode.strip()
            if mode not in CHAOS_MODES:
                raise ChaosSpecError(
                    f"unknown chaos mode {mode!r}; choose from "
                    f"{list(CHAOS_MODES)}"
                )
            if not colon:
                raise ChaosSpecError(
                    f"chaos entries are 'mode:rate', got {part!r}"
                )
            try:
                rate = float(rate_text)
            except ValueError:
                raise ChaosSpecError(
                    f"bad chaos rate {rate_text!r} for mode {mode!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ChaosSpecError(
                    f"chaos rate for {mode!r} must be in [0, 1], got {rate}"
                )
            rates[mode] = rate
        if not rates:
            raise ChaosSpecError(f"empty chaos spec {text!r}")
        return cls(rates=tuple(sorted(rates.items())), seed=seed)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["ChaosPolicy"]:
        """The policy named by :data:`CHAOS_ENV_VAR`, or None when unset."""
        environ = environ if environ is not None else os.environ
        text = environ.get(CHAOS_ENV_VAR, "").strip()
        if not text:
            return None
        seed = int(environ.get(CHAOS_SEED_ENV_VAR, "0"))
        return cls.parse(text, seed=seed)

    def to_string(self) -> str:
        """The spec-string form (round-trips through :meth:`parse`)."""
        return ",".join(f"{mode}:{rate:g}" for mode, rate in self.rates)

    def rate(self, mode: str) -> float:
        for name, rate in self.rates:
            if name == mode:
                return rate
        return 0.0

    # ------------------------------------------------------------------
    # Deterministic draws
    # ------------------------------------------------------------------
    def roll(self, mode: str, key: str) -> bool:
        """Whether ``mode`` fires for ``key`` — a pure function of
        ``(seed, mode, key)``, uniform over ``[0, 1)``."""
        rate = self.rate(mode)
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{mode}:{key}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < rate

    def action_for(self, digest: str, attempt: int) -> Optional[str]:
        """The fault (if any) drawn for one dispatched game.

        Keyed by ``(digest, attempt)``: the same game redraws on every
        requeue, so sub-1.0 rates let replays through while rate-1.0
        modes reproduce the fault until quarantine.  ``slow-start`` is a
        worker-boot mode and never fires here.
        """
        key = f"{digest}:{attempt}"
        for mode in ("kill", "stall", "corrupt"):
            if self.roll(mode, key):
                return mode
        return None

    # ------------------------------------------------------------------
    # Worker-side application
    # ------------------------------------------------------------------
    def apply_slow_start(self, worker_index: int) -> bool:
        """Sleep the boot delay if ``slow-start`` fires for this worker
        slot; returns whether it fired."""
        if self.roll("slow-start", f"worker:{worker_index}"):
            time.sleep(self.slow_start_seconds)
            return True
        return False

    def stall(self) -> None:
        """Serve a ``stall`` draw: sleep far past any lease deadline.

        Interruptible only by a signal — which is the point: the pool's
        lease expiry must SIGKILL this worker to end the stall.
        """
        time.sleep(self.stall_seconds)


def inject_corrupt_row(store_root: str, writer_id: int) -> None:
    """Serve a ``corrupt`` draw against a result-store shard.

    Appends a truncated, newline-less junk fragment to the worker's own
    ``rows-<pid>.jsonl`` shard — the on-disk signature of a torn write /
    failed fsync — then raises :class:`OSError` so the caller takes its
    store-failure path.  The shard must remain loadable: the journal's
    tolerant loader skips the partial trailing line and the next append
    repairs it.
    """
    path = os.path.join(os.fspath(store_root), f"rows-{writer_id}.jsonl")
    os.makedirs(os.fspath(store_root), exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"spec_hash": "chaos-torn-wr')
        handle.flush()
    raise OSError("chaos: injected result-row corruption (torn write)")
