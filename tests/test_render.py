"""Tests for the ASCII renderers."""

from repro.families.grids import SimpleGrid
from repro.families.triangular import TriangularGrid
from repro.render import render_grid, render_triangular


def test_render_grid_shape():
    grid = SimpleGrid(3, 4)
    coloring = {(i, j): (i + j) % 2 + 1 for i, j in grid.graph.nodes()}
    text = render_grid(grid, coloring)
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[0] == "1 2 1 2"
    assert lines[1] == "2 1 2 1"


def test_render_grid_partial_coloring():
    grid = SimpleGrid(2, 2)
    text = render_grid(grid, {(0, 0): 3})
    assert text.splitlines()[0] == "3 ."
    assert text.splitlines()[1] == ". ."


def test_render_grid_wide_colors():
    grid = SimpleGrid(1, 3)
    text = render_grid(grid, {(0, 0): 10, (0, 1): 11, (0, 2): 9})
    assert text == "a b 9"


def test_render_triangular_rows():
    tri = TriangularGrid(3)
    coloring = {node: tri.canonical_color(node) + 1 for node in tri.graph.nodes()}
    text = render_triangular(tri, coloring)
    lines = text.splitlines()
    # The y = 3 row held only the excluded corner (0,3), so rows y = 2..0
    # remain: three lines.
    assert len(lines) == 3
    assert lines[0].strip() == "3 1"
    # Bottom row is y = 0 with x = 0..2 (corner (3,0) excluded).
    assert lines[-1].strip() == "1 2 3"


def test_render_triangular_indentation():
    tri = TriangularGrid(4)
    coloring = {node: 1 for node in tri.graph.nodes()}
    lines = render_triangular(tri, coloring).splitlines()
    indents = [len(line) - len(line.lstrip()) for line in lines]
    assert indents == sorted(indents, reverse=True)
