"""Retry-with-reseed for randomized oracle/order paths."""

import pytest

from repro.oracles.base import OracleError
from repro.robustness.errors import ReproError
from repro.robustness.retry import RetriesExhausted, retry_with_reseed


def test_first_attempt_success_uses_given_seed():
    seen = []
    assert retry_with_reseed(lambda seed: seen.append(seed) or seed, seed=7) == 7
    assert seen == [7]


def test_reseeds_on_structured_failure():
    seen = []

    def attempt(seed):
        seen.append(seed)
        if seed < 2:
            raise OracleError(f"seed {seed} strands the oracle")
        return seed

    observed = []
    result = retry_with_reseed(
        attempt, seed=0, attempts=5,
        on_retry=lambda seed, exc: observed.append((seed, type(exc).__name__)),
    )
    assert result == 2
    assert seen == [0, 1, 2]
    assert observed == [(0, "OracleError"), (1, "OracleError")]


def test_unstructured_failures_propagate_immediately():
    calls = []

    def attempt(seed):
        calls.append(seed)
        raise RuntimeError("genuine bug")

    with pytest.raises(RuntimeError):
        retry_with_reseed(attempt, seed=0, attempts=5)
    assert calls == [0]


def test_exhaustion_raises_structured_error_with_cause():
    def attempt(seed):
        raise OracleError(f"seed {seed} bad")

    with pytest.raises(RetriesExhausted) as info:
        retry_with_reseed(attempt, seed=3, attempts=2)
    assert isinstance(info.value.__cause__, OracleError)
    assert isinstance(info.value, ReproError)
    assert "seeds 3..4" in str(info.value)


def test_attempts_must_be_positive():
    with pytest.raises(ValueError):
        retry_with_reseed(lambda seed: seed, attempts=0)


class _RecordingRng:
    """Deterministic jitter source that reports each draw window."""

    def __init__(self):
        self.windows = []

    def uniform(self, low, high):
        self.windows.append((low, high))
        return high  # worst case: sleep the full window


def test_backoff_windows_double_under_full_jitter(monkeypatch):
    import repro.robustness.retry as retry_mod

    sleeps = []
    monkeypatch.setattr(retry_mod.time, "sleep", sleeps.append)
    rng = _RecordingRng()
    calls = []

    def attempt(seed):
        calls.append(seed)
        if len(calls) < 4:
            raise OracleError("transient")
        return seed

    result = retry_with_reseed(
        attempt, seed=0, attempts=5, backoff=0.1, max_backoff=0.25, rng=rng
    )
    assert result == 3
    # Windows double from the base and clamp at max_backoff; each draw
    # spans [0, window] (full jitter), never a fixed delay.
    assert rng.windows == [(0.0, 0.1), (0.0, 0.2), (0.0, 0.25)]
    assert sleeps == [0.1, 0.2, 0.25]


def test_zero_backoff_stays_sleep_free(monkeypatch):
    import repro.robustness.retry as retry_mod

    sleeps = []
    monkeypatch.setattr(retry_mod.time, "sleep", sleeps.append)

    def attempt(seed):
        if seed < 2:
            raise OracleError("transient")
        return seed

    assert retry_with_reseed(attempt, seed=0, attempts=3) == 2
    assert sleeps == []
