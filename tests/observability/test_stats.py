"""Tests for trace aggregation and the stats report rendering."""

from repro.observability.metrics import scoped_registry
from repro.observability.stats import (
    aggregate,
    aggregate_file,
    format_metrics,
    render_stats,
)
from repro.observability.trace import TRACER, tracing


def _synthetic_records():
    return [
        {"type": "span-start", "kind": "game", "span": 0, "src": 1, "seq": 0,
         "adversary": "theorem1", "victim": "greedy"},
        {"type": "event", "kind": "reveal", "in_span": 0, "src": 1, "seq": 1},
        {"type": "event", "kind": "reveal", "in_span": 0, "src": 1, "seq": 2},
        {"type": "span-end", "kind": "game", "span": 0, "src": 1, "seq": 3,
         "seconds": 0.25, "reason": "monochromatic-edge", "won": True},
        {"type": "span-start", "kind": "game", "span": 0, "src": 2, "seq": 0,
         "adversary": "theorem2", "victim": "akbari"},
        {"type": "event", "kind": "reveal", "in_span": 0, "src": 2, "seq": 1},
        {"type": "span-end", "kind": "game", "span": 0, "src": 2, "seq": 2,
         "seconds": 0.5, "reason": "forfeit:timeout", "won": True,
         "forfeit": True},
        {"type": "event", "kind": "reveal", "src": 3, "seq": 0},  # unspanned
        {"type": "metrics", "src": 3, "seq": 1, "snapshot": {
            "counters": {"ball_cache_hits": 3, "ball_cache_misses": 1},
        }},
    ]


def test_aggregate_counts_and_joins_spans():
    stats = aggregate(_synthetic_records())
    assert stats.records == 9
    assert stats.event_counts == {"reveal": 4}
    assert stats.reveals_total == 4
    assert stats.unspanned_reveals == 1

    assert len(stats.games) == 2
    by_adversary = {g.adversary: g for g in stats.games}
    first = by_adversary["theorem1"]
    assert (first.victim, first.reveals, first.seconds) == ("greedy", 2, 0.25)
    assert first.won and not first.forfeit
    second = by_adversary["theorem2"]
    assert second.forfeit
    assert second.reason == "forfeit:timeout"

    assert stats.cache_hit_rate() == 0.75


def test_aggregate_tolerates_unjoined_spans():
    records = [
        {"type": "span-start", "kind": "game", "span": 7, "src": 1, "seq": 0,
         "adversary": "theorem3", "victim": "greedy"},
        # no span-end: the game was killed mid-flight
    ]
    stats = aggregate(records)
    assert len(stats.games) == 1
    game = stats.games[0]
    assert game.seconds is None
    assert game.reason == ""


def test_cache_hit_rate_none_without_cache_traffic():
    assert aggregate([]).cache_hit_rate() is None


def test_render_stats_sections():
    report = render_stats(aggregate(_synthetic_records()))
    assert "trace records: 9" in report
    assert "reveals total: 4" in report
    assert "games by adversary:" in report
    assert "theorem1" in report and "theorem2" in report
    assert "reveals per game: min=1 median=2 max=2" in report
    assert "slowest games" in report
    assert "ball cache hit rate: 75.0% (3/4)" in report


def test_render_stats_empty_trace():
    report = render_stats(aggregate([]))
    assert "trace records: 0" in report
    assert "reveals total: 0" in report


def test_format_metrics_renders_all_instrument_kinds():
    snapshot = {
        "counters": {"reveals_total": 12},
        "gauges": {"depth": 3.5},
        "histograms": {"seconds": {"count": 2, "sum": 3.0,
                                   "min": 1.0, "max": 2.0}},
    }
    table = format_metrics(snapshot)
    assert "reveals_total" in table and "12" in table
    assert "depth" in table and "gauge" in table
    assert "count=2 mean=1.5000" in table
    assert format_metrics({}) == "(no metrics recorded)"


def test_aggregate_file_round_trip(tmp_path):
    """End to end: record a real traced stretch, aggregate from disk."""
    path = tmp_path / "t.jsonl"
    with scoped_registry() as registry:
        with tracing(path):
            with TRACER.span("game", adversary="theorem1", victim="greedy"):
                TRACER.event("reveal", node=1)
                registry.inc("reveals_total")
    stats = aggregate_file(path)
    assert stats.reveals_total == 1
    assert len(stats.games) == 1
    assert stats.games[0].reveals == 1
    assert stats.metrics.counter("reveals_total").value == 1
