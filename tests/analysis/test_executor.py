"""Tests for the process-parallel tournament executor."""

import os
import pickle

import pytest

from repro.analysis.executor import (
    GameSpec,
    ParallelSweep,
    play_spec,
    resolve_workers,
)
from repro.analysis.tournament import (
    FIXED_VICTIM,
    JOURNAL_KEY_FIELDS,
    TournamentRow,
    default_adversaries,
    run_tournament,
)
from repro.core.baselines import GreedyOnlineColorer
from repro.robustness.journal import SweepJournal
from repro.robustness.supervisor import GamePolicy

POLICY = GamePolicy(timeout=30.0)


def test_game_spec_is_picklable():
    spec = GameSpec(
        adversary="theorem1-grid",
        victim="greedy",
        locality=1,
        policy=POLICY,
        include_faulty=True,
        journal_path="/tmp/x.jsonl",
    )
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_play_spec_inline_matches_tournament_row():
    spec = GameSpec("theorem1-grid", "greedy", 1, POLICY)
    outcome = play_spec(spec)
    row = outcome.row
    assert isinstance(row, TournamentRow)
    assert (row.adversary, row.victim, row.locality) == (
        "theorem1-grid", "greedy", 1,
    )
    assert row.won
    # The worker ships the game's exact metric delta back with the row.
    assert outcome.metrics["counters"]["reveals_total"] > 0
    assert outcome.metrics["histograms"]["game_wall_seconds"]["count"] == 1


def test_play_spec_fixed_victim():
    row = play_spec(
        GameSpec("theorem5-reduction", FIXED_VICTIM, 1, POLICY)
    ).row
    assert row.victim == FIXED_VICTIM
    assert row.won


def test_play_spec_rejects_mismatched_fixed_victim():
    with pytest.raises(ValueError, match="fixed-victim"):
        play_spec(GameSpec("theorem5-reduction", "greedy", 1, POLICY))


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_workers(None) == 2
    assert resolve_workers(1) == 1  # explicit argument wins
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_parallel_rows_identical_to_serial():
    """The acceptance property: same order, same outcomes."""
    serial = run_tournament(locality=1, workers=1)
    parallel = run_tournament(locality=1, workers=2)
    assert parallel == serial
    assert len(parallel) == 16


def test_parallel_metrics_match_serial():
    """Worker registry snapshots folded into the parent must reproduce
    the serial sweep's counter totals exactly.

    Ball-cache hit/miss *splits* are the one exception: the shared ball
    pool is per-process, so how queries divide into hits vs misses
    depends on which worker played which games (and forked workers
    inherit whatever the parent had already warmed).  The query total
    and every simulation counter are partition-independent and must
    match exactly.
    """
    from repro.observability.metrics import scoped_registry

    with scoped_registry() as serial_registry:
        run_tournament(locality=1, workers=1)
        serial = serial_registry.snapshot()
    with scoped_registry() as parallel_registry:
        run_tournament(locality=1, workers=2)
        parallel = parallel_registry.snapshot()

    def split(counters):
        cache = {k: v for k, v in counters.items()
                 if k.startswith("ball_cache_")}
        rest = {k: v for k, v in counters.items()
                if not k.startswith("ball_cache_")}
        return cache, rest

    serial_cache, serial_rest = split(serial["counters"])
    parallel_cache, parallel_rest = split(parallel["counters"])
    assert serial_rest == parallel_rest
    queries = lambda c: c.get("ball_cache_hits", 0) + c.get("ball_cache_misses", 0)  # noqa: E731
    assert queries(serial_cache) == queries(parallel_cache) > 0
    assert serial_rest["reveals_total"] > 0
    serial_wall = serial["histograms"]["game_wall_seconds"]
    parallel_wall = parallel["histograms"]["game_wall_seconds"]
    assert serial_wall["count"] == parallel_wall["count"] == 16


def test_parallel_journal_merges_shards(tmp_path):
    path = tmp_path / "sweep.jsonl"
    rows = run_tournament(locality=1, workers=2, journal_path=path)
    journal = SweepJournal(path, JOURNAL_KEY_FIELDS)
    assert len(journal) == len(rows) == 16
    assert journal.shard_paths() == []  # all shards folded in and removed
    assert {journal.key_of(e) for e in journal.load()} == {
        (r.adversary, r.victim, r.locality) for r in rows
    }


def test_parallel_resume_skips_journaled_games(tmp_path):
    path = tmp_path / "sweep.jsonl"
    full = run_tournament(locality=1, workers=2, journal_path=path)

    # Drop the journal down to the first 5 games (simulated kill), leave
    # two more stranded in a worker shard.
    journal = SweepJournal(path, JOURNAL_KEY_FIELDS)
    entries = journal.load()
    journal.clear()
    for entry in entries[:5]:
        journal.append(entry)
    shard = journal.shard("stranded")
    for entry in entries[5:7]:
        shard.append(entry)

    resumed = run_tournament(
        locality=1, workers=2, journal_path=path, resume=True
    )
    assert resumed == full
    assert len(SweepJournal(path, JOURNAL_KEY_FIELDS)) == 16
    assert journal.shard_paths() == []


def test_custom_portfolio_falls_back_to_serial():
    """Closures can't cross a process boundary; workers>1 must still work."""
    adversaries = {
        name: entry
        for name, entry in default_adversaries(1).items()
        if name == "theorem1-grid"
    }
    victims = {"greedy": GreedyOnlineColorer}
    rows = run_tournament(
        locality=1, victims=victims, adversaries=adversaries, workers=4
    )
    assert len(rows) == 1
    assert rows[0].won


def test_parallel_sweep_precomputed_rows_short_circuit(tmp_path):
    """Specs with precomputed rows are never replayed."""
    specs = [
        GameSpec("theorem1-grid", "greedy", 1, POLICY),
        GameSpec("no-such-adversary", "greedy", 1, POLICY),
    ]
    sentinel = TournamentRow("no-such-adversary", "greedy", 1, True, "cached")
    sweep = ParallelSweep(workers=1)
    rows = sweep.run(specs, precomputed={1: sentinel})
    assert rows[1] is sentinel
    assert rows[0].adversary == "theorem1-grid"


def test_worker_shards_use_distinct_files(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, JOURNAL_KEY_FIELDS)
    spec = GameSpec("theorem1-grid", "greedy", 1, POLICY,
                    journal_path=str(path))
    play_spec(spec)
    shards = journal.shard_paths()
    assert len(shards) == 1
    assert shards[0].endswith(f".shard-{os.getpid()}")
    assert journal.merge_shards() == 1
    assert journal.shard_paths() == []
    assert len(journal) == 1
