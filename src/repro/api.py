"""The stable public API facade.

``repro.api`` is the one import that examples, benchmarks, and
third-party code should need: it re-exports the supported entry points
under their canonical names and keeps them stable across internal
refactors (the implementation modules move; this surface does not).

Typed request/response surface (API v1)
---------------------------------------
The canonical way to run work is a typed, versioned request object —
the same four dataclasses travel in-process, over the CLI, and as the
HTTP server's wire bodies (:mod:`repro.server`):

:class:`SubmitRequest`
    One campaign submission: the spec plus run options.  Pass it to
    :func:`run_campaign` / :func:`run_threshold_search` /
    :func:`run_tournament`, or POST its payload to ``/v1/campaigns``.
:class:`CampaignHandle`
    The status view of a submitted campaign (id, state, progress,
    quarantine count, phase table).
:class:`RowPage`
    One page of result rows in the campaign's deterministic order.
:class:`ErrorBody`
    A structured failure with a machine-readable ``code``.

Entry points
------------
:func:`run_game`
    Play one adversary-vs-victim game by registry name.
:func:`run_tournament`
    The pre-baked full-portfolio sweep (see
    :mod:`repro.analysis.tournament`).
:func:`run_campaign` / :func:`run_threshold_search`
    Declarative campaigns over the sharded work-queue scheduler with a
    content-addressed result store (see :mod:`repro.analysis.campaign`).
    The canonical call form takes a :class:`SubmitRequest`; the
    pre-PR-10 loose-kwargs forms still work behind a
    :class:`DeprecationWarning` (see ``docs/api.md`` for the
    migration).
:func:`verify_coloring` / :func:`is_proper`
    Machine-check a coloring against a graph.
Registries
    ``register_adversary`` / ``register_victim`` / ``register_family``
    and their ``get_*`` / ``list_*`` companions extend every surface at
    once (tournament, campaigns, CLI, server).

Spec dataclasses (:class:`GameSpec`, :class:`GamePolicy`,
:class:`CampaignSpec`, :class:`ThresholdSearchSpec`,
:class:`TournamentRow`, :class:`CampaignOutcome`,
:class:`ThresholdResult`) and the store (:class:`ResultStore`,
:func:`spec_hash`) ride along for typed callers.

Symbols that predate the facade and moved during the PR 5 redesign are
served through deprecation shims: importing them from here works but
emits a :class:`DeprecationWarning` naming the canonical location.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.campaign import (
    AdversaryRef,
    AnyCampaign,
    CampaignError,
    CampaignOutcome,
    CampaignSpec,
    CampaignStatus,
    SPEC_VERSION,
    SpecVersionError,
    ThresholdResult,
    ThresholdSearchSpec,
    campaign_from_dict,
    campaign_status,
    covered_rows,
    load_campaign,
    threshold_table,
)
from repro.analysis.campaign import (
    run_campaign as _engine_run_campaign,
    run_threshold_search as _engine_run_threshold_search,
)
from repro.analysis.executor import GameSpec, play_spec
from repro.analysis.store import ResultStore, spec_hash
from repro.analysis.worker_pool import (
    shutdown_warm_pool,
    warm_pool_enabled,
    warm_pool_size,
)
from repro.analysis.tournament import (
    TournamentRow,
    clean_sweep,
    honest_rows,
)
from repro.analysis.tournament import run_tournament as _engine_run_tournament
from repro.registry import (
    FIXED_VICTIM,
    FixedVictimGame,
    Registry,
    RegistryError,
    get_adversary,
    get_family,
    get_victim,
    list_adversaries,
    list_families,
    list_victims,
    register_adversary,
    register_family,
    register_victim,
)
from repro.robustness.supervisor import GamePolicy
from repro.verify.coloring import assert_proper, is_proper

__all__ = [
    # typed request/response surface (API v1)
    "API_VERSION",
    "SPEC_VERSION",
    "SubmitRequest",
    "CampaignHandle",
    "RowPage",
    "ErrorBody",
    "SpecVersionError",
    # play
    "run_game",
    "run_tournament",
    "run_campaign",
    "run_threshold_search",
    "run_submission",
    "clean_sweep",
    "honest_rows",
    # verify
    "verify_coloring",
    "is_proper",
    # specs and results
    "GamePolicy",
    "GameSpec",
    "TournamentRow",
    "AdversaryRef",
    "CampaignSpec",
    "ThresholdSearchSpec",
    "CampaignOutcome",
    "CampaignStatus",
    "ThresholdResult",
    "campaign_from_dict",
    "campaign_status",
    "covered_rows",
    "load_campaign",
    "threshold_table",
    # store
    "ResultStore",
    "spec_hash",
    # warm worker pool (campaign workers kept alive between runs; see
    # repro.analysis.worker_pool)
    "warm_pool_enabled",
    "warm_pool_size",
    "shutdown_warm_pool",
    # registries
    "Registry",
    "RegistryError",
    "register_adversary",
    "register_victim",
    "register_family",
    "get_adversary",
    "get_victim",
    "get_family",
    "list_adversaries",
    "list_victims",
    "list_families",
    "FIXED_VICTIM",
    "FixedVictimGame",
    "CampaignError",
]

#: Canonical verifier under the facade's name: raises
#: :class:`~repro.robustness.errors.ProtocolViolation` subclasses on an
#: improper or over-budget coloring, returns None on success.
verify_coloring = assert_proper


# ----------------------------------------------------------------------
# Typed request/response surface (API v1)
# ----------------------------------------------------------------------

#: The request/response schema version this build speaks.  Distinct
#: from :data:`SPEC_VERSION` (the campaign *spec* schema): the spec can
#: evolve without the envelope changing, and vice versa.  Both are 1.
API_VERSION = 1


def _check_api_version(payload: Mapping[str, Any], what: str) -> None:
    version = payload.get("version", API_VERSION)
    if version != API_VERSION:
        raise SpecVersionError(
            f"unsupported {what} version {version!r}; this build speaks "
            f"version {API_VERSION}"
        )


def _opt_int(payload: Mapping[str, Any], key: str, minimum: int) -> Optional[int]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise CampaignError(f"{key!r} must be an integer, got {value!r}")
    if value < minimum:
        raise CampaignError(f"{key!r} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class SubmitRequest:
    """One typed campaign submission: the spec plus run options.

    This is the canonical argument of :func:`run_campaign` /
    :func:`run_threshold_search` / :func:`run_tournament` *and* the body
    of the HTTP server's ``POST /v1/campaigns`` — one definition, three
    transports.  The payload form is versioned
    (``{"version": 1, "spec": {...}, "workers": ..., ...}``); unknown
    fields and foreign versions are rejected with structured errors so
    clients never silently misparse.
    """

    spec: AnyCampaign
    workers: Optional[int] = None
    max_games: Optional[int] = None
    retries: int = 1
    chunk_size: Optional[int] = None
    timers: Optional[bool] = None
    version: int = API_VERSION

    def __post_init__(self) -> None:
        if self.version != API_VERSION:
            raise SpecVersionError(
                f"unsupported submit request version {self.version!r}; "
                f"this build speaks version {API_VERSION}"
            )
        if not isinstance(self.spec, (CampaignSpec, ThresholdSearchSpec)):
            raise CampaignError(
                "SubmitRequest.spec must be a CampaignSpec or "
                f"ThresholdSearchSpec, got {type(self.spec).__name__}"
            )

    @property
    def kind(self) -> str:
        return "sweep" if isinstance(self.spec, CampaignSpec) else "threshold"

    def campaign_id(self) -> str:
        """The submission's campaign id: the content hash of the spec
        payload alone.  Run options (workers, budgets) deliberately do
        not contribute — identical *work* coalesces to one campaign
        however it is tuned, which is what makes the server's
        single-flight dedupe line up with the store's content
        addressing (the id doubles as the manifest hash)."""
        return spec_hash(self.spec.to_payload())

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "spec": self.spec.to_payload(),
            "workers": self.workers,
            "max_games": self.max_games,
            "retries": self.retries,
            "chunk_size": self.chunk_size,
            "timers": self.timers,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "SubmitRequest":
        if not isinstance(payload, Mapping):
            raise CampaignError("submit body must be a JSON object")
        known = {
            "version", "spec", "workers", "max_games", "retries",
            "chunk_size", "timers",
        }
        extra = set(payload) - known
        if extra:
            raise CampaignError(
                f"unknown submit fields {sorted(extra)}; "
                f"known fields: {sorted(known)}"
            )
        _check_api_version(payload, "submit request")
        if "spec" not in payload or not isinstance(payload["spec"], Mapping):
            raise CampaignError("submit body needs a 'spec' object")
        retries = _opt_int(payload, "retries", 0)
        timers = payload.get("timers")
        if timers is not None and not isinstance(timers, bool):
            raise CampaignError(f"'timers' must be a boolean, got {timers!r}")
        return cls(
            spec=campaign_from_dict(payload["spec"]),
            workers=_opt_int(payload, "workers", 1),
            max_games=_opt_int(payload, "max_games", 1),
            retries=1 if retries is None else retries,
            chunk_size=_opt_int(payload, "chunk_size", 1),
            timers=timers,
        )


@dataclass(frozen=True)
class CampaignHandle:
    """The status view of one submitted campaign.

    ``state`` is one of ``queued`` / ``running`` / ``done`` /
    ``failed`` (in-memory server jobs) or ``stored`` (a campaign known
    only from its manifest — an earlier server life, or an offline
    ``repro campaign run``).  ``done``/``total`` count covered games
    against the store (``total`` is None for open-ended threshold
    searches); ``played``/``deduped`` report the submission's own run
    split once it finishes, which is the zero-replay evidence.
    """

    id: str
    name: str
    kind: str
    state: str
    done: int = 0
    total: Optional[int] = None
    played: Optional[int] = None
    deduped: Optional[int] = None
    errors: int = 0
    quarantined: int = 0
    detail: str = ""
    wall_seconds: Optional[float] = None
    phases: Optional[Dict[str, float]] = None
    version: int = API_VERSION

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "version": self.version,
            "id": self.id,
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "played": self.played,
            "deduped": self.deduped,
            "errors": self.errors,
            "quarantined": self.quarantined,
        }
        if self.detail:
            payload["detail"] = self.detail
        if self.wall_seconds is not None:
            payload["wall_seconds"] = self.wall_seconds
        if self.phases is not None:
            payload["phases"] = dict(self.phases)
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "CampaignHandle":
        if not isinstance(payload, Mapping):
            raise CampaignError("campaign handle must be a JSON object")
        _check_api_version(payload, "campaign handle")
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass(frozen=True)
class RowPage:
    """One page of result rows, in the campaign's deterministic order
    (expansion order for sweeps, probe order for threshold searches).

    ``next_offset`` is None on the final page; the order is a pure
    function of the spec, so identical requests against the same store
    state paginate byte-identically.
    """

    campaign_id: str
    offset: int
    limit: int
    total: int
    rows: Tuple[Dict[str, Any], ...] = ()
    version: int = API_VERSION

    @property
    def next_offset(self) -> Optional[int]:
        upper = self.offset + len(self.rows)
        return upper if upper < self.total else None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "campaign_id": self.campaign_id,
            "offset": self.offset,
            "limit": self.limit,
            "total": self.total,
            "next_offset": self.next_offset,
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "RowPage":
        if not isinstance(payload, Mapping):
            raise CampaignError("row page must be a JSON object")
        _check_api_version(payload, "row page")
        return cls(
            campaign_id=str(payload.get("campaign_id", "")),
            offset=int(payload.get("offset", 0)),
            limit=int(payload.get("limit", 0)),
            total=int(payload.get("total", 0)),
            rows=tuple(payload.get("rows", ())),
        )


@dataclass(frozen=True)
class ErrorBody:
    """A structured failure: a stable machine-readable ``code`` plus a
    human-readable message.

    Codes in use: ``bad-request`` (malformed body/parameters),
    ``bad-spec`` (a spec that fails validation), ``unsupported-version``
    (spec or envelope version this build does not speak), ``not-found``,
    ``rate-limited``, ``draining`` (server shutting down),
    ``method-not-allowed``, ``payload-too-large``, and ``internal``.
    The CLI maps ``bad-*``/``unsupported-version`` to exit status 2 —
    the same usage-error convention as local invocations.
    """

    code: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)
    version: int = API_VERSION

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "version": self.version,
            "code": self.code,
            "message": self.message,
        }
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "ErrorBody":
        if not isinstance(payload, Mapping):
            raise CampaignError("error body must be a JSON object")
        return cls(
            code=str(payload.get("code", "internal")),
            message=str(payload.get("message", "")),
            detail=dict(payload.get("detail", {})),
            version=int(payload.get("version", API_VERSION)),
        )


def run_game(
    adversary: str,
    victim: str = "greedy",
    locality: int = 1,
    *,
    policy: Optional[GamePolicy] = None,
    **params: Any,
) -> TournamentRow:
    """Play one supervised game by registry names; returns its row.

    ``params`` are forwarded to the adversary factory (``k``, ``side``,
    ``topology``, ...).  Fixed-victim adversaries (the Theorem 5
    reduction) ignore ``victim`` and play under the
    :data:`FIXED_VICTIM` column.

    >>> row = run_game("theorem1-grid", "greedy", locality=1)
    >>> row.won
    True
    """
    entry = get_adversary(adversary)(locality, **params)
    if isinstance(entry, FixedVictimGame):
        victim = FIXED_VICTIM
    else:
        get_victim(victim)  # fail fast with the registry's error message
    spec = GameSpec(
        adversary=adversary,
        victim=victim,
        locality=locality,
        policy=policy if policy is not None else GamePolicy(timeout=30.0),
        params=tuple(sorted(params.items())),
    )
    return play_spec(spec).row


# ----------------------------------------------------------------------
# Campaign entry points, rebased on SubmitRequest
# ----------------------------------------------------------------------

#: Run options carried by :class:`SubmitRequest`; passing them alongside
#: a request object is ambiguous and rejected.
_REQUEST_OPTION_FIELDS = frozenset(
    {"workers", "max_games", "retries", "chunk_size", "timers"}
)


def _warn_loose(entry_point: str) -> None:
    warnings.warn(
        f"the loose-kwargs form of repro.api.{entry_point} is deprecated; "
        f"build an api.SubmitRequest and pass it instead "
        f"(see docs/api.md, 'Migrating to typed requests')",
        DeprecationWarning,
        stacklevel=3,
    )


def _request_engine_kwargs(
    request: SubmitRequest, options: Mapping[str, Any]
) -> Dict[str, Any]:
    overlap = _REQUEST_OPTION_FIELDS & set(options)
    if overlap:
        raise TypeError(
            f"{sorted(overlap)} are carried by the SubmitRequest; set them "
            "there instead of passing keyword arguments alongside it"
        )
    kwargs = dict(
        workers=request.workers,
        max_games=request.max_games,
        retries=request.retries,
        chunk_size=request.chunk_size,
        timers=request.timers,
    )
    kwargs.update(options)  # machine-level plumbing: trace_path, ...
    return kwargs


def run_campaign(
    request: Union[SubmitRequest, CampaignSpec],
    store_dir=None,
    **options: Any,
) -> CampaignOutcome:
    """Run (or resume) a grid-sweep campaign against a result store.

    Canonical form: ``run_campaign(SubmitRequest(spec=...), store_dir)``.
    Run options (workers, budgets, retries) live on the request;
    machine-level plumbing (``trace_path``, ``max_worker_restarts``,
    ``poison_threshold``) may still be passed as keywords.  The
    pre-PR-10 loose form ``run_campaign(spec, store_dir, workers=...)``
    keeps working behind a :class:`DeprecationWarning`.
    """
    if isinstance(request, SubmitRequest):
        if store_dir is None:
            raise TypeError("run_campaign(SubmitRequest) needs a store_dir")
        if not isinstance(request.spec, CampaignSpec):
            raise CampaignError(
                "run_campaign takes a sweep submission; use "
                "run_threshold_search for threshold specs"
            )
        return _engine_run_campaign(
            request.spec, store_dir,
            **_request_engine_kwargs(request, options),
        )
    _warn_loose("run_campaign")
    return _engine_run_campaign(request, store_dir, **options)


def run_threshold_search(
    request: Union[SubmitRequest, ThresholdSearchSpec],
    store_dir=None,
    **options: Any,
) -> Tuple[List[ThresholdResult], CampaignOutcome]:
    """Run (or resume) an adaptive threshold-search campaign.

    Same calling convention as :func:`run_campaign`: canonical form
    takes a :class:`SubmitRequest` whose spec is a
    :class:`ThresholdSearchSpec`; the loose-kwargs form is deprecated.
    """
    if isinstance(request, SubmitRequest):
        if store_dir is None:
            raise TypeError(
                "run_threshold_search(SubmitRequest) needs a store_dir"
            )
        if not isinstance(request.spec, ThresholdSearchSpec):
            raise CampaignError(
                "run_threshold_search takes a threshold submission; use "
                "run_campaign for sweep specs"
            )
        return _engine_run_threshold_search(
            request.spec, store_dir,
            **_request_engine_kwargs(request, options),
        )
    _warn_loose("run_threshold_search")
    return _engine_run_threshold_search(request, store_dir, **options)


def run_submission(
    request: SubmitRequest, store_dir, **options: Any
) -> Tuple[Optional[List[ThresholdResult]], CampaignOutcome]:
    """Dispatch a :class:`SubmitRequest` by kind — the one entry point
    the server's executor needs.  Returns ``(threshold_results,
    outcome)``; ``threshold_results`` is None for sweeps."""
    if isinstance(request.spec, CampaignSpec):
        return None, run_campaign(request, store_dir, **options)
    return run_threshold_search(request, store_dir, **options)


def run_tournament(
    request: Any = None,
    store_dir=None,
    **options: Any,
) -> List[TournamentRow]:
    """Play the pre-baked full-portfolio sweep; returns one row per game.

    Canonical form: ``run_tournament(SubmitRequest(
    spec=CampaignSpec.tournament(locality)), store_dir=...)`` — the
    tournament is exactly a pre-baked campaign, so the typed form runs
    through the campaign engine and the content-addressed store
    (``store_dir`` optional: omitted, a throwaway store is used and the
    rows are simply returned).  The loose form
    ``run_tournament(locality=1, workers=...)`` keeps working behind a
    :class:`DeprecationWarning`.
    """
    if isinstance(request, SubmitRequest):
        if not isinstance(request.spec, CampaignSpec):
            raise CampaignError(
                "run_tournament takes a sweep submission "
                "(CampaignSpec.tournament builds the canonical one)"
            )
        import tempfile

        if store_dir is None:
            with tempfile.TemporaryDirectory(prefix="repro-tournament-") as tmp:
                index = run_campaign(request, tmp, **options).rows
        else:
            run_campaign(request, store_dir, **options)
            index = ResultStore(store_dir).index()
        row_fields = {f.name for f in fields(TournamentRow)}
        return [
            TournamentRow(**{k: v for k, v in row.items() if k in row_fields})
            for row in covered_rows(request.spec, index)
        ]
    if request is not None and not isinstance(request, int):
        raise TypeError(
            "run_tournament takes a SubmitRequest (canonical) or the "
            f"deprecated loose locality/kwargs form, got {type(request).__name__}"
        )
    _warn_loose("run_tournament")
    args = () if request is None else (request,)
    return _engine_run_tournament(*args, **options)
_MOVED = {
    "default_victims": (
        "repro.analysis.tournament", "default_victims",
        "resolve portfolios through repro.registry instead",
    ),
    "default_adversaries": (
        "repro.analysis.tournament", "default_adversaries",
        "resolve portfolios through repro.registry instead",
    ),
    "SweepJournal": (
        "repro.robustness.journal", "SweepJournal",
        "import it from repro.robustness.journal",
    ),
    "ParallelSweep": (
        "repro.analysis.executor", "ParallelSweep",
        "import it from repro.analysis.executor",
    ),
    "faulty_victims": (
        "repro.robustness.faults", "faulty_victims",
        "faulty victims are registered in repro.registry",
    ),
}


def __getattr__(name: str):
    if name in _MOVED:
        module_name, attr, hint = _MOVED[name]
        warnings.warn(
            f"repro.api.{name} is deprecated; {hint} "
            f"(canonical location: {module_name}.{attr})",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_MOVED) | set(globals()))
