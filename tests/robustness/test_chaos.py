"""Tests for the deterministic chaos-injection policy."""

import os

import pytest

from repro.robustness.chaos import (
    CHAOS_ENV_VAR,
    CHAOS_SEED_ENV_VAR,
    ChaosPolicy,
    ChaosSpecError,
    inject_corrupt_row,
)
from repro.robustness.errors import ReproError


def test_parse_round_trips():
    policy = ChaosPolicy.parse("kill:0.2,stall:0.1", seed=7)
    assert policy.rate("kill") == 0.2
    assert policy.rate("stall") == 0.1
    assert policy.rate("corrupt") == 0.0
    again = ChaosPolicy.parse(policy.to_string(), seed=7)
    assert again == policy


def test_parse_rejects_bad_specs():
    with pytest.raises(ChaosSpecError, match="unknown chaos mode"):
        ChaosPolicy.parse("explode:0.5")
    with pytest.raises(ChaosSpecError, match="bad chaos rate"):
        ChaosPolicy.parse("kill:lots")
    with pytest.raises(ChaosSpecError, match=r"in \[0, 1\]"):
        ChaosPolicy.parse("kill:1.5")
    with pytest.raises(ChaosSpecError, match="'mode:rate'"):
        ChaosPolicy.parse("kill")
    with pytest.raises(ChaosSpecError, match="empty chaos spec"):
        ChaosPolicy.parse("  ,  ")
    assert issubclass(ChaosSpecError, ReproError)


def test_from_env(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    assert ChaosPolicy.from_env() is None
    monkeypatch.setenv(CHAOS_ENV_VAR, "kill:0.25")
    monkeypatch.setenv(CHAOS_SEED_ENV_VAR, "42")
    policy = ChaosPolicy.from_env()
    assert policy is not None
    assert policy.seed == 42
    assert policy.rate("kill") == 0.25


def test_draws_are_deterministic():
    one = ChaosPolicy.parse("kill:0.5,stall:0.5", seed=3)
    two = ChaosPolicy.parse("kill:0.5,stall:0.5", seed=3)
    actions = [one.action_for(f"digest-{i}", 1) for i in range(50)]
    assert actions == [two.action_for(f"digest-{i}", 1) for i in range(50)]
    # The pattern is seed-dependent, not constant.
    other = ChaosPolicy.parse("kill:0.5,stall:0.5", seed=4)
    assert actions != [other.action_for(f"digest-{i}", 1) for i in range(50)]


def test_attempts_redraw_independently():
    """A killed game's requeue redraws — sub-1.0 rates let replays
    through, which is what separates transient loss from poison."""
    policy = ChaosPolicy.parse("kill:0.5", seed=0)
    draws = {
        policy.action_for("some-digest", attempt) for attempt in range(1, 30)
    }
    assert draws == {None, "kill"}


def test_rate_extremes():
    always = ChaosPolicy.parse("kill:1.0", seed=0)
    never = ChaosPolicy.parse("kill:0.0", seed=0)
    for attempt in range(1, 10):
        assert always.action_for("d", attempt) == "kill"
        assert never.action_for("d", attempt) is None


def test_roll_rate_is_roughly_calibrated():
    policy = ChaosPolicy.parse("kill:0.2", seed=1)
    hits = sum(policy.roll("kill", f"k{i}") for i in range(2000))
    assert 250 < hits < 550  # ~400 expected


def test_inject_corrupt_row_leaves_shard_parseable(tmp_path):
    from repro.analysis.store import ResultStore

    store = ResultStore(tmp_path)
    store.add({"spec_hash": "aaa", "won": True})
    with pytest.raises(OSError, match="torn write"):
        inject_corrupt_row(store.root, os.getpid())
    # The torn fragment is skipped on load and repaired on next append.
    assert set(store.index()) == {"aaa"}
    store.add({"spec_hash": "bbb", "won": False})
    assert set(store.index()) == {"aaa", "bbb"}
