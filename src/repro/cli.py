"""Command-line interface: run the paper's experiments from a shell.

Subcommands
-----------
``adversary``
    Run a lower-bound adversary against a chosen victim at a chosen
    locality.  Accepts any registered adversary name
    (:mod:`repro.registry`) plus the short aliases ``theorem1`` /
    ``theorem2`` / ``theorem3`` / ``theorem5``.
``upper-bound``
    Run an upper-bound algorithm (akbari/unify) on a chosen family at
    the paper's locality budget and verify the coloring.
``tournament``
    Run every registered adversary against every registered victim.
``campaign``
    Run declarative campaigns (``campaign run SPEC --store DIR``),
    resume one after a kill (``campaign resume``), report store
    progress, the run ledger, and the latest phase-attribution table
    (``campaign status``), or follow an in-flight run's live telemetry
    (``campaign watch``).  See :mod:`repro.analysis.campaign` for the
    spec format.  ``run``/``resume`` take ``--timers/--no-timers``
    (default on) toggling phase-attribution profiling.
``serve``
    Serve the campaign engine over HTTP (``serve --store DIR``):
    typed submissions, deterministic row pagination, SSE progress
    streams, Prometheus ``/metrics``.  See ``docs/serving.md``.
``submit``
    Submit a campaign spec to a running server (``submit SPEC --url
    URL``), optionally ``--watch`` progress and ``--rows`` page the
    results.  Server-side validation failures exit 2 exactly like
    local usage errors.
``report``
    Regenerate EXPERIMENTS.md content on stdout.
``stats``
    Summarize a trace recorded with ``--trace`` (event counts, games by
    adversary, reveal totals, cache hit rate), export its folded metrics
    snapshot (``--export prometheus|json``), or render the live telemetry
    of an in-flight campaign (``--live STORE_DIR``).

Shared run flags
----------------
Every game-playing subcommand (``adversary``, ``upper-bound``,
``tournament``, ``campaign run``/``resume``) takes the same five flags
from one parent parser: ``--trace FILE`` records a structured JSON-lines
trace, ``--metrics`` prints the metrics-registry totals after the run,
``--workers N`` parallelizes sweeps (single-game commands reject N > 1),
and ``--journal PATH`` / ``--resume`` checkpoint completed games to a
JSON-lines journal and skip them on the next run.  Campaigns persist to
their result store instead of a journal, so they reject ``--journal``
and treat ``--resume`` as the no-op it is (every campaign run resumes).

Exit statuses: 0 success, 1 structured failure (an adversary survived,
a harness error), 2 bad invocation (reported as ``repro: error: ...``).

Examples::

    python -m repro.cli adversary theorem1 --victim akbari --locality 2
    python -m repro.cli adversary theorem2-cylinder --locality 1 \\
        --trace /tmp/t.jsonl
    python -m repro.cli stats /tmp/t.jsonl
    python -m repro.cli upper-bound akbari --side 24
    python -m repro.cli tournament --locality 1 --workers 4
    python -m repro.cli campaign run examples/campaigns/smoke.json \\
        --store /tmp/store --workers 4
    python -m repro.cli campaign status --store /tmp/store
    python -m repro.cli campaign watch --store /tmp/store
    python -m repro.cli stats /tmp/t.jsonl --export prometheus
    python -m repro.cli stats --live /tmp/store
    python -m repro.cli serve --store /tmp/store --port 8423
    python -m repro.cli submit examples/campaigns/smoke.json \\
        --url http://127.0.0.1:8423 --watch --rows
    python -m repro.cli report
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from contextlib import nullcontext
from typing import Optional, Tuple

from repro.core.akbari import AkbariBipartiteColoring
from repro.core.unify import UnifyColoring, recommended_locality
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import scattered_reveal_order
from repro.families.triangular import TriangularGrid
from repro.models.online_local import OnlineLocalSimulator
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER, tracing
from repro.oracles import TriangularOracle
from repro.registry import (
    FIXED_VICTIM,
    FixedVictimGame,
    RegistryError,
    get_adversary,
    get_victim,
)
from repro.robustness.errors import ReproError
from repro.robustness.retry import retry_with_reseed
from repro.robustness.supervisor import call_with_timeout
from repro.verify.coloring import assert_proper


class UserError(Exception):
    """A bad invocation (unknown name, inconsistent flags).  ``main``
    reports it as ``repro: error: ...`` on stderr with exit status 2 —
    argparse's own convention for usage errors."""


def _print_metrics() -> None:
    from repro.observability.stats import format_metrics

    print("\nmetrics:")
    print(format_metrics(get_registry().snapshot()))


def _latest_phase_run(store_dir) -> Optional[dict]:
    """The newest run-ledger entry carrying phase timings, if any."""
    from repro.analysis.store import ResultStore

    for run in reversed(ResultStore(store_dir).runs()):
        if run.get("phases"):
            return run
    return None


def _print_phase_table(store_dir) -> None:
    from repro.observability.stats import render_phase_table

    entry = _latest_phase_run(store_dir)
    if entry is None:
        return
    print("\nphase attribution "
          f"(run #{entry.get('seq', '?')}, {entry.get('campaign', '?')}):")
    print(render_phase_table(entry["phases"], entry.get("wall_seconds")))


def _make_victim(name: str):
    """A fresh victim instance by registry name (CLI error on unknown)."""
    try:
        return get_victim(name)()
    except RegistryError as exc:
        raise UserError(str(exc)) from None


def _require_serial(args: argparse.Namespace, command: str) -> None:
    if args.workers != 1:
        raise UserError(
            f"{command} plays a single game; --workers applies to "
            "tournament and campaign runs"
        )


def _journal_for(args: argparse.Namespace):
    """The single-game journal named by ``--journal``, if any."""
    from repro.analysis.tournament import JOURNAL_KEY_FIELDS
    from repro.robustness.journal import SweepJournal

    if args.resume and args.journal is None:
        raise UserError(
            "--resume needs --journal PATH (there is no journal to "
            "resume from)"
        )
    if args.journal is None:
        return None
    return SweepJournal(args.journal, JOURNAL_KEY_FIELDS)


#: Short aliases kept from the pre-registry CLI; everything else in the
#: ``adversary`` positional is resolved through the adversary registry.
_ADVERSARY_ALIASES = {
    "theorem1": "theorem1-grid",
    "theorem3": "theorem3-gadget(2k-2)",
    "theorem5": "theorem5-reduction",
}


def _resolve_adversary(args: argparse.Namespace) -> Tuple[str, dict]:
    """(registry name, factory params) for the ``adversary`` positional."""
    name = args.adversary
    if name == "theorem2":
        return f"theorem2-{args.topology}", {}
    if name in _ADVERSARY_ALIASES:
        resolved = _ADVERSARY_ALIASES[name]
        params = {"k": args.k} if "theorem1" not in resolved else {}
        return resolved, params
    return name, {}


def cmd_adversary(args: argparse.Namespace) -> int:
    _require_serial(args, "adversary")
    name, params = _resolve_adversary(args)
    try:
        entry = get_adversary(name)(args.locality, **params)
    except RegistryError as exc:
        raise UserError(str(exc)) from None
    fixed = isinstance(entry, FixedVictimGame)
    victim_name = FIXED_VICTIM if fixed else args.victim

    journal = _journal_for(args)
    key_row = {
        "adversary": name, "victim": victim_name, "locality": args.locality
    }
    if journal is not None and args.resume:
        done = journal.completed().get(journal.key_of(key_row))
        if done is not None:
            verdict = "DEFEATED" if done.get("won") else "survived"
            print(
                f"{name} vs {victim_name} at T={args.locality}: {verdict} "
                "(from journal; game skipped)"
            )
            return 0 if done.get("won") else 1

    victim = None if fixed else _make_victim(args.victim)
    trace = tracing(args.trace) if args.trace else nullcontext()
    with trace:
        with TRACER.span("game", adversary=name, victim=victim_name) as span:
            result = entry.play() if fixed else entry(victim)
            span.note(
                reason=result.reason, won=result.won, forfeit=result.forfeit
            )
    if journal is not None:
        journal.append({
            **key_row,
            "won": result.won,
            "reason": result.reason,
            "forfeit": result.forfeit,
        })
    verdict = "DEFEATED" if result.won else "survived"
    print(f"{name} vs {victim_name} at T={args.locality}: {verdict}")
    print(f"  how: {result.reason}")
    if result.improper_edge is not None:
        print(f"  witness edge: {result.improper_edge}")
    for key, value in sorted(result.stats.items()):
        print(f"  {key}: {value}")
    if args.metrics:
        _print_metrics()
    return 0 if result.won else 1


def cmd_upper_bound(args: argparse.Namespace) -> int:
    _require_serial(args, "upper-bound")
    if args.algorithm == "akbari":
        grid = SimpleGrid(args.side, args.side)
        graph = grid.graph
        n = graph.num_nodes
        budget = args.locality or 3 * math.ceil(math.log2(n))
        make_algorithm = AkbariBipartiteColoring
        colors = 3
    elif args.algorithm == "unify-triangular":
        tri = TriangularGrid(args.side)
        graph = tri.graph
        n = graph.num_nodes
        budget = args.locality or recommended_locality(3, 1, n)
        make_algorithm = lambda: UnifyColoring(TriangularOracle())  # noqa: E731
        colors = 4
    else:  # pragma: no cover - argparse restricts choices
        raise UserError(f"unknown algorithm {args.algorithm!r}")

    journal = _journal_for(args)
    key_row = {
        "adversary": f"upper-bound/{args.algorithm}",
        "victim": f"side={args.side}",
        "locality": budget,
    }
    if journal is not None and args.resume:
        done = journal.completed().get(journal.key_of(key_row))
        if done is not None:
            print(
                f"{args.algorithm}: proper {colors}-coloring of {n} nodes "
                f"at T={budget} (from journal; run skipped)"
            )
            return 0

    # Randomized reveal orders can fail for seed-specific reasons (an
    # order that strands the oracle); retry with fresh seeds rather than
    # aborting the run.
    def attempt(seed: int):
        sim = OnlineLocalSimulator(
            graph, make_algorithm(), locality=budget, num_colors=colors
        )
        order = scattered_reveal_order(sorted(graph.nodes()), seed=seed)
        coloring = call_with_timeout(lambda: sim.run(order), args.timeout)
        assert_proper(graph, coloring, max_colors=colors)
        return seed

    trace = tracing(args.trace) if args.trace else nullcontext()
    with trace:
        with TRACER.span(
            "upper-bound", algorithm=args.algorithm, side=args.side, n=n
        ) as span:
            used_seed = retry_with_reseed(
                attempt,
                seed=args.seed,
                attempts=args.retries,
                on_retry=lambda seed, exc: print(
                    f"seed {seed} failed ({type(exc).__name__}: {exc}); "
                    "reseeding"
                ),
            )
            span.note(seed=used_seed, locality=budget)
    if journal is not None:
        journal.append({
            **key_row, "won": True, "reason": "proper", "seed": used_seed
        })
    print(
        f"{args.algorithm}: proper {colors}-coloring of {n} nodes at "
        f"T={budget} under an adversarial order (seed {used_seed})"
    )
    if args.metrics:
        _print_metrics()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate

    sys.stdout.write(generate())
    return 0


def cmd_tournament(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.analysis.tournament import (
        clean_sweep,
        forfeit_rows,
        honest_rows,
        run_tournament,
    )
    from repro.robustness.supervisor import GamePolicy

    if args.resume and args.journal is None:
        raise UserError(
            "--resume needs --journal PATH (there is no journal to "
            "resume from)"
        )

    rows = run_tournament(
        locality=args.locality,
        include_faulty=args.include_faulty,
        policy=GamePolicy(step_budget=args.step_budget, timeout=args.timeout),
        journal_path=args.journal,
        resume=args.resume,
        workers=args.workers,
        trace_path=args.trace,
    )

    def verdict(row) -> str:
        if row.forfeit:
            return "FORFEIT"
        return "DEFEATED" if row.won else "survived"

    print(render_table(
        ["adversary", "victim", "T", "verdict", "how"],
        [[r.adversary, r.victim, r.locality, verdict(r), r.reason]
         for r in rows],
    ))
    honest = honest_rows(rows)
    swept = clean_sweep(honest)
    forfeits = forfeit_rows(rows)
    print(
        f"\nclean sweep over honest victims: {swept} "
        f"({sum(r.won for r in honest)}/{len(honest)})"
    )
    if forfeits:
        print(f"forfeits: {len(forfeits)}")
        for row in forfeits:
            cause = row.error_type
            if row.failed_at_step is not None:
                cause += f" at step {row.failed_at_step}"
            print(f"  {row.adversary} vs {row.victim}: {row.reason}"
                  + (f" [{cause}]" if cause else "")
                  + (f" ({row.detail})" if row.detail else ""))
    if args.metrics:
        _print_metrics()
    return 0 if swept and all(r.won for r in rows) else 1


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        CampaignError,
        CampaignSpec,
        load_campaign,
        run_campaign,
        run_threshold_search,
        threshold_table,
    )

    if args.journal is not None:
        raise UserError(
            "campaigns persist to the result store; use --store DIR "
            "instead of --journal"
        )
    if args.require_store and not os.path.isdir(args.store):
        raise UserError(
            f"nothing to resume: no result store at {args.store!r} "
            "(start one with 'campaign run')"
        )
    if not os.path.exists(args.spec):
        raise UserError(f"no campaign spec at {args.spec!r}")
    try:
        spec = load_campaign(args.spec)
    except CampaignError as exc:
        raise UserError(str(exc)) from None

    if isinstance(spec, CampaignSpec):
        outcome = run_campaign(
            spec,
            args.store,
            workers=args.workers,
            max_games=args.max_games,
            retries=args.retries,
            trace_path=args.trace,
            max_worker_restarts=args.max_worker_restarts,
            poison_threshold=args.poison_threshold,
            chunk_size=args.chunk_size,
            timers=args.timers,
        )
    else:
        results, outcome = run_threshold_search(
            spec,
            args.store,
            workers=args.workers,
            max_games=args.max_games,
            retries=args.retries,
            trace_path=args.trace,
            max_worker_restarts=args.max_worker_restarts,
            poison_threshold=args.poison_threshold,
            chunk_size=args.chunk_size,
            timers=args.timers,
        )
        print(threshold_table(results))
        print()
    quarantined = [
        row for row in outcome.rows.values() if row.get("cause") == "poison"
    ]
    print(
        f"campaign {outcome.name}: {len(outcome.rows)}/{outcome.total} "
        f"games in store (played {outcome.played}, deduped "
        f"{outcome.deduped}, errors {len(outcome.errors)}, "
        f"quarantined {len(quarantined)})"
    )
    for row in quarantined:
        print(
            f"  quarantined: {row.get('adversary')} vs {row.get('victim')} "
            f"at T={row.get('locality')} ({row.get('detail', '')})"
        )
    for error in outcome.errors:
        print(f"  error: {error}")
    if args.timers:
        _print_phase_table(args.store)
    if args.metrics:
        _print_metrics()
    return 0 if not outcome.errors else 1


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import campaign_status
    from repro.analysis.store import ResultStore

    if not os.path.isdir(args.store):
        raise UserError(f"no result store at {args.store!r}")
    statuses, runs = campaign_status(args.store)
    print("campaigns:")
    if not statuses:
        print("  (no manifests recorded)")
    for status in statuses:
        if status.total is not None:
            progress = f"{status.done}/{status.total} games done"
        else:
            progress = f"{status.done} probes answered"
        line = f"  {status.name} [{status.kind}]: {progress}"
        if status.quarantined:
            line += f", {status.quarantined} quarantined"
        if status.detail:
            line += f" ({status.detail})"
        print(line)
    quarantined = ResultStore(args.store).quarantined()
    if quarantined:
        print(f"quarantined games ({len(quarantined)}, cause=poison):")
        for row in quarantined:
            print(
                f"  {row.get('adversary')} vs {row.get('victim')} "
                f"at T={row.get('locality')}"
            )
    print("runs:")
    if not runs:
        print("  (no runs recorded)")
    for run in runs:
        line = (
            f"  #{run.get('seq', '?')} {run.get('kind', '?')} "
            f"{run.get('campaign', '?')}: played {run.get('played', '?')}, "
            f"deduped {run.get('deduped', '?')}, "
            f"errors {run.get('errors', '?')}"
        )
        if run.get("wall_seconds") is not None:
            line += f", wall {run['wall_seconds']:.3f}s"
        if run.get("phase_coverage") is not None:
            line += f" ({run['phase_coverage']:.1%} attributed)"
        print(line)
    _print_phase_table(args.store)
    return 0


def cmd_campaign_watch(args: argparse.Namespace) -> int:
    import time

    from repro.observability.export import (
        read_live_status,
        render_live_status,
    )

    if not os.path.isdir(args.store):
        raise UserError(f"no result store at {args.store!r}")
    waited = False
    while True:
        status = read_live_status(args.store)
        if status is None:
            if args.once:
                print(f"(no live telemetry in {args.store}; is a "
                      "campaign running with live status enabled?)")
                return 1
            if not waited:
                print(f"waiting for live telemetry in {args.store} ...")
                waited = True
        else:
            print(render_live_status(status))
            if status.get("done") or args.once:
                return 0
            print()
        time.sleep(args.interval)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import ColoringServer

    server = ColoringServer(
        args.store,
        args.host,
        args.port,
        rate=args.rate,
        burst=args.burst,
        drain_grace=args.drain_grace,
        trace_path=args.trace,
    )
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:  # pragma: no cover - ^C without a loop yet
        pass
    return 0


def _http_call(base, method, path, payload=None, timeout=30.0,
               client_id=None):
    """One JSON request against the server; returns (status, payload).

    HTTP-level failures come back as (status, error payload) so callers
    can map :class:`~repro.api.ErrorBody` codes to exit statuses;
    transport failures (server unreachable) are a :class:`UserError`.
    """
    import json as _json
    import urllib.error
    import urllib.request

    data = None if payload is None else _json.dumps(payload).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if client_id:
        headers["X-Client-Id"] = client_id
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, _json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        try:
            body = _json.loads(exc.read())
        except (ValueError, OSError):
            body = {"code": "internal", "message": str(exc)}
        return exc.code, body
    except (urllib.error.URLError, OSError) as exc:
        raise UserError(f"cannot reach server at {base!r}: {exc}") from None


def cmd_submit(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.campaign import CampaignError, load_campaign
    from repro.api import CampaignHandle, ErrorBody, SubmitRequest

    if not os.path.exists(args.spec):
        raise UserError(f"no campaign spec at {args.spec!r}")
    try:
        spec = load_campaign(args.spec)
        request = SubmitRequest(
            spec=spec,
            workers=args.workers if args.workers != 1 else None,
            max_games=args.max_games,
            retries=args.retries,
            chunk_size=args.chunk_size,
            timers=args.timers,
        )
    except CampaignError as exc:
        raise UserError(str(exc)) from None

    base = args.url.rstrip("/")
    status, payload = _http_call(
        base, "POST", "/v1/campaigns", request.to_payload(),
        timeout=args.http_timeout, client_id=args.client_id,
    )
    if status >= 400:
        error = ErrorBody.from_payload(payload)
        message = f"server rejected submission [{error.code}]: {error.message}"
        if error.code.startswith("bad-") or error.code == "unsupported-version":
            raise UserError(message)
        raise ReproError(message)
    handle = CampaignHandle.from_payload(payload)
    coalesced = " (coalesced onto the in-flight run)" if status == 200 else ""
    print(f"campaign {handle.id} [{handle.kind}] {handle.state}: "
          f"{handle.name}{coalesced}")

    if args.watch:
        while handle.state in ("queued", "running"):
            time.sleep(args.interval)
            status, payload = _http_call(
                base, "GET", f"/v1/campaigns/{handle.id}",
                timeout=args.http_timeout, client_id=args.client_id,
            )
            if status == 429:
                continue  # backed off by the sleep above
            if status >= 400:
                error = ErrorBody.from_payload(payload)
                raise ReproError(
                    f"status poll failed [{error.code}]: {error.message}"
                )
            handle = CampaignHandle.from_payload(payload)
            total = "?" if handle.total is None else handle.total
            print(f"  {handle.state}: {handle.done}/{total} games in store")
        summary = (
            f"campaign {handle.name} {handle.state}: played "
            f"{handle.played}, deduped {handle.deduped}, errors "
            f"{handle.errors}, quarantined {handle.quarantined}"
        )
        if handle.detail:
            summary += f" ({handle.detail})"
        print(summary)
        if handle.state == "failed":
            return 1

    if args.rows:
        import json as _json

        offset = 0
        while True:
            status, payload = _http_call(
                base, "GET",
                f"/v1/campaigns/{handle.id}/rows"
                f"?offset={offset}&limit={args.page_size}",
                timeout=args.http_timeout, client_id=args.client_id,
            )
            if status >= 400:
                error = ErrorBody.from_payload(payload)
                raise ReproError(
                    f"rows fetch failed [{error.code}]: {error.message}"
                )
            for row in payload.get("rows", []):
                print(_json.dumps(row, sort_keys=True))
            if payload.get("next_offset") is None:
                break
            offset = payload["next_offset"]
    return 0 if handle.errors == 0 else 1


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.observability.stats import aggregate_file, render_stats

    if args.live is not None:
        from repro.observability.export import (
            read_live_status,
            render_live_status,
        )

        if args.trace is not None:
            raise UserError(
                "--live reads a store's telemetry; drop the TRACE argument"
            )
        if not os.path.isdir(args.live):
            raise UserError(f"no result store at {args.live!r}")
        status = read_live_status(args.live)
        if status is None:
            raise UserError(
                f"no live telemetry in {args.live!r} (is a campaign "
                "running with live status enabled?)"
            )
        print(render_live_status(status))
        return 0

    if args.trace is None:
        raise UserError("stats needs a TRACE file (or --live STORE_DIR)")
    if not os.path.exists(args.trace):
        raise UserError(f"no trace file at {args.trace!r}")
    try:
        stats = aggregate_file(args.trace)
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        # A half-written or non-trace file is a bad invocation, not a
        # crash: report it under the usage-error convention.
        raise UserError(
            f"unreadable trace file {args.trace!r}: {exc}"
        ) from None

    if args.export is not None:
        from repro.observability.export import to_json, to_prometheus

        snapshot = stats.metrics.snapshot()
        if args.export == "prometheus":
            sys.stdout.write(to_prometheus(snapshot))
        else:
            print(to_json(snapshot))
        return 0
    print(render_stats(stats, top=args.top))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _run_flags() -> argparse.ArgumentParser:
    """The shared parent parser: every game-playing subcommand takes the
    same five run flags, declared exactly once."""
    flags = argparse.ArgumentParser(add_help=False)
    group = flags.add_argument_group("run flags")
    group.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSON-lines game trace to FILE (inspect with the "
        "stats subcommand)",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="print the metrics-registry totals after the run",
    )
    group.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="worker processes for sweeps (default 1 = serial; "
        "single-game commands reject N > 1)",
    )
    group.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append completed games to a JSON-lines journal "
        "(campaigns use --store instead)",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="skip games already recorded in --journal "
        "(requires --journal; campaigns always resume from --store)",
    )
    return flags


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of the PODC 2024 Online-LOCAL "
        "grid-coloring lower bounds.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    flags = _run_flags()

    adversary = sub.add_parser(
        "adversary", parents=[flags], help="run a lower-bound adversary"
    )
    adversary.add_argument(
        "adversary", metavar="ADVERSARY",
        help="a registered adversary name (see repro.registry) or one of "
        "the aliases theorem1/theorem2/theorem3/theorem5",
    )
    adversary.add_argument("--victim", default="greedy")
    adversary.add_argument("--locality", type=int, default=1)
    adversary.add_argument("--topology", default="torus",
                           choices=["torus", "cylinder"])
    adversary.add_argument("--k", type=int, default=3)
    adversary.set_defaults(func=cmd_adversary)

    upper = sub.add_parser(
        "upper-bound", parents=[flags], help="run an upper-bound algorithm"
    )
    upper.add_argument("algorithm", choices=["akbari", "unify-triangular"])
    upper.add_argument("--side", type=int, default=16)
    upper.add_argument("--locality", type=int, default=None)
    upper.add_argument("--seed", type=int, default=0)
    upper.add_argument(
        "--retries", type=_positive_int, default=3,
        help="reseeded attempts before giving up (default 3)",
    )
    upper.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock budget per attempt in seconds",
    )
    upper.set_defaults(func=cmd_upper_bound)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md on stdout")
    report.set_defaults(func=cmd_report)

    tournament = sub.add_parser(
        "tournament", parents=[flags],
        help="run every adversary against every victim",
    )
    tournament.add_argument("--locality", type=int, default=1)
    tournament.add_argument(
        "--include-faulty", action="store_true",
        help="add the fault-injection victim family to the sweep",
    )
    tournament.add_argument(
        "--step-budget", type=int, default=None,
        help="max algorithm steps per game",
    )
    tournament.add_argument(
        "--timeout", type=float, default=30.0,
        help="wall-clock budget per game in seconds (default 30)",
    )
    tournament.set_defaults(func=cmd_tournament)

    campaign = sub.add_parser(
        "campaign", help="run declarative campaigns against a result store"
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)
    for name, require_store, chelp in (
        ("run", False,
         "run a campaign spec (resumes automatically if the store exists)"),
        ("resume", True,
         "resume an interrupted campaign (requires an existing store)"),
    ):
        cmd = csub.add_parser(name, parents=[flags], help=chelp)
        cmd.add_argument(
            "spec", metavar="SPEC", help="campaign spec file (.json or .toml)"
        )
        cmd.add_argument(
            "--store", required=True, metavar="DIR",
            help="content-addressed result store directory",
        )
        cmd.add_argument(
            "--max-games", type=_positive_int, default=None, metavar="N",
            help="stop after playing N new games (dedupes don't count)",
        )
        cmd.add_argument(
            "--retries", type=_positive_int, default=1,
            help="supervised attempts per game before recording an error "
            "(default 1)",
        )
        cmd.add_argument(
            "--max-worker-restarts", type=int, default=None, metavar="N",
            help="worker respawns before the pool degrades to in-process "
            "serial execution (default: max(8, 2×workers))",
        )
        cmd.add_argument(
            "--poison-threshold", type=_positive_int, default=3, metavar="N",
            help="worker kills/hangs one game may cause before it is "
            "quarantined as a forfeit:poison row (default 3)",
        )
        cmd.add_argument(
            "--chunk-size", type=_positive_int, default=None, metavar="N",
            help="games per worker lease (default: adaptive — large "
            "chunks while the queue is deep, halving toward 1 at the "
            "tail; 1 pins the per-game protocol)",
        )
        cmd.add_argument(
            "--timers", action=argparse.BooleanOptionalAction, default=True,
            help="phase-attribution timing for this run; the phase table "
            "is printed afterwards and recorded in the run ledger "
            "(default on)",
        )
        cmd.set_defaults(func=cmd_campaign_run, require_store=require_store)
    status = csub.add_parser(
        "status", help="report store progress, the run ledger, and the "
        "latest phase-attribution table"
    )
    status.add_argument(
        "--store", required=True, metavar="DIR",
        help="content-addressed result store directory",
    )
    status.set_defaults(func=cmd_campaign_status)
    watch = csub.add_parser(
        "watch", help="follow an in-flight campaign's live telemetry"
    )
    watch.add_argument(
        "--store", required=True, metavar="DIR",
        help="content-addressed result store directory",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="seconds between polls of the live status file (default 1)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render the current status once and exit (status 1 if no "
        "telemetry has been written yet)",
    )
    watch.set_defaults(func=cmd_campaign_watch)

    serve = sub.add_parser(
        "serve", help="serve the campaign engine over HTTP "
        "(coloring-as-a-service; see docs/serving.md)"
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="content-addressed result store the server runs against",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8423,
        help="TCP port (0 = ephemeral; the bound port is printed on "
        "startup either way, default 8423)",
    )
    serve.add_argument(
        "--rate", type=float, default=20.0, metavar="R",
        help="per-client request budget in requests/second "
        "(0 disables rate limiting, default 20)",
    )
    serve.add_argument(
        "--burst", type=int, default=40, metavar="N",
        help="per-client burst allowance on top of --rate (default 40)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="S",
        help="seconds a SIGTERM drain waits for the in-flight campaign "
        "(default 10)",
    )
    serve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSON-lines trace of served campaigns to FILE",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a campaign spec to a running repro server"
    )
    submit.add_argument(
        "spec", metavar="SPEC", help="campaign spec file (.json or .toml)"
    )
    submit.add_argument(
        "--url", required=True, metavar="URL",
        help="server base URL (e.g. http://127.0.0.1:8423)",
    )
    submit.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="worker processes the server should use for this campaign",
    )
    submit.add_argument(
        "--max-games", type=_positive_int, default=None, metavar="N",
        help="stop after playing N new games (dedupes don't count)",
    )
    submit.add_argument(
        "--retries", type=_positive_int, default=1,
        help="supervised attempts per game before recording an error",
    )
    submit.add_argument(
        "--chunk-size", type=_positive_int, default=None, metavar="N",
        help="games per worker lease (default: adaptive)",
    )
    submit.add_argument(
        "--timers", action=argparse.BooleanOptionalAction, default=None,
        help="phase-attribution timing for the served run "
        "(default: server setting)",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="poll the campaign handle until it finishes and print "
        "progress",
    )
    submit.add_argument(
        "--rows", action="store_true",
        help="after submitting (and watching, if --watch), page through "
        "the campaign's rows and print them as JSON lines",
    )
    submit.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="seconds between --watch polls (default 1)",
    )
    submit.add_argument(
        "--page-size", type=_positive_int, default=100, metavar="N",
        help="rows per page for --rows (default 100)",
    )
    submit.add_argument(
        "--client-id", default=None, metavar="ID",
        help="X-Client-Id header value (rate-limit identity)",
    )
    submit.add_argument(
        "--http-timeout", type=float, default=30.0, metavar="S",
        help="per-request HTTP timeout in seconds (default 30)",
    )
    submit.set_defaults(func=cmd_submit)

    stats = sub.add_parser(
        "stats", help="summarize a trace recorded with --trace, export "
        "its metrics, or render live campaign telemetry"
    )
    stats.add_argument(
        "trace", metavar="TRACE", nargs="?", default=None,
        help="trace file to read (omit with --live)",
    )
    stats.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="slowest games to list (default 5)",
    )
    stats.add_argument(
        "--export", choices=["prometheus", "json"], default=None,
        help="emit the trace's folded metrics snapshot in this format "
        "instead of the report",
    )
    stats.add_argument(
        "--live", default=None, metavar="DIR",
        help="render the live telemetry of the campaign running against "
        "this result store instead of reading a trace",
    )
    stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UserError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
