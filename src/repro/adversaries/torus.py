"""The Theorem 2 adversary: Ω(√n) for toroidal and cylindrical grids.

With an odd number of columns, every row cycle's b-value is odd
(Lemma 3.5).  Summing cell cancellations between two rows gives
Equation (1): two oppositely oriented row cycles of a proper 3-coloring
satisfy ``b(C1) + b(C2) = 0``.

The adversary reveals two full rows whose ``T``-balls induce disjoint,
non-adjacent cylindrical bands.  From the algorithm's viewpoint the two
bands are interchangeable under horizontal reflection, so the adversary
commits the second band's orientation *after* seeing its colors, picking
the reflection that makes ``b(C1) + b(C2) ≠ 0`` — always possible since
both values are odd.  The final coloring can then never be proper.

This works whenever ``√n ≥ 4T + 4``, giving the Ω(√n) bound.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.adversaries.result import AdversaryError, AdversaryResult
from repro.core.bvalue import cycle_b_value
from repro.families.grids import CylindricalGrid, ToroidalGrid
from repro.models.adaptive import LateAutomorphismInstance
from repro.models.base import AlgorithmError, OnlineAlgorithm
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER
from repro.verify.certificates import TorusCertificate
from repro.verify.coloring import find_monochromatic_edge


class TorusAdversary:
    """Defeats 3-coloring on odd-column toroidal/cylindrical grids.

    Parameters
    ----------
    locality:
        The victim's locality budget ``T``.
    side:
        Grid side length √n; must be odd and at least ``4T + 4``.
        Defaults to the smallest valid odd value.
    topology:
        ``"torus"`` or ``"cylinder"``.
    """

    def __init__(
        self,
        locality: int,
        side: Optional[int] = None,
        topology: str = "torus",
    ) -> None:
        if topology not in ("torus", "cylinder"):
            raise ValueError(f"unknown topology {topology!r}")
        minimum = 4 * locality + 5
        if minimum % 2 == 0:
            minimum += 1
        if side is None:
            side = minimum
        if side % 2 == 0:
            raise ValueError(f"side must be odd, got {side}")
        if side < 4 * locality + 4:
            raise ValueError(
                f"side {side} too small for locality {locality}: the two "
                f"bands need 4T+4 = {4 * locality + 4} rows"
            )
        self.locality = locality
        self.side = side
        self.topology = topology

    def _build_host(self):
        if self.topology == "torus":
            return ToroidalGrid(self.side, self.side)
        return CylindricalGrid(self.side, self.side)

    def _mirror(self, host) -> Dict:
        """The full-host automorphism reflecting columns: j -> -j mod m."""
        m = self.side
        return {
            (i, j): (i, (-j) % m)
            for i in range(m)
            for j in range(m)
        }

    # ------------------------------------------------------------------
    def run(self, algorithm: OnlineAlgorithm) -> AdversaryResult:
        """Play the full game against ``algorithm``."""
        stats = {
            "locality": self.locality,
            "side": self.side,
            "topology": self.topology,
            "declared_n": self.side * self.side,
        }
        try:
            return self._play(algorithm, stats)
        except AlgorithmError as error:
            return AdversaryResult(
                won=True,
                reason="model-violation",
                stats={**stats, "violation": str(error)},
            )

    def _play(self, algorithm: OnlineAlgorithm, stats: dict) -> AdversaryResult:
        T = self.locality
        m = self.side
        host = self._build_host()
        grid = host.graph
        instance = LateAutomorphismInstance(
            grid, algorithm, locality=T, num_colors=3
        )
        mirror = self._mirror(host)
        row_one, row_two = T, 3 * T + 2
        band_one = {
            (i, j) for i in range(row_one - T, row_one + T + 1) for j in range(m)
        }
        band_two = {
            (i, j) for i in range(row_two - T, row_two + T + 1) for j in range(m)
        }
        frag_one = instance.add_fragment(band_one, {})
        frag_two = instance.add_fragment(band_two, {"mirror": mirror})

        improper = False
        for j in range(m):
            instance.reveal_in_fragment(frag_one, (row_one, j))
            improper |= instance.tracker.monochromatic_in_last_step()
        for j in range(m):
            instance.reveal_in_fragment(frag_two, (row_two, j))
            improper |= instance.tracker.monochromatic_in_last_step()

        instance.commit_fragment(frag_one, "identity")
        if improper:
            instance.commit_fragment(frag_two, "identity")
            return self._finish(instance, grid, None, stats)

        colors_one = [
            instance.tracker.colors[instance._id_of_host[(row_one, j)]]
            for j in range(m)
        ]
        colors_two_pre = [
            instance.fragment_color(frag_two, (row_two, j)) for j in range(m)
        ]
        b_one = cycle_b_value(colors_one)
        beta_two = cycle_b_value(colors_two_pre)
        if b_one % 2 == 0 or beta_two % 2 == 0:
            raise AdversaryError(
                "odd-length row cycles of a proper coloring must have odd "
                "b-values (Lemma 3.5) — but no improper edge was detected"
            )
        # Cycle C2 is row_two traversed in the direction opposite to C1.
        # identity commit: that traversal reads the colors reversed,
        #   b(C2) = -beta_two;  mirror commit: b(C2) = +beta_two.
        if b_one - beta_two != 0:
            instance.commit_fragment(frag_two, "identity")
            b_two = -beta_two
        else:
            instance.commit_fragment(frag_two, "mirror")
            b_two = beta_two
        if b_one + b_two == 0:
            raise AdversaryError("orientation choice failed to break Equation (1)")
        stats["b_sum"] = b_one + b_two
        get_registry().inc("adversary_rounds")
        if TRACER.enabled:
            TRACER.event(
                "orientation-committed",
                theorem="theorem2",
                topology=self.topology,
                b_one=b_one,
                beta_two=beta_two,
                b_sum=b_one + b_two,
            )

        # Reveal everything else; the coloring can no longer be proper.
        for node in sorted(grid.nodes()):
            if node not in instance._id_of_host:
                instance.reveal(node)
            elif instance.tracker.colors.get(instance._id_of_host[node]) is None:
                instance.reveal(node)

        cycle_one = [(row_one, j) for j in range(m)]
        cycle_two = [(row_two, (-j) % m) for j in range(m)]
        certificate = TorusCertificate(
            cycle_one=cycle_one,
            cycle_two=cycle_two,
            b_sum=b_one + b_two,
        )
        return self._finish(instance, grid, certificate, stats)

    def _finish(self, instance, grid, certificate, stats) -> AdversaryResult:
        instance.audit()
        coloring = instance.coloring()
        edge = find_monochromatic_edge(grid, coloring)
        if edge is not None:
            return AdversaryResult(
                won=True,
                reason="monochromatic-edge",
                improper_edge=edge,
                certificate=certificate,
                stats=stats,
            )
        if certificate is not None and all(node in coloring for node in grid.nodes()):
            raise AdversaryError(
                "certificate holds on a complete proper coloring — "
                "contradicts Equation (1)"
            )
        return AdversaryResult(won=False, reason="survived", stats=stats)
