"""Experiment T1 (Theorem 1): Ω(log n) for 3-coloring simple grids.

The adversary defeats every member of the algorithm portfolio at each
tested locality, with a discovered region of length ≤ 2^k(2T+1)+3(2^k-1)
for k = 4T+5 — so the locality any surviving algorithm would need grows
as Ω(log of the region the adversary can afford), i.e. Ω(log n).

Printed table: victim × locality → outcome, forced b-value, region
length, reveals used.
"""

import pytest

from repro.adversaries.grid import GridAdversary
from repro.analysis.tables import render_table
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.models.simulation import LocalAsOnline

PORTFOLIO = {
    "greedy-online": GreedyOnlineColorer,
    "akbari-truncated": AkbariBipartiteColoring,
    "local-canonical": lambda: LocalAsOnline(CanonicalLocalColorer()),
}


def run_sweep(localities=(1, 2)):
    rows = []
    for T in localities:
        for name, factory in PORTFOLIO.items():
            result = GridAdversary(locality=T).run(factory())
            rows.append(
                [
                    name,
                    T,
                    result.reason,
                    result.stats.get("b_forced", "-"),
                    result.stats.get("region_length", "-"),
                    result.stats.get("reveals", "-"),
                ]
            )
            assert result.won, f"{name} survived at T={T}"
    return rows


def test_theorem1_portfolio_defeated():
    rows = run_sweep()
    print()
    print("Theorem 1: grid adversary vs portfolio")
    print(
        render_table(
            ["victim", "T", "outcome", "b_forced", "region", "reveals"], rows
        )
    )


def test_theorem1_region_bound_matches_lemma_3_6():
    """The region needed to force b >= k stays within the Lemma 3.6 budget
    (we report the tighter 2^k recurrence our construction achieves)."""
    result = GridAdversary(locality=1).run(GreedyOnlineColorer())
    assert result.won
    region = result.stats.get("region_length")
    if region is not None:
        level = result.stats["level"]
        T = result.stats["locality"]
        assert region <= 2 ** level * (2 * T + 1) + 3 * (2 ** level - 1)
        assert region <= 5 ** (level + 1) * max(1, T)


@pytest.mark.parametrize("victim", sorted(PORTFOLIO))
def test_bench_theorem1(benchmark, victim):
    factory = PORTFOLIO[victim]
    result = benchmark(lambda: GridAdversary(locality=1).run(factory()))
    assert result.won
