"""Baseline colorers: the adversary's victim portfolio and sanity anchors.

* :class:`GreedyOnlineColorer` — first-fit online coloring; locality-
  independent and easily defeated by every adversary in this library.
* :class:`GreedySLocalColorer` — the classical SLOCAL locality-1 greedy
  (degree+1)-coloring (Section 1's example of SLOCAL power).
* :class:`CanonicalLocalColorer` — a LOCAL-model algorithm that 2-colors
  bipartite graphs once its view covers the whole graph (the trivial
  O(diameter) upper bound; on a √n×√n grid that is the Θ(√n) LOCAL
  baseline of [BHK+17]).
* :class:`CheatingCoordinateColorer` — an out-of-model control: it reads
  grid coordinates out of the node identifiers, which the Online-LOCAL
  model forbids (identifiers are opaque).  Run against the fixed-host
  simulator with ``leak_labels=True`` it 2-colors any grid at locality 0,
  demonstrating that the lower bounds hinge on identifier anonymity and
  adaptive instance commitment, not on graph structure alone.
"""

from __future__ import annotations

from typing import Mapping

from repro.graphs.traversal import bfs_distances
from repro.models.base import AlgorithmView, Color, NodeId, OnlineAlgorithm
from repro.models.local import LocalAlgorithm, LocalView


class GreedyOnlineColorer(OnlineAlgorithm):
    """First-fit greedy: smallest color not used by a colored neighbor.

    When every color is blocked (the adversary cornered it) the colorer
    plays color 1 — an improper edge, i.e., a recorded loss — rather than
    crashing, so adversary benchmarks can count defeats.
    """

    name = "greedy-online"

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        used = {
            view.colors[v]
            for v in view.graph.neighbors(target)
            if v in view.colors
        }
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {target: color}
        return {target: 1}


class GreedySLocalColorer(OnlineAlgorithm):
    """The SLOCAL greedy run through the Online-LOCAL sandwich.

    Identical decisions to :class:`GreedyOnlineColorer` (greedy only
    inspects radius-1 information), but implemented against the SLOCAL
    view discipline: it recomputes everything from the 1-ball around the
    target, ignoring the global memory it is entitled to.  Kept as a
    separate class so benchmarks can report the models side by side.
    """

    name = "greedy-slocal"

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        used = set()
        for v in view.graph.neighbors(target):
            color = view.colors.get(v)
            if color is not None:
                used.add(color)
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {target: color}
        return {target: 1}


class CanonicalLocalColorer(LocalAlgorithm):
    """LOCAL-model 2-coloring of connected bipartite graphs.

    Correct exactly when the view radius reaches the whole graph
    (``T ≥ diameter``): every node then sees the same graph and computes
    the same canonical bipartition (BFS parity from the minimum id).
    With a smaller radius the node colors by the parity of its distance
    to the minimum id *in its view* — a reasonable but defeatable guess.
    """

    name = "canonical-local"

    def color(self, view: LocalView) -> Color:
        anchor = min(view.graph.nodes())
        distances = bfs_distances(view.graph, anchor)
        return 1 + distances.get(view.center, 0) % 2


class RandomizedGreedyColorer(OnlineAlgorithm):
    """Seeded randomized greedy: a uniformly random available color.

    The paper treats deterministic algorithms, but its adversaries are
    *adaptive* — they branch on the colors actually committed — so they
    defeat randomized victims on every run as well (the follow-up work
    [ACd+24] proves the Ω(log n) bound survives randomization).  This
    victim exists to demonstrate that empirically.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"randomized-greedy[{seed}]"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n, locality, num_colors)
        import random

        self._rng = random.Random(self.seed)

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        used = {
            view.colors[v]
            for v in view.graph.neighbors(target)
            if v in view.colors
        }
        available = [
            color for color in range(1, self.num_colors + 1) if color not in used
        ]
        if not available:
            return {target: 1}
        return {target: self._rng.choice(available)}


class CheatingCoordinateColorer(OnlineAlgorithm):
    """Out-of-model control: assumes ids are grid ``(row, col)`` labels.

    Only meaningful with ``OnlineLocalSimulator(..., leak_labels=True)``.
    Colors ``(row + col) % 2 + 1`` — proper on any simple grid with zero
    locality, no memory, no adaptivity.  The paper's adversaries are
    impossible against it, which isolates *where* their power comes from.
    """

    name = "cheating-coordinates"

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        row, col = target  # type: ignore[misc]
        return {target: (row + col) % 2 + 1}
