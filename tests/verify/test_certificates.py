"""Tests for the adversary win certificates."""

import pytest

from repro.families.grids import SimpleGrid, ToroidalGrid
from repro.verify.certificates import (
    CycleCertificate,
    TorusCertificate,
    verify_cycle_certificate,
    verify_torus_certificate,
)


def test_cycle_certificate_roundtrip():
    grid = SimpleGrid(2, 3)
    cycle = [(0, 0), (0, 1), (1, 1), (1, 0)]
    # Colors engineered so b != 0: 3,2,1,3 around the cell:
    #   a(3,2)=0, a(2,1)=1, a(1,3)=0, a(3,3)=0 -> b=1.
    coloring = {(0, 0): 3, (0, 1): 2, (1, 1): 1, (1, 0): 3, (0, 2): 1, (1, 2): 2}
    cert = CycleCertificate(cycle=cycle, b_value=1)
    assert verify_cycle_certificate(grid.graph, coloring, cert)


def test_cycle_certificate_rejects_wrong_b():
    grid = SimpleGrid(2, 3)
    cycle = [(0, 0), (0, 1), (1, 1), (1, 0)]
    coloring = {(0, 0): 3, (0, 1): 2, (1, 1): 1, (1, 0): 3}
    cert = CycleCertificate(cycle=cycle, b_value=2)
    assert not verify_cycle_certificate(grid.graph, coloring, cert)


def test_cycle_certificate_rejects_zero_b():
    grid = SimpleGrid(2, 3)
    cycle = [(0, 0), (0, 1), (1, 1), (1, 0)]
    coloring = {(0, 0): 1, (0, 1): 2, (1, 1): 1, (1, 0): 2}
    cert = CycleCertificate(cycle=cycle, b_value=0)
    assert not verify_cycle_certificate(grid.graph, coloring, cert)


def test_cycle_certificate_rejects_non_cycle():
    grid = SimpleGrid(2, 3)
    cert = CycleCertificate(cycle=[(0, 0), (1, 1), (0, 1), (1, 0)], b_value=1)
    with pytest.raises(ValueError, match="non-edge"):
        verify_cycle_certificate(grid.graph, {}, cert)


def test_cycle_certificate_rejects_repeats():
    grid = SimpleGrid(3, 3)
    cycle = [(0, 0), (0, 1), (0, 0), (1, 0)]
    cert = CycleCertificate(cycle=cycle, b_value=1)
    with pytest.raises(ValueError):
        verify_cycle_certificate(grid.graph, {}, cert)


def test_torus_certificate():
    torus = ToroidalGrid(5, 5)
    # Row 0 colored 1,2,1,2,3 (b = ±1 depending on direction);
    # row 2 colored likewise; orient both "rightward" so the sum is ±2.
    coloring = {}
    pattern = [1, 2, 1, 2, 3]
    for j in range(5):
        coloring[(0, j)] = pattern[j]
        coloring[(2, j)] = pattern[j]
    cycle_one = [(0, j) for j in range(5)]
    cycle_two = [(2, j) for j in range(5)]
    from repro.core.bvalue import b_value

    total = b_value(cycle_one, coloring, cycle=True) + b_value(
        cycle_two, coloring, cycle=True
    )
    cert = TorusCertificate(cycle_one=cycle_one, cycle_two=cycle_two, b_sum=total)
    assert total != 0
    assert verify_torus_certificate(torus.graph, coloring, cert)


def test_torus_certificate_rejects_zero_sum():
    torus = ToroidalGrid(5, 5)
    pattern = [1, 2, 1, 2, 3]
    coloring = {}
    for j in range(5):
        coloring[(0, j)] = pattern[j]
        coloring[(2, j)] = pattern[j]
    cycle_one = [(0, j) for j in range(5)]
    cycle_two = [(2, (-j) % 5) for j in range(5)]  # reversed: sum = 0
    cert = TorusCertificate(cycle_one=cycle_one, cycle_two=cycle_two, b_sum=0)
    assert not verify_torus_certificate(torus.graph, coloring, cert)
