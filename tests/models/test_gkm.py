"""Tests for network decompositions and the GKM SLOCAL-in-LOCAL simulation."""

import pytest

from repro.families.grids import SimpleGrid
from repro.families.random_graphs import random_tree
from repro.graphs.decomposition import (
    ball_carving_decomposition,
    carving_diameter_bound,
    check_decomposition,
)
from repro.graphs.graph import Graph
from repro.models.gkm import GkmSimulation
from repro.models.slocal import SLocalAlgorithm, SLocalView
from repro.verify.coloring import is_proper


class GreedySLocal(SLocalAlgorithm):
    name = "greedy"

    def color(self, view: SLocalView) -> int:
        used = {view.colors.get(v) for v in view.graph.neighbors(view.center)}
        return min(c for c in range(1, self.num_colors + 1) if c not in used)


class TestDecomposition:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: SimpleGrid(6, 7).graph,
            lambda: random_tree(50, seed=3),
            lambda: Graph(edges=[(i, (i + 1) % 20) for i in range(20)]),
        ],
        ids=["grid", "tree", "cycle"],
    )
    def test_valid_and_within_diameter_bound(self, graph_factory):
        graph = graph_factory()
        decomposition = ball_carving_decomposition(graph)
        c, d = check_decomposition(graph, decomposition)
        assert c >= 1
        assert d <= carving_diameter_bound(graph.num_nodes)

    def test_single_node(self):
        graph = Graph(nodes=[0])
        decomposition = ball_carving_decomposition(graph)
        c, d = check_decomposition(graph, decomposition)
        assert (c, d) == (1, 0)

    def test_checker_rejects_bad_coloring(self):
        # A 5-path carves into adjacent clusters {0,1}, {2,3}, {4}.
        graph = Graph(edges=[(i, i + 1) for i in range(4)])
        decomposition = ball_carving_decomposition(graph)
        assert len(decomposition.clusters) >= 2
        for index in decomposition.color_of_cluster:
            decomposition.color_of_cluster[index] = 0
        with pytest.raises(ValueError, match="share a color"):
            check_decomposition(graph, decomposition)

    def test_checker_rejects_partial_cover(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        decomposition = ball_carving_decomposition(graph)
        del decomposition.cluster_of[0]
        with pytest.raises(ValueError, match="cover"):
            check_decomposition(graph, decomposition)


class TestGkmSimulation:
    def test_emulation_is_proper(self):
        grid = SimpleGrid(5, 6)
        decomposition = ball_carving_decomposition(grid.graph)
        sim = GkmSimulation(
            grid.graph, decomposition, GreedySLocal(), locality=1, num_colors=5
        )
        labels = sim.run()
        assert is_proper(grid.graph, labels)

    def test_emulation_matches_slocal_simulator(self):
        """The emulation equals the plain SLOCAL simulator run on the
        decomposition order — same model, same order, same labels."""
        from repro.models.slocal import SLocalSimulator

        grid = SimpleGrid(4, 5)
        decomposition = ball_carving_decomposition(grid.graph)
        sim = GkmSimulation(
            grid.graph, decomposition, GreedySLocal(), locality=1, num_colors=5
        )
        direct = SLocalSimulator(
            grid.graph, GreedySLocal(), locality=1, num_colors=5,
            id_map=sim._id_map,
        ).run(sim.processing_order())
        assert sim.run() == direct

    def test_dependency_radius_within_budget(self):
        """The GKM theorem, measured: every node's label is pinned by a
        ball of radius ≤ c(d+T)+T."""
        grid = SimpleGrid(5, 5)
        decomposition = ball_carving_decomposition(grid.graph)
        sim = GkmSimulation(
            grid.graph, decomposition, GreedySLocal(), locality=1, num_colors=5
        )
        budget = sim.radius_budget()
        for node in [(0, 0), (2, 2), (4, 4), (1, 3)]:
            assert sim.dependency_radius(node) <= budget

    def test_label_from_full_ball_is_ground_truth(self):
        tree = random_tree(25, seed=8)
        decomposition = ball_carving_decomposition(tree)
        sim = GkmSimulation(
            tree, decomposition, GreedySLocal(), locality=1, num_colors=4
        )
        truth = sim.run()
        diameter_radius = tree.num_nodes  # certainly covers everything
        for node in list(tree.nodes())[:5]:
            assert sim.label_from_ball(node, diameter_radius) == truth[node]
