"""Tests for trace aggregation and the stats report rendering."""

import json

from repro.observability.metrics import scoped_registry
from repro.observability.stats import (
    aggregate,
    aggregate_file,
    format_metrics,
    render_stats,
)
from repro.observability.trace import (
    TRACER,
    JsonlTraceRecorder,
    merge_trace_shards,
    shard_path,
    tracing,
)


def _synthetic_records():
    return [
        {"type": "span-start", "kind": "game", "span": 0, "src": 1, "seq": 0,
         "adversary": "theorem1", "victim": "greedy"},
        {"type": "event", "kind": "reveal", "in_span": 0, "src": 1, "seq": 1},
        {"type": "event", "kind": "reveal", "in_span": 0, "src": 1, "seq": 2},
        {"type": "span-end", "kind": "game", "span": 0, "src": 1, "seq": 3,
         "seconds": 0.25, "reason": "monochromatic-edge", "won": True},
        {"type": "span-start", "kind": "game", "span": 0, "src": 2, "seq": 0,
         "adversary": "theorem2", "victim": "akbari"},
        {"type": "event", "kind": "reveal", "in_span": 0, "src": 2, "seq": 1},
        {"type": "span-end", "kind": "game", "span": 0, "src": 2, "seq": 2,
         "seconds": 0.5, "reason": "forfeit:timeout", "won": True,
         "forfeit": True},
        {"type": "event", "kind": "reveal", "src": 3, "seq": 0},  # unspanned
        {"type": "metrics", "src": 3, "seq": 1, "snapshot": {
            "counters": {"ball_cache_hits": 3, "ball_cache_misses": 1},
        }},
    ]


def test_aggregate_counts_and_joins_spans():
    stats = aggregate(_synthetic_records())
    assert stats.records == 9
    assert stats.event_counts == {"reveal": 4}
    assert stats.reveals_total == 4
    assert stats.unspanned_reveals == 1

    assert len(stats.games) == 2
    by_adversary = {g.adversary: g for g in stats.games}
    first = by_adversary["theorem1"]
    assert (first.victim, first.reveals, first.seconds) == ("greedy", 2, 0.25)
    assert first.won and not first.forfeit
    second = by_adversary["theorem2"]
    assert second.forfeit
    assert second.reason == "forfeit:timeout"

    assert stats.cache_hit_rate() == 0.75


def test_aggregate_tolerates_unjoined_spans():
    records = [
        {"type": "span-start", "kind": "game", "span": 7, "src": 1, "seq": 0,
         "adversary": "theorem3", "victim": "greedy"},
        # no span-end: the game was killed mid-flight
    ]
    stats = aggregate(records)
    assert len(stats.games) == 1
    game = stats.games[0]
    assert game.seconds is None
    assert game.reason == ""


def test_cache_hit_rate_none_without_cache_traffic():
    assert aggregate([]).cache_hit_rate() is None


def test_render_stats_sections():
    report = render_stats(aggregate(_synthetic_records()))
    assert "trace records: 9" in report
    assert "reveals total: 4" in report
    assert "games by adversary:" in report
    assert "theorem1" in report and "theorem2" in report
    assert "reveals per game: min=1 median=2 max=2" in report
    assert "slowest games" in report
    assert "ball cache hit rate: 75.0% (3/4)" in report


def test_render_stats_empty_trace():
    report = render_stats(aggregate([]))
    assert "trace records: 0" in report
    assert "reveals total: 0" in report


def test_format_metrics_renders_all_instrument_kinds():
    snapshot = {
        "counters": {"reveals_total": 12},
        "gauges": {"depth": 3.5},
        "histograms": {"seconds": {"count": 2, "sum": 3.0,
                                   "min": 1.0, "max": 2.0}},
    }
    table = format_metrics(snapshot)
    assert "reveals_total" in table and "12" in table
    assert "depth" in table and "gauge" in table
    assert "count=2 mean=1.5000" in table
    assert format_metrics({}) == "(no metrics recorded)"


def _write_worker_shard(records, path, monkeypatch, pid):
    """Record ``records`` into a shard file as a fake worker process
    would: the recorder stamps ``src`` from the pid at construction."""
    import os

    monkeypatch.setattr(os, "getpid", lambda: pid)
    recorder = JsonlTraceRecorder(path)
    for record in records:
        recorder.write(record)
    recorder.close()


def test_aggregation_over_merged_worker_shards(tmp_path, monkeypatch):
    """Aggregating a parent trace after ``merge_trace_shards`` — two
    worker shards with distinct ``src``, one record duplicated across
    them — must equal aggregating the same rows recorded serially:
    game counts, slowest ordering, and cache hit rate all agree."""
    game_a = [
        {"type": "span-start", "kind": "game", "span": 0,
         "adversary": "theorem1", "victim": "greedy"},
        {"type": "event", "kind": "reveal", "in_span": 0},
        {"type": "event", "kind": "reveal", "in_span": 0},
        {"type": "span-end", "kind": "game", "span": 0,
         "seconds": 0.25, "reason": "monochromatic-edge", "won": True},
        {"type": "metrics", "snapshot": {
            "counters": {"ball_cache_hits": 3, "ball_cache_misses": 1}}},
    ]
    game_b = [
        {"type": "span-start", "kind": "game", "span": 0,
         "adversary": "theorem2", "victim": "akbari"},
        {"type": "event", "kind": "reveal", "in_span": 0},
        {"type": "span-end", "kind": "game", "span": 0,
         "seconds": 0.5, "reason": "forfeit:timeout", "won": True,
         "forfeit": True},
        {"type": "metrics", "snapshot": {
            "counters": {"ball_cache_hits": 5, "ball_cache_misses": 3}}},
    ]

    parent = str(tmp_path / "t.jsonl")
    JsonlTraceRecorder(parent).close()  # empty parent trace
    _write_worker_shard(
        game_a, shard_path(parent, "w1"), monkeypatch, pid=111_111
    )
    _write_worker_shard(
        game_b, shard_path(parent, "w2"), monkeypatch, pid=222_222
    )
    # Duplicate one of w1's records into w2's shard — a requeued game
    # acked by two workers.  The (src, seq) dedupe must drop the copy.
    with open(shard_path(parent, "w1"), encoding="utf-8") as handle:
        duplicate = handle.readline()
    with open(shard_path(parent, "w2"), "a", encoding="utf-8") as handle:
        handle.write(duplicate)

    assert merge_trace_shards(parent) == len(game_a) + len(game_b)
    merged = aggregate_file(parent)
    # The serial reference: one recorder plays both games back to back,
    # so every record shares a src and span ids are distinct per game.
    serial_records = []
    for span, game in enumerate((game_a, game_b)):
        for record in game:
            record = dict(record, src=9, seq=len(serial_records))
            for field in ("span", "in_span"):
                if field in record:
                    record[field] = span
            serial_records.append(record)
    serial = aggregate(serial_records)

    assert merged.records == serial.records == len(game_a) + len(game_b)
    assert merged.event_counts == serial.event_counts == {"reveal": 3}

    def game_key(game):
        return (game.adversary, game.victim, game.seconds, game.reason,
                game.won, game.forfeit, game.reveals)

    assert sorted(map(game_key, merged.games)) == \
        sorted(map(game_key, serial.games))
    slowest = sorted(merged.games, key=lambda g: -(g.seconds or 0))
    assert [g.adversary for g in slowest] == ["theorem2", "theorem1"]
    assert merged.cache_hit_rate() == serial.cache_hit_rate() == 8 / 12
    # Distinct src per worker kept the two span-0 games separate.
    assert len(merged.games) == 2


def test_aggregate_file_round_trip(tmp_path):
    """End to end: record a real traced stretch, aggregate from disk."""
    path = tmp_path / "t.jsonl"
    with scoped_registry() as registry:
        with tracing(path):
            with TRACER.span("game", adversary="theorem1", victim="greedy"):
                TRACER.event("reveal", node=1)
                registry.inc("reveals_total")
    stats = aggregate_file(path)
    assert stats.reveals_total == 1
    assert len(stats.games) == 1
    assert stats.games[0].reveals == 1
    assert stats.metrics.counter("reveals_total").value == 1
