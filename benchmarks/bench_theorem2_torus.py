"""Experiment T2 (Theorem 2): Ω(√n) for toroidal and cylindrical grids.

For each locality T the adversary needs side ≥ 4T+4 (two disjoint bands);
conversely it defeats every portfolio member on the smallest valid odd
side.  The minimal side therefore grows *linearly* in T — i.e. the
defeated locality grows like √n — which the fit asserts.
"""

import pytest

from repro.adversaries.torus import TorusAdversary
from repro.analysis.fitting import fit_growth
from repro.analysis.tables import render_table
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import GreedyOnlineColorer

LOCALITIES = (1, 2, 3, 4)


def run_sweep(topology):
    rows = []
    for T in LOCALITIES:
        adversary = TorusAdversary(locality=T, topology=topology)
        result = adversary.run(AkbariBipartiteColoring())
        assert result.won, f"akbari survived {topology} at T={T}"
        rows.append(
            [
                T,
                adversary.side,
                adversary.side ** 2,
                result.reason,
                result.stats.get("b_sum", "-"),
            ]
        )
    return rows


@pytest.mark.parametrize("topology", ["torus", "cylinder"])
def test_theorem2_defeats_at_sqrt_scale(topology):
    rows = run_sweep(topology)
    print()
    print(f"Theorem 2 ({topology}): defeated locality vs instance size")
    print(render_table(["T", "side (=sqrt n)", "n", "outcome", "b1+b2"], rows))
    # side ~ 4T: T as a function of n is Θ(√n).
    ts = [float(row[0]) for row in rows]
    sides = [float(row[1]) for row in rows]
    fit = fit_growth(ts, sides, "linear")
    print(f"side vs T: slope {fit.slope:.2f} (theory: 4), R^2 {fit.r_squared:.3f}")
    assert fit.r_squared > 0.98
    assert 3.0 <= fit.slope <= 5.0


def test_theorem2_greedy_also_defeated():
    for topology in ("torus", "cylinder"):
        result = TorusAdversary(locality=2, topology=topology).run(
            GreedyOnlineColorer()
        )
        assert result.won


@pytest.mark.parametrize("topology", ["torus", "cylinder"])
def test_bench_theorem2(benchmark, topology):
    result = benchmark(
        lambda: TorusAdversary(locality=2, topology=topology).run(
            AkbariBipartiteColoring()
        )
    )
    assert result.won
