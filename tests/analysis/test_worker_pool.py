"""Tests for the supervised campaign worker pool: crash recovery,
lease expiry, poison-game quarantine, graceful degradation, and the
chaos-vs-serial zero-loss guarantee."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.campaign import (
    CampaignScheduler,
    CampaignSpec,
    campaign_status,
    hash_of,
    run_campaign,
)
from repro.analysis.store import (
    QUARANTINE_CAUSE,
    QUARANTINE_REASON,
    ResultStore,
)
from repro.analysis.worker_pool import (
    SupervisedWorkerPool,
    chunk_target,
    quarantine_row,
    shutdown_warm_pool,
    warm_pool_enabled,
    warm_pool_size,
)
from repro.observability.metrics import scoped_registry
from repro.robustness.chaos import ChaosPolicy

#: Four fast, deterministic games.
FAST = dict(
    name="fast",
    adversaries=("theorem1-grid", "theorem2-cylinder"),
    victims=("greedy", "akbari"),
    localities=(1,),
    timeout=10.0,
)


def work_of(spec: CampaignSpec):
    return [(hash_of(game), game) for game in spec.expand()]


def find_policy(rates: str, predicate, limit: int = 5000) -> ChaosPolicy:
    """The first seed whose deterministic draw pattern satisfies
    ``predicate`` — how tests pin down *which* faults fire without any
    nondeterminism."""
    for seed in range(limit):
        policy = ChaosPolicy.parse(rates, seed=seed)
        if predicate(policy):
            return policy
    pytest.fail(f"no chaos seed under {limit} fits the wanted pattern")


def counters(registry) -> dict:
    return registry.snapshot()["counters"]


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="reads /proc to find the worker pids to SIGKILL",
)
def test_external_sigkill_of_one_worker_does_not_hang(tmp_path):
    """Regression for the all-workers-dead-only detection: SIGKILL one
    of two workers mid-game and the run must still complete, with the
    lost in-flight game replayed (or reported), not hung forever."""
    store = tmp_path / "store"
    script = (
        "from repro.analysis.campaign import CampaignSpec, run_campaign\n"
        "spec = CampaignSpec(\n"
        "    name='kill-regression',\n"
        "    adversaries=('theorem1-grid', 'theorem2-cylinder'),\n"
        "    victims=('faulty-infinite-loop',),\n"
        "    localities=(1,),\n"
        "    timeout=1.5,\n"
        ")\n"
        f"outcome = run_campaign(spec, {os.fspath(store)!r}, workers=2)\n"
        "assert not outcome.errors, outcome.errors\n"
        "print('rows', len(outcome.rows))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_WORKERS", None)
    # Pin the fork start method: the /proc children walk below assumes
    # workers are direct children of the campaign process, which is not
    # true under the default forkserver (workers are the *server's*
    # children there — killing kids[0] would hit the server or tracker).
    env["REPRO_POOL_START"] = "fork"
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )

    def children_of(pid):
        try:
            path = f"/proc/{pid}/task/{pid}/children"
            with open(path, "r", encoding="ascii") as handle:
                return [int(tok) for tok in handle.read().split()]
        except OSError:
            return []

    victim_pid = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        kids = children_of(proc.pid)
        if len(kids) >= 2:
            time.sleep(0.3)  # both leased games are now in flight
            victim_pid = kids[0]
            os.kill(victim_pid, signal.SIGKILL)
            break
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    assert victim_pid is not None, "worker pool never spawned two workers"

    out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0, f"run failed:\n{out}\n{err}"
    assert "rows 2" in out
    assert len(ResultStore(store).index()) == 2


def test_chaos_self_kill_game_is_requeued_and_replayed(tmp_path):
    """A worker that SIGKILLs itself mid-game (chaos ``kill``) loses
    only that dispatch: the parent reaps it, respawns, requeues, and
    the replay lands the row."""
    spec = CampaignSpec(**FAST)
    digests = [digest for digest, _ in work_of(spec)]

    def kills_once(policy):
        first = [d for d in digests if policy.action_for(d, 1) == "kill"]
        clean_later = all(
            policy.action_for(d, attempt) is None
            for d in digests
            for attempt in (2, 3, 4)
        )
        return len(first) == 1 and clean_later

    policy = find_policy("kill:0.4", kills_once)
    store = ResultStore(tmp_path / "store")
    pool = SupervisedWorkerPool(
        store, workers=2, chaos=policy, heartbeat=0.05
    )
    with scoped_registry() as registry:
        outcome = pool.run(work_of(spec))
    assert set(outcome.rows) == set(digests)
    assert not outcome.errors and not outcome.quarantined
    assert not outcome.degraded
    assert outcome.restarts == 1
    assert outcome.requeues == 1
    snap = counters(registry)
    assert snap["campaign_worker_restarts"] == 1
    assert snap["campaign_games_requeued"] == 1


def test_stalled_worker_lease_expires_and_game_replays(tmp_path):
    """A worker stalled inside one game (chaos ``stall``) is SIGKILLed
    when its lease deadline passes; the game replays cleanly."""
    spec = CampaignSpec(
        name="stall",
        adversaries=("theorem1-grid",),
        victims=("greedy",),
        localities=(1,),
        timeout=0.5,
    )
    (digest, game), = work_of(spec)

    def stalls_once(policy):
        return (
            policy.action_for(digest, 1) == "stall"
            and all(policy.action_for(digest, k) is None for k in (2, 3))
        )

    policy = find_policy("stall:0.6", stalls_once)
    store = ResultStore(tmp_path / "store")
    pool = SupervisedWorkerPool(
        store,
        workers=1,
        chaos=policy,
        lease_grace=1.0,
        lease_slack=0.3,
        heartbeat=0.05,
    )
    with scoped_registry() as registry:
        outcome = pool.run([(digest, game)])
    assert set(outcome.rows) == {digest}
    assert outcome.lease_expirations == 1
    assert outcome.rows[digest].get("cause") != QUARANTINE_CAUSE
    assert counters(registry)["campaign_lease_expirations"] == 1


# ----------------------------------------------------------------------
# Poison quarantine
# ----------------------------------------------------------------------


def test_poison_game_is_quarantined_and_never_replayed(tmp_path):
    """A game that kills its worker on every dispatch is quarantined as
    a structured forfeit row; resume dedupes it instead of replaying."""
    spec = CampaignSpec(
        name="poison",
        adversaries=("theorem1-grid",),
        victims=("greedy",),
        localities=(1,),
        timeout=5.0,
    )
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(
        store,
        workers=2,
        poison_threshold=2,
        max_worker_restarts=16,
        chaos=ChaosPolicy.parse("kill:1.0"),
    )
    with scoped_registry() as registry:
        rows, deduped, errors = scheduler.run(spec.expand())
    assert not errors
    (digest,) = rows
    row = rows[digest]
    assert row["reason"] == QUARANTINE_REASON
    assert row["cause"] == QUARANTINE_CAUSE
    assert row["forfeit"] is True and row["won"] is True
    assert counters(registry)["campaign_games_quarantined"] == 1

    quarantined = store.quarantined()
    assert [q["spec_hash"] for q in quarantined] == [digest]

    # Resume: the quarantine row dedupes — the poison game is not
    # replayed forever.
    rows2, deduped2, errors2 = scheduler.run(spec.expand())
    assert (rows2, deduped2, errors2) == ({}, 1, [])


def test_quarantine_surfaces_in_campaign_status(tmp_path):
    spec = CampaignSpec(**FAST)
    store_dir = tmp_path / "store"
    outcome = run_campaign(spec, store_dir, workers=1)
    assert len(outcome.rows) == 4
    # Overwrite one game with a hand-built quarantine row, as the pool
    # would after repeated worker loss.
    digest, game = work_of(spec)[0]
    ResultStore(store_dir).add(quarantine_row(digest, game, losses=3))
    statuses, _runs = campaign_status(store_dir)
    (status,) = statuses
    assert status.done == 4
    assert status.quarantined == 1
    assert len(ResultStore(store_dir).quarantined()) == 1


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------


def test_exhausted_restart_budget_degrades_to_serial(tmp_path):
    """When chaos kills every worker and the restart budget runs out,
    the scheduler finishes the queue in-process instead of raising —
    and the parent never applies chaos, so it completes."""
    spec = CampaignSpec(**FAST)
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(
        store,
        workers=2,
        max_worker_restarts=1,
        poison_threshold=100,
        chaos=ChaosPolicy.parse("kill:1.0"),
    )
    with scoped_registry() as registry:
        rows, deduped, errors = scheduler.run(spec.expand())
    assert not errors
    assert len(rows) == 4
    snap = counters(registry)
    assert snap["campaign_pool_degradations"] == 1
    assert snap["campaign_worker_restarts"] == 1
    # Every row is a real play (serial fallback), not a quarantine.
    assert all(row.get("cause") != QUARANTINE_CAUSE for row in rows.values())
    assert len(store.index()) == 4


# ----------------------------------------------------------------------
# Corrupt-result-row chaos
# ----------------------------------------------------------------------


def test_corrupt_result_write_reports_error_and_keeps_shard_parseable(
    tmp_path,
):
    """A failed/torn result write (chaos ``corrupt``) surfaces as a
    structured error — the worker survives, the shard stays parseable,
    and the next run replays the unacknowledged game."""
    spec = CampaignSpec(
        name="corrupt",
        adversaries=("theorem1-grid",),
        victims=("greedy",),
        localities=(1,),
        timeout=5.0,
    )
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(
        store, workers=2, chaos=ChaosPolicy.parse("corrupt:1.0")
    )
    rows, deduped, errors = scheduler.run(spec.expand())
    assert rows == {} and deduped == 0
    assert len(errors) == 1
    assert "result store write failed" in errors[0]["error"]
    # The torn fragment does not break the store.
    assert store.index() == {}

    clean = CampaignScheduler(store, workers=2, chaos=None)
    rows2, _deduped2, errors2 = clean.run(spec.expand())
    assert not errors2
    assert len(rows2) == 1 and len(store.index()) == 1


# ----------------------------------------------------------------------
# The acceptance gate: chaos loses nothing vs a serial run
# ----------------------------------------------------------------------


def test_chaos_run_matches_serial_run(tmp_path):
    """A 2-worker campaign under kill chaos terminates, loses zero
    acknowledged games, replays every lost in-flight game, and its
    surviving rows match a serial no-chaos run of the same spec."""
    spec = CampaignSpec(**FAST)
    digests = [digest for digest, _ in work_of(spec)]

    def a_few_kills_then_clean(policy):
        first = sum(policy.action_for(d, 1) == "kill" for d in digests)
        clean_later = all(
            policy.action_for(d, attempt) is None
            for d in digests
            for attempt in (2, 3)
        )
        return first >= 2 and clean_later

    policy = find_policy("kill:0.5", a_few_kills_then_clean)
    store_chaos = ResultStore(tmp_path / "chaos-store")
    scheduler = CampaignScheduler(
        store_chaos, workers=2, max_worker_restarts=16, chaos=policy
    )
    rows, _deduped, errors = scheduler.run(spec.expand())
    assert not errors

    store_serial = ResultStore(tmp_path / "serial-store")
    serial_rows, _d, serial_errors = CampaignScheduler(
        store_serial, workers=1
    ).run(spec.expand())
    assert not serial_errors

    chaos_index = store_chaos.index()
    serial_index = store_serial.index()
    lost = [d for d in serial_index if d not in chaos_index]
    assert lost == []
    for digest, serial_row in serial_index.items():
        chaos_row = chaos_index[digest]
        if chaos_row.get("cause") == QUARANTINE_CAUSE:
            continue  # quarantined counts as covered, not lost
        assert (chaos_row["won"], chaos_row["reason"], chaos_row["forfeit"]) \
            == (serial_row["won"], serial_row["reason"], serial_row["forfeit"])


# ----------------------------------------------------------------------
# Chunked leases
# ----------------------------------------------------------------------


def test_chunk_target_halves_toward_one():
    """Adaptive chunks split the queue ~2× per worker and shrink to
    per-game leases at the tail, capped by ``max_chunk``."""
    assert chunk_target(1024, 2, 32) == 32  # deep queue: cap wins
    assert chunk_target(100, 4, 8) == 8
    assert chunk_target(7, 2, 32) == 2  # ceil(7 / 4)
    assert chunk_target(5, 1, 32) == 3  # ceil(5 / 2)
    assert chunk_target(4, 2, 32) == 1  # tail: degenerate per-game mode
    assert chunk_target(0, 2, 32) == 1


def test_worker_kill_mid_chunk_requeues_only_unacked_games(tmp_path):
    """Losing a worker mid-chunk requeues exactly that chunk's games:
    the sibling's acknowledged chunk is never replayed, so the store
    holds no duplicate raw rows."""
    spec = CampaignSpec(**FAST)
    digests = [digest for digest, _ in work_of(spec)]
    # With chunk_size=2 pinned, the queue splits into chunks
    # [0, 1] and [2, 3]; the kill fires on the second chunk's first game.
    target = digests[2]

    def kills_second_chunk_once(policy):
        return all(
            (policy.action_for(d, a) == "kill")
            == (d == target and a == 1)
            for d in digests
            for a in (1, 2, 3)
        )

    policy = find_policy("kill:0.4", kills_second_chunk_once)
    store = ResultStore(tmp_path / "store")
    pool = SupervisedWorkerPool(
        store, workers=2, chunk_size=2, chaos=policy, heartbeat=0.05
    )
    with scoped_registry() as registry:
        outcome = pool.run(work_of(spec))
    assert not outcome.errors and not outcome.quarantined
    assert set(outcome.rows) == set(digests)
    # Only the dead worker's chunk (2 games) was requeued, with one
    # respawn; the acked chunk stayed acked.
    assert outcome.restarts == 1
    assert outcome.requeues == 2
    snap = counters(registry)
    assert snap["campaign_worker_restarts"] == 1
    assert snap["campaign_games_requeued"] == 2
    # No duplicates at the raw-shard level: each game landed exactly once.
    raw = [row["spec_hash"] for row in store.rows()]
    assert sorted(raw) == sorted(digests)


def test_poison_quarantines_only_the_offending_chunk_game(tmp_path):
    """Inside a chunk, blame is per-game: the game that keeps killing
    its worker is quarantined, while its chunk-mates replay cleanly and
    land real rows."""
    spec = CampaignSpec(**FAST)
    digests = [digest for digest, _ in work_of(spec)]

    def one_double_killer(policy):
        killers = [
            d
            for d in digests
            if policy.action_for(d, 1) == "kill"
            and policy.action_for(d, 2) == "kill"
        ]
        if len(killers) != 1:
            return False
        return all(
            policy.action_for(d, a) is None
            for d in digests
            if d != killers[0]
            for a in (1, 2, 3)
        )

    policy = find_policy("kill:0.5", one_double_killer)
    (bad,) = [d for d in digests if policy.action_for(d, 1) == "kill"]
    store = ResultStore(tmp_path / "store")
    pool = SupervisedWorkerPool(
        store,
        workers=2,
        chunk_size=2,
        poison_threshold=2,
        max_worker_restarts=16,
        chaos=policy,
        heartbeat=0.05,
    )
    with scoped_registry() as registry:
        outcome = pool.run(work_of(spec))
    assert not outcome.errors
    assert set(outcome.rows) == set(digests)
    assert outcome.rows[bad]["cause"] == QUARANTINE_CAUSE
    for digest in digests:
        if digest != bad:
            assert outcome.rows[digest].get("cause") != QUARANTINE_CAUSE
    assert counters(registry)["campaign_games_quarantined"] == 1
    assert [q["spec_hash"] for q in store.quarantined()] == [bad]


def test_pinned_and_adaptive_chunking_match_serial_rows(tmp_path):
    """The degenerate ``chunk_size=1`` mode, adaptive chunking, and the
    serial path must produce identical stores."""
    spec = CampaignSpec(**FAST)
    serial = run_campaign(spec, tmp_path / "serial", workers=1)
    adaptive = run_campaign(spec, tmp_path / "adaptive", workers=2)
    pinned = run_campaign(
        spec, tmp_path / "pinned", workers=2, chunk_size=1
    )
    assert not serial.errors and not adaptive.errors and not pinned.errors
    base = ResultStore(tmp_path / "serial").index()
    assert ResultStore(tmp_path / "adaptive").index() == base
    assert ResultStore(tmp_path / "pinned").index() == base


# ----------------------------------------------------------------------
# Warm worker pool
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not warm_pool_enabled(), reason="warm pool disabled via REPRO_WARM_POOL"
)
def test_warm_pool_parks_and_adopts_across_campaigns(tmp_path):
    """A finished campaign parks its healthy workers; the next campaign
    adopts them (one configure message) instead of forking afresh."""
    shutdown_warm_pool()  # start from a clean slate
    spec = CampaignSpec(**FAST)
    try:
        with scoped_registry() as registry:
            first = run_campaign(spec, tmp_path / "a", workers=2)
            assert not first.errors
            parked = warm_pool_size()
            second = run_campaign(spec, tmp_path / "b", workers=2)
            assert not second.errors
        assert parked == 2
        assert counters(registry)["campaign_warm_adoptions"] == 2
        assert (
            ResultStore(tmp_path / "a").index().keys()
            == ResultStore(tmp_path / "b").index().keys()
        )
    finally:
        shutdown_warm_pool()
    assert warm_pool_size() == 0


# ----------------------------------------------------------------------
# Telemetry: heartbeats, live status, flight-recorder dumps
# ----------------------------------------------------------------------


def test_heartbeats_gauges_and_live_status(tmp_path):
    """A pool run counts worker heartbeats, records queue high-water
    gauges, and leaves a final ``done`` live-status file behind."""
    from repro.observability.export import read_live_status

    spec = CampaignSpec(**FAST)
    store = ResultStore(tmp_path / "store")
    with scoped_registry() as registry:
        rows, _deduped, errors = CampaignScheduler(store, workers=2).run(
            spec.expand()
        )
    assert not errors and len(rows) == 4

    snapshot = registry.snapshot()
    # One heartbeat per lease pickup: at least one per game played.
    assert snapshot["counters"]["campaign_worker_heartbeats"] >= 4
    gauges = snapshot["gauges"]
    assert 1 <= gauges["campaign_queue_depth"] <= 4
    assert 1 <= gauges["campaign_in_flight"] <= 2

    status = read_live_status(store.root)
    assert status is not None
    assert status["done"] is True
    assert status["games_played"] == 4
    assert status["games_total"] == 4
    assert status["queue_depth"] == 0 and status["in_flight"] == 0


def test_quarantine_dumps_flight_recorder(tmp_path):
    """Poison quarantine — a supervisor fault — must leave a parseable
    flight-recorder dump next to the store."""
    from repro.observability.flightrec import (
        find_flight_dumps,
        read_flight_dump,
    )

    spec = CampaignSpec(
        name="poison",
        adversaries=("theorem1-grid",),
        victims=("greedy",),
        localities=(1,),
        timeout=5.0,
    )
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(
        store,
        workers=2,
        poison_threshold=2,
        max_worker_restarts=16,
        chaos=ChaosPolicy.parse("kill:1.0"),
    )
    with scoped_registry():
        rows, _deduped, errors = scheduler.run(spec.expand())
    assert not errors and len(rows) == 1

    dumps = find_flight_dumps(store.root)
    assert dumps, "quarantine left no flight dump"
    records = list(read_flight_dump(dumps[-1]))
    header = records[0]
    assert header["kind"] == "flight-dump"
    assert header["reason"] == "game-quarantined"
    kinds = {r["kind"] for r in records[1:]}
    # The ring holds the pool's recent life: dispatches, worker deaths,
    # and the fault that triggered the dump.
    assert "fault" in kinds
    assert "worker-died" in kinds or "dispatch" in kinds
    faults = [r for r in records if r.get("kind") == "fault"]
    assert any(f.get("reason") == "game-quarantined" for f in faults)
