"""Tests for the b-value machinery (Section 3.1, Lemmas 3.3-3.5)."""

import itertools

import pytest

from repro.core.bvalue import (
    a_value,
    b_value,
    b_value_parity,
    cycle_b_value,
    cycle_b_value_parity,
    endpoint_indicator,
    grid_cell_cycles,
    path_b_value,
    rectangle_cycle,
)
from repro.families.grids import SimpleGrid
from repro.oracles.brute import proper_colorings


class TestAValue:
    def test_definition_table(self):
        assert a_value(1, 2) == -1
        assert a_value(2, 1) == 1
        assert a_value(1, 3) == 0
        assert a_value(3, 2) == 0
        assert a_value(3, 3) == 0

    def test_antisymmetry(self):
        for u, v in itertools.product((1, 2, 3), repeat=2):
            assert a_value(u, v) + a_value(v, u) == 0

    def test_invalid_color(self):
        with pytest.raises(ValueError):
            a_value(0, 1)
        with pytest.raises(ValueError):
            a_value(1, 4)


class TestPathBValue:
    def test_empty_and_single(self):
        assert path_b_value([]) == 0
        assert path_b_value([2]) == 0

    def test_figure3_zero_path(self):
        """The paper's Figure 3: 3-2-1-2-1-2-3 has b-value 0."""
        assert path_b_value([3, 2, 1, 2, 1, 2, 3]) == 0

    def test_figure4_unit_path(self):
        """The paper's Figure 4 companion: 3-2-1-2-1-3 has b-value 1."""
        assert path_b_value([3, 2, 1, 2, 1, 3]) == 1

    def test_reversal_negates(self):
        colors = [3, 1, 2, 1, 3, 2, 1]
        assert path_b_value(colors) == -path_b_value(list(reversed(colors)))

    def test_concatenation_adds(self):
        left = [3, 2, 1]
        right = [1, 2, 3]
        whole = left + right[1:]
        assert path_b_value(whole) == path_b_value(left) + path_b_value(right)

    def test_alternating_12_path_is_bounded(self):
        assert abs(path_b_value([1, 2] * 10)) <= 1


class TestParityLemma:
    def test_lemma_3_5_exhaustive_paths(self):
        """Parity of b equals i(u)+i(v)+len (mod 2) for ALL proper paths
        up to length 6."""
        for length in range(1, 7):
            for colors in itertools.product((1, 2, 3), repeat=length + 1):
                if any(a == b for a, b in zip(colors, colors[1:])):
                    continue  # improper path coloring
                expected = b_value_parity(length, colors[0], colors[-1])
                assert path_b_value(colors) % 2 == expected

    def test_lemma_3_5_exhaustive_cycles(self):
        """Parity of cycle b equals length mod 2 for all proper cycles up
        to length 6."""
        for length in range(3, 7):
            for colors in itertools.product((1, 2, 3), repeat=length):
                ring = list(colors) + [colors[0]]
                if any(a == b for a, b in zip(ring, ring[1:])):
                    continue
                assert cycle_b_value(colors) % 2 == cycle_b_value_parity(length)

    def test_endpoint_indicator(self):
        assert endpoint_indicator(3) == 1
        assert endpoint_indicator(1) == 0
        assert endpoint_indicator(2) == 0

    def test_parity_validation(self):
        with pytest.raises(ValueError):
            b_value_parity(-1, 1, 2)
        with pytest.raises(ValueError):
            cycle_b_value_parity(2)


class TestLemma33CellCancellation:
    def test_all_proper_4_cycles_have_b_zero(self):
        """Lemma 3.3, exhaustively over all proper 3-colorings of C4."""
        for colors in itertools.product((1, 2, 3), repeat=4):
            ring = list(colors) + [colors[0]]
            if any(a == b for a, b in zip(ring, ring[1:])):
                continue
            assert cycle_b_value(colors) == 0


class TestLemma34GridCycles:
    def test_all_proper_colorings_of_small_grid(self):
        """Lemma 3.4 on every proper 3-coloring of a 3x3 grid: the border
        cycle has b-value 0."""
        grid = SimpleGrid(3, 3)
        border = rectangle_cycle(0, 2, 0, 2)
        count = 0
        for coloring in proper_colorings(grid.graph, 3):
            shifted = {node: color + 1 for node, color in coloring.items()}
            assert b_value(border, shifted, cycle=True) == 0
            count += 1
        assert count > 0

    def test_cell_decomposition_matches(self):
        """Summing cell b-values equals the border b-value (the proof
        technique of Lemma 3.4), for any coloring — proper or not."""
        grid = SimpleGrid(4, 5)
        coloring = {(i, j): (2 * i + j) % 3 + 1 for i, j in grid.graph.nodes()}
        border = rectangle_cycle(0, 3, 0, 4)
        total = sum(
            b_value(cell, coloring, cycle=True)
            for cell in grid_cell_cycles(4, 5)
        )
        assert total == b_value(border, coloring, cycle=True)

    def test_rectangle_cycle_shape(self):
        cycle = rectangle_cycle(0, 2, 0, 3)
        assert len(cycle) == 2 * (2 + 3)
        assert len(set(cycle)) == len(cycle)
        assert cycle[0] == (0, 0)

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            rectangle_cycle(2, 2, 0, 3)


class TestBValueHelper:
    def test_dict_interface(self):
        coloring = {"a": 3, "b": 2, "c": 1}
        assert b_value(["a", "b", "c"], coloring) == path_b_value([3, 2, 1])

    def test_cycle_needs_three_nodes(self):
        with pytest.raises(ValueError):
            cycle_b_value([1, 2])
