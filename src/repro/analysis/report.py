"""Regenerate EXPERIMENTS.md from live runs.

Usage::

    python -m repro.analysis.report > EXPERIMENTS.md

Each section runs the same measurement the corresponding benchmark
asserts, so the document's numbers are exactly reproducible with
``pytest benchmarks/``.  A full regeneration takes a few minutes.
"""

from __future__ import annotations

import math
import sys
from typing import List

from repro.adversaries.gadget import GadgetAdversary
from repro.adversaries.grid import GridAdversary
from repro.adversaries.path_builder import PathBuilder
from repro.adversaries.reduction import reduce_to_grid
from repro.adversaries.torus import TorusAdversary
from repro.analysis.experiments import threshold_locality
from repro.analysis.fitting import best_growth_model, fit_growth
from repro.analysis.tables import render_table
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.core.unify import UnifyColoring, recommended_locality
from repro.families.grids import SimpleGrid
from repro.families.hierarchy import Hierarchy
from repro.families.ktree import random_ktree
from repro.families.random_graphs import scattered_reveal_order
from repro.families.triangular import TriangularGrid
from repro.models.adaptive import FloatingGridInstance
from repro.models.online_local import OnlineLocalSimulator
from repro.models.simulation import LocalAsOnline
from repro.oracles import CliqueChainOracle, KTreeOracle, TriangularOracle
from repro.verify.coloring import is_proper


def _akbari_survives(grid: SimpleGrid, locality: int, seed: int) -> bool:
    sim = OnlineLocalSimulator(
        grid.graph, AkbariBipartiteColoring(), locality=locality, num_colors=3
    )
    order = scattered_reveal_order(sorted(grid.graph.nodes()), seed=seed)
    try:
        coloring = sim.run(order)
    except Exception:
        return False
    return is_proper(grid.graph, coloring)


def section_theorem1(out: List[str]) -> None:
    out.append("## T1 — Theorem 1: Ω(log n) for 3-coloring simple grids\n")
    out.append(
        "**Paper claim.** Any Online-LOCAL algorithm 3-coloring a √n×√n grid "
        "has locality Ω(log n); the adversary forces a row path of b-value "
        "k = 4T+5 within a region of length ≤ 5^(k+1)·T, then closes a "
        "rectangle whose cycle b-value cannot be zero.\n"
    )
    out.append(
        "**Measured.** The executable adversary defeats every portfolio "
        "member at every tested locality:\n"
    )
    portfolio = {
        "greedy-online": GreedyOnlineColorer,
        "akbari-truncated": AkbariBipartiteColoring,
        "local-canonical": lambda: LocalAsOnline(CanonicalLocalColorer()),
    }
    rows = []
    for T in (1, 2):
        for name, factory in portfolio.items():
            result = GridAdversary(locality=T).run(factory())
            rows.append(
                [
                    name,
                    T,
                    "defeated" if result.won else "SURVIVED",
                    result.reason,
                    result.stats.get("b_forced", "-"),
                    result.stats.get("region_length", "-"),
                    result.stats.get("reveals", "-"),
                ]
            )
    out.append("```")
    out.append(
        render_table(
            ["victim", "T", "verdict", "how", "b forced", "region", "reveals"],
            rows,
        )
    )
    out.append("```\n")


def section_lemma36(out: List[str]) -> None:
    out.append("## L3.6 — Lemma 3.6: region needed to force b-value ≥ k\n")
    out.append(
        "**Paper claim.** An adversary strategy forces b ≥ k within a "
        "discovered region of length at most 5^(k+1)·T.\n"
    )
    out.append(
        "**Measured** (T = 1, victim = greedy, our construction follows the "
        "tighter recurrence R(k) = 2R(k-1)+3):\n"
    )
    rows = []
    for level in range(1, 9):
        instance = FloatingGridInstance(
            GreedyOnlineColorer(), locality=1, num_colors=3, declared_n=10 ** 9
        )
        builder = PathBuilder(instance)
        built = builder.build(level)
        lo, hi = instance.fragment_row_extent(built.fragment)
        region = hi - lo + 1
        rows.append(
            [
                level,
                built.b,
                region,
                2 ** level * 3 + 3 * (2 ** level - 1),
                5 ** (level + 1),
                builder.reveals,
            ]
        )
    out.append("```")
    out.append(
        render_table(
            ["k", "b achieved", "region", "2^k bound", "paper 5^(k+1)T",
             "reveals"],
            rows,
        )
    )
    out.append("```\n")


def section_corollary11(out: List[str]) -> None:
    out.append("## C1.1 — Corollary 1.1: Θ(log n) for bipartite graphs\n")
    out.append(
        "**Paper claim.** The Akbari et al. algorithm 3-colors any bipartite "
        "graph with locality O(log n) (budget 3·log2 n); Theorem 1 makes "
        "this tight.\n"
    )
    rows = []
    for side in (8, 12, 16, 24, 32):
        n = side * side
        grid = SimpleGrid(side, side)
        budget = 3 * math.ceil(math.log2(n))
        online = threshold_locality(
            lambda T: all(_akbari_survives(grid, T, s) for s in range(3)),
            low=0,
            high=budget + 4,
        )
        rows.append([n, side, budget, online])
    out.append("**Measured** (smallest locality surviving 3 scattered orders):\n")
    out.append("```")
    out.append(
        render_table(
            ["n", "sqrt n", "budget 3log2(n)", "measured threshold"], rows
        )
    )
    out.append("```\n")
    fit = best_growth_model(
        [float(r[0]) for r in rows], [float(r[3]) for r in rows]
    )
    out.append(
        f"Thresholds stay below both the paper budget and √n at every size "
        f"(the LOCAL model needs Θ(√n)).  Best-fit shape over this small "
        f"range: `{fit.model}` (R² = {fit.r_squared:.3f}); the log-vs-"
        f"polynomial asymptotic regime is not separable with n ≤ 1024, so "
        f"the budget bound and the √n separation are the decidable claims, "
        f"and both hold.\n"
    )


def section_theorem2(out: List[str]) -> None:
    out.append("## T2 — Theorem 2: Ω(√n) on toroidal and cylindrical grids\n")
    out.append(
        "**Paper claim.** On odd-column tori/cylinders, any algorithm with "
        "locality ≤ (√n−4)/4 is defeated by orienting two independently "
        "colored rows so Equation (1) fails.\n"
    )
    rows = []
    for topology in ("torus", "cylinder"):
        for T in (1, 2, 3, 4):
            adversary = TorusAdversary(locality=T, topology=topology)
            result = adversary.run(AkbariBipartiteColoring())
            rows.append(
                [
                    topology,
                    T,
                    adversary.side,
                    adversary.side ** 2,
                    "defeated" if result.won else "SURVIVED",
                    result.stats.get("b_sum", "-"),
                ]
            )
    out.append("**Measured** (victim = Akbari at the tested locality):\n")
    out.append("```")
    out.append(
        render_table(["topology", "T", "side", "n", "verdict", "b1+b2"], rows)
    )
    out.append("```\n")
    ts = [float(r[1]) for r in rows if r[0] == "torus"]
    sides = [float(r[2]) for r in rows if r[0] == "torus"]
    fit = fit_growth(ts, sides, "linear")
    out.append(
        f"Minimal defeated side grows linearly in T "
        f"(slope {fit.slope:.2f}, theory 4, R² = {fit.r_squared:.3f}) — "
        f"i.e. the defeated locality is Θ(√n).\n"
    )


def section_theorem3(out: List[str]) -> None:
    out.append("## T3 — Theorem 3: Ω(n) for (2k−2)-coloring k-partite graphs\n")
    out.append(
        "**Paper claim.** On the gadget chain G*, any algorithm with "
        "locality o(n) can be forced to make the two end gadgets disagree "
        "(row- vs column-colorful), which no proper (2k−2)-coloring allows "
        "(Lemma 4.6).\n"
    )
    rows = []
    for k in (3, 4):
        for colors in (k + 1, 2 * k - 2):
            for T in (1, 2, 4, 6):
                adversary = GadgetAdversary(k=k, locality=T, colors=colors)
                result = adversary.run(GreedyOnlineColorer())
                rows.append(
                    [
                        k,
                        colors,
                        T,
                        adversary.length,
                        k * k * adversary.length,
                        result.stats.get("tail_committed", "-"),
                        "defeated" if result.won else "SURVIVED",
                    ]
                )
    out.append(
        "**Measured** (victim = greedy; colors = k+1 realizes "
        "Corollary 1.3, colors = 2k-2 is Theorem 3):\n"
    )
    out.append("```")
    out.append(
        render_table(
            ["k", "colors", "T", "gadgets", "n", "commit", "verdict"], rows
        )
    )
    out.append("```\n")
    out.append(
        "n = k²(2T+3) suffices for every defeat at every budget "
        "c ∈ [k+1, 2k−2]: the defeated locality scales linearly with n.\n"
    )


def section_theorem4(out: List[str]) -> None:
    out.append("## T4 — Theorem 4: O(log n) for (k+1)-coloring L_{k,l} graphs\n")
    out.append(
        "**Paper claim.** With a radius-ℓ partition oracle, the "
        "type-unification algorithm (k+1)-colors any graph in L_{k,ℓ} with "
        "locality 3(k−1)log2(n)+ℓ.\n"
    )
    cases = [
        ("triangular-grid", TriangularGrid(16).graph, TriangularOracle(), 4),
        ("ktree-k2", random_ktree(2, 120, seed=3).graph, KTreeOracle(2), 4),
        ("ktree-k3", random_ktree(3, 90, seed=5).graph, KTreeOracle(3), 5),
        ("hierarchy-g3", Hierarchy(3, 7, 7).graph, CliqueChainOracle(3, 3), 4),
    ]
    rows = []
    for name, graph, oracle, colors in cases:
        n = graph.num_nodes
        budget = recommended_locality(oracle.num_parts, oracle.radius, n)
        swaps = []
        proper = True
        for seed in range(2):
            algorithm = UnifyColoring(oracle)
            sim = OnlineLocalSimulator(
                graph, algorithm, locality=budget, num_colors=colors
            )
            order = scattered_reveal_order(sorted(graph.nodes(), key=repr), seed=seed)
            coloring = sim.run(order)
            proper &= is_proper(graph, coloring)
            swaps.append(algorithm.swap_count)
        rows.append(
            [name, n, oracle.num_parts, budget, colors,
             "proper" if proper else "IMPROPER", max(swaps)]
        )
    out.append("**Measured** (2 scattered orders per family, paper budget):\n")
    out.append("```")
    out.append(
        render_table(
            ["family", "n", "k", "budget T", "colors", "outcome", "max swaps"],
            rows,
        )
    )
    out.append("```\n")


def section_theorem5(out: List[str]) -> None:
    out.append("## T5 — Theorem 5: Ω(log n) for L_{k,l} via the hierarchy G_k\n")
    out.append(
        "**Paper claim.** A (k+1)-colorer of G_k yields, through the "
        "locality-preserving Lemma 5.7 reduction, a 3-colorer of the grid — "
        "so Theorem 1's bound lifts to every constant k.\n"
    )
    rows = []
    for k in (3, 4):
        for name, factory in {
            "unify+clique-oracle": lambda k=k: UnifyColoring(
                CliqueChainOracle(k, k)
            ),
            "greedy": lambda k=k: GreedyOnlineColorer(),
        }.items():
            result = GridAdversary(locality=1).run(reduce_to_grid(factory(), k=k))
            rows.append([k, name, "defeated" if result.won else "SURVIVED"])
    out.append("**Measured** (grid adversary at T=1 vs reduced algorithms):\n")
    out.append("```")
    out.append(render_table(["k", "inner algorithm", "verdict"], rows))
    out.append("```\n")


def section_sandwich(out: List[str]) -> None:
    out.append("## SANDWICH — the five-model landscape (Section 1)\n")
    out.append(
        "**Paper claim.** LOCAL ⊆ SLOCAL, Dynamic-LOCAL ⊆ Online-LOCAL; "
        "(Δ+1)-coloring is easy everywhere, 3-coloring separates "
        "Online-LOCAL (Θ(log n)) from LOCAL (Θ(√n)).\n"
    )
    out.append(
        "**Measured.** `benchmarks/bench_model_sandwich.py`: greedy "
        "(Δ+1)-coloring is proper in SLOCAL, Dynamic-LOCAL and "
        "Online-LOCAL at locality 1 on the same adversarial order; on a "
        "40×40 grid at T = 3·log2(n) = 33 the Akbari algorithm is proper "
        "on every tested order while the LOCAL canonical baseline goes "
        "improper (its views stop short of the ~√n it needs).  "
        "Cole–Vishkin 3-colors 200-node directed cycles within the "
        "log*-scale round budget (≤ 12 rounds even for 64-bit ids), "
        "exercising the message-passing formulation of LOCAL whose "
        "equivalence with the view formulation is tested directly.\n"
    )


def section_tightness(out: List[str]) -> None:
    out.append("## TIGHT — tightness of the Section 4 machinery "
               "(the open problem)\n")
    out.append(
        "**Paper claim.** The hard-instance technique cannot extend past "
        "c = 2k−2 (else it would contradict Corollary 1.1); resolving "
        "c-coloring k-partite graphs for all (c, k) is left open.\n"
    )
    out.append(
        "**Measured.** `tests/verify/test_gadget_tightness.py` exhibits, "
        "by exhaustive enumeration on A(3) and a 2-gadget chain, proper "
        "(2k−1)-colorings that are simultaneously row- and "
        "column-colorful and chains whose consecutive gadgets disagree — "
        "Claim 4.5 and Lemma 4.6 break at exactly c = 2k−1, while at "
        "c = 2k−2 every sampled coloring obeys the dichotomy.\n"
    )


def section_gkm(out: List[str]) -> None:
    out.append("## GKM — SLOCAL inside LOCAL via network decompositions "
               "(introduction)\n")
    out.append(
        "**Paper claim (recounted).** [GKM17] simulate any SLOCAL "
        "algorithm in LOCAL using network decompositions, so with [RG20] "
        "the polylog-locality classes coincide.\n"
    )
    from repro.graphs.decomposition import (
        ball_carving_decomposition,
        check_decomposition,
    )
    from repro.models.gkm import GkmSimulation
    from repro.models.slocal import SLocalAlgorithm, SLocalView

    class _Greedy(SLocalAlgorithm):
        name = "greedy"

        def color(self, view: SLocalView) -> int:
            used = {
                view.colors.get(v) for v in view.graph.neighbors(view.center)
            }
            return min(
                c for c in range(1, self.num_colors + 1) if c not in used
            )

    rows = []
    for name, graph in (
        ("grid-5x5", SimpleGrid(5, 5).graph),
        ("grid-6x8", SimpleGrid(6, 8).graph),
    ):
        decomposition = ball_carving_decomposition(graph)
        c, d = check_decomposition(graph, decomposition)
        sim = GkmSimulation(graph, decomposition, _Greedy(), 1, 5)
        budget = sim.radius_budget()
        probes = sorted(graph.nodes())[:: max(1, graph.num_nodes // 6)]
        worst = max(
            sim.dependency_radius(node, max_radius=budget) for node in probes
        )
        rows.append([name, graph.num_nodes, c, d, budget, worst])
    out.append(
        "**Measured** (ball-carving decomposition; greedy SLOCAL at T=1; "
        "dependency radius = smallest ball pinning a node's label):\n"
    )
    out.append("```")
    out.append(
        render_table(
            ["instance", "n", "c", "d", "budget c(d+T)+T", "max measured"],
            rows,
        )
    )
    out.append("```\n")


def section_randomized(out: List[str]) -> None:
    out.append("## RAND — randomized victims (context: [ACd+24])\n")
    out.append(
        "**Context.** The paper's model is deterministic; the follow-up "
        "[ACd+24] extends the Ω(log n) bound to randomized algorithms.\n"
    )
    out.append(
        "**Measured.** Our adversaries are adaptive (they branch only on "
        "committed colors), so they defeat seeded-randomized greedy on "
        "*every* run — "
        "`tests/adversaries/test_randomized_victims.py` sweeps 5 seeds "
        "through the Theorem 1, 2, and 3 adversaries with a clean sweep.\n"
    )


def section_ablations(out: List[str]) -> None:
    out.append("## ABL — ablations (benchmarks/bench_ablations.py)\n")
    out.append(
        "* **Flip the smaller group** (Akbari): on a merge-heavy anchor "
        "order the paper's flip-smaller policy stays proper at T = 12; "
        "flip-larger performs at least as many flips and is the policy "
        "whose per-node flip count is unbounded.\n"
        "* **Gap choice ℓ ∈ {2,3}** (Lemma 3.6): the parity-driven choice "
        "always reaches the target b-value; the fixed-gap ablation stalls "
        "(recorded per-concatenation).\n"
        "* **Identifier anonymity**: with leaked grid coordinates a "
        "zero-locality memoryless colorer survives every order — the "
        "lower bounds live in anonymity + adaptive commitment.\n"
        "* **Odd columns** (Theorem 2): on an even-sided torus the "
        "two-row killer order is harmless (row b-values are even; the "
        "graph is bipartite).\n"
    )


def section_threshold_campaign(out: List[str]) -> None:
    import tempfile

    from repro.analysis.campaign import (
        ThresholdSearchSpec,
        run_threshold_search,
        threshold_table,
    )

    out.append("## CAMPAIGN — adaptive threshold search (smallest "
               "surviving locality)\n")
    out.append(
        "**Setup.** The campaign engine "
        "(`python -m repro.cli campaign run SPEC --store DIR`) "
        "binary-searches, per (adversary, victim), the smallest locality "
        "in [0, 2] at which the victim survives.  Probes flow through "
        "the content-addressed result store, so a killed search resumes "
        "with zero replayed games, and `>2` means the adversary won at "
        "every probed locality — the lower bound held over the whole "
        "range, which is what every theorem predicts.\n"
    )
    spec = ThresholdSearchSpec(name="experiments-threshold", low=0, high=2)
    with tempfile.TemporaryDirectory() as store:
        results, outcome = run_threshold_search(spec, store)
    out.append("```")
    out.append(threshold_table(results))
    out.append("```\n")
    out.append(
        f"{outcome.played} games decided {len(results)} searches "
        "(losing at the top of the range is decisive); `n` is the "
        "instance size the adversary declared at the probe.\n"
    )


def generate() -> str:
    out: List[str] = []
    out.append("# EXPERIMENTS — paper vs measured\n")
    out.append(
        "Regenerate with `python -m repro.analysis.report > EXPERIMENTS.md` "
        "(a few minutes); the same measurements are asserted by "
        "`pytest benchmarks/`.\n"
    )
    out.append(
        "The paper is a theory paper: each theorem/lemma is an experiment "
        "here, per the index in DESIGN.md.  \"Defeated\" verdicts are "
        "machine-checked (view-consistency audit + explicit monochromatic "
        "edge + b-value certificates).\n"
    )
    for section in (
        section_theorem1,
        section_lemma36,
        section_corollary11,
        section_theorem2,
        section_theorem3,
        section_theorem4,
        section_theorem5,
        section_sandwich,
        section_gkm,
        section_tightness,
        section_randomized,
        section_ablations,
        section_threshold_campaign,
    ):
        section(out)
    out.append("## Honest limitations\n")
    out.append(
        "* The theorems quantify over *all* deterministic algorithms; an "
        "executable artifact demonstrates defeat of a concrete portfolio "
        "(greedy, the paper's own upper-bound algorithm run truncated, and "
        "a LOCAL-model baseline) plus machine-checked impossibility "
        "certificates that apply to any algorithm.\n"
        "* Asymptotic shapes are asserted where laptop-scale n can decide "
        "them (linear side-vs-T for Theorem 2, linear n-vs-T for "
        "Theorem 3, budget + √n-separation for Corollary 1.1); the "
        "log-vs-polynomial distinction for thresholds is reported but not "
        "decidable at n ≤ ~10³, and is marked as such.\n"
        "* The paper's 5^(k+1)·T region bound is loose; our construction "
        "satisfies the tighter 2^k recurrence, and both bounds are checked."
        "\n"
    )
    return "\n".join(out)


if __name__ == "__main__":
    sys.stdout.write(generate())
