"""Tests for the three grid families (Section 2.1)."""

import pytest

from repro.families.grids import CylindricalGrid, SimpleGrid, ToroidalGrid
from repro.graphs.traversal import is_connected
from repro.verify.coloring import is_proper


class TestSimpleGrid:
    def test_node_count(self):
        assert SimpleGrid(3, 4).num_nodes == 12

    def test_edge_count(self):
        # a x b grid: a(b-1) + b(a-1) edges.
        grid = SimpleGrid(3, 4)
        assert grid.graph.num_edges == 3 * 3 + 4 * 2

    def test_adjacency_rule(self):
        grid = SimpleGrid(3, 3)
        assert grid.graph.has_edge((0, 0), (0, 1))
        assert grid.graph.has_edge((0, 0), (1, 0))
        assert not grid.graph.has_edge((0, 0), (1, 1))
        assert not grid.graph.has_edge((0, 0), (0, 2))

    def test_rows_and_columns_are_paths(self):
        grid = SimpleGrid(4, 5)
        row = grid.row(2)
        assert len(row) == 5
        for a, b in zip(row, row[1:]):
            assert grid.graph.has_edge(a, b)
        assert not grid.graph.has_edge(row[0], row[-1])
        col = grid.column(3)
        assert len(col) == 4
        for a, b in zip(col, col[1:]):
            assert grid.graph.has_edge(a, b)

    def test_row_path_directions(self):
        grid = SimpleGrid(3, 5)
        assert grid.row_path(1, 1, 3) == [(1, 1), (1, 2), (1, 3)]
        assert grid.row_path(1, 3, 1) == [(1, 3), (1, 2), (1, 1)]

    def test_column_path(self):
        grid = SimpleGrid(4, 4)
        assert grid.column_path(2, 3, 1) == [(3, 2), (2, 2), (1, 2)]

    def test_bipartition_is_proper(self):
        grid = SimpleGrid(5, 5)
        coloring = {
            node: grid.bipartition_color(node) + 1 for node in grid.graph.nodes()
        }
        assert is_proper(grid.graph, coloring)

    def test_bounds_checks(self):
        grid = SimpleGrid(3, 3)
        with pytest.raises(IndexError):
            grid.node(3, 0)
        with pytest.raises(IndexError):
            grid.row(5)
        with pytest.raises(IndexError):
            grid.column(-1)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SimpleGrid(0, 5)

    def test_reflect_horizontal_is_automorphism(self):
        grid = SimpleGrid(3, 4)
        mapping = grid.reflect_horizontal()
        for u, v in grid.graph.edges():
            assert grid.graph.has_edge(mapping[u], mapping[v])

    def test_connected(self):
        assert is_connected(SimpleGrid(4, 6).graph)


class TestCylindricalGrid:
    def test_rows_are_cycles(self):
        cyl = CylindricalGrid(3, 5)
        assert cyl.graph.has_edge((1, 0), (1, 4))

    def test_columns_are_paths(self):
        cyl = CylindricalGrid(3, 5)
        assert not cyl.graph.has_edge((0, 2), (2, 2))

    def test_edge_count(self):
        cyl = CylindricalGrid(3, 5)
        # rows: 3 cycles of 5 edges; columns: 5 paths of 2 edges.
        assert cyl.graph.num_edges == 3 * 5 + 5 * 2

    def test_odd_columns_not_bipartite(self):
        cyl = CylindricalGrid(2, 5)
        # An odd cycle exists, so no proper 2-coloring: check via the
        # canonical parity attempt failing on the wrap edge.
        row = cyl.row_cycle(0)
        assert len(row) % 2 == 1

    def test_minimum_columns(self):
        with pytest.raises(ValueError):
            CylindricalGrid(3, 2)

    def test_degrees(self):
        cyl = CylindricalGrid(3, 5)
        assert cyl.graph.degree((0, 0)) == 3  # wrap + right + down
        assert cyl.graph.degree((1, 2)) == 4


class TestToroidalGrid:
    def test_rows_and_columns_are_cycles(self):
        torus = ToroidalGrid(4, 5)
        assert torus.graph.has_edge((2, 0), (2, 4))
        assert torus.graph.has_edge((0, 2), (3, 2))

    def test_regular_degree_four(self):
        torus = ToroidalGrid(4, 5)
        assert all(torus.graph.degree(v) == 4 for v in torus.graph.nodes())

    def test_edge_count(self):
        torus = ToroidalGrid(4, 5)
        assert torus.graph.num_edges == 2 * 4 * 5

    def test_minimum_dimensions(self):
        with pytest.raises(ValueError):
            ToroidalGrid(2, 5)
        with pytest.raises(ValueError):
            ToroidalGrid(5, 2)

    def test_three_colorable_even_columns(self):
        # Even x even torus is bipartite.
        torus = ToroidalGrid(4, 4)
        coloring = {(i, j): (i + j) % 2 + 1 for i, j in torus.graph.nodes()}
        assert is_proper(torus.graph, coloring)

    def test_reflect_horizontal_is_automorphism(self):
        torus = ToroidalGrid(5, 5)
        mapping = {
            (i, j): (i, (-j) % 5) for i in range(5) for j in range(5)
        }
        for u, v in torus.graph.edges():
            assert torus.graph.has_edge(mapping[u], mapping[v])
