"""Coloring-as-a-service: the asyncio HTTP server over the campaign
engine.

One process, one event loop, one content-addressed
:class:`~repro.analysis.store.ResultStore` — and one writer.  Every
submission is funnelled through a single executor task that runs
campaigns one at a time on a one-thread pool, so the serving tier
never has two schedulers contending for the same store (the store
tolerates concurrent *processes*, but serializing in-process writers
keeps run-ledger entries and live telemetry attributable to one
campaign at a time).

The dedupe story is layered:

* **Single-flight (in-memory):** a submission's campaign id is the
  content hash of its spec payload — :meth:`SubmitRequest.campaign_id`
  — so two concurrent POSTs of the same work coalesce onto one queued
  job; the second caller gets the same handle back (HTTP 200 instead
  of 202).
* **Store dedupe (on disk):** even a resubmission after the server was
  SIGKILLed replays nothing — the campaign engine serves every covered
  game from the store and the run-ledger entry shows ``played=0``.

Endpoints (all JSON, bodies defined in :mod:`repro.api`):

* ``POST /v1/campaigns`` — submit a :class:`~repro.api.SubmitRequest`
  payload; 202 + :class:`~repro.api.CampaignHandle` (200 when
  coalesced onto an in-flight job).
* ``GET /v1/campaigns/{id}`` — handle with progress, quarantine count,
  and the finished run's wall-clock/phase table.  Campaigns known only
  from a store manifest (an earlier server life, an offline CLI run)
  report ``state="stored"``.
* ``GET /v1/campaigns/{id}/rows?offset=&limit=`` — paginated
  :class:`~repro.api.RowPage` in the campaign's deterministic order.
* ``GET /v1/campaigns/{id}/events`` — SSE: lifecycle events plus
  ``progress`` events fed from the scheduler's ``live.json``
  telemetry.
* ``GET /v1/results/{spec_hash}`` — point lookup of one game row.
* ``GET /metrics`` — Prometheus text exposition of the process
  registry.
* ``GET /healthz`` — liveness + drain state.

Rate limiting is per client (``X-Client-Id`` header, else peer
address) via token buckets; ``/healthz`` and ``/metrics`` are exempt
so probes and scrapes never starve.  SIGTERM starts a graceful drain:
new submissions get 503 ``draining``, queued jobs fail fast, the
in-flight campaign gets ``drain_grace`` seconds to finish, then the
process exits (reads keep working throughout, and everything the
drain abandons resumes from the store on the next life).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import re
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.campaign import (
    CampaignError,
    CampaignSpec,
    ReproError,
    SpecVersionError,
    campaign_from_dict,
    covered_rows,
    replay_threshold,
)
from repro.analysis.store import QUARANTINE_CAUSE, ResultStore
from repro.api import (
    CampaignHandle,
    RowPage,
    SubmitRequest,
    run_submission,
)
from repro.observability.export import read_live_status, to_prometheus
from repro.observability.metrics import get_registry
from repro.server import sse
from repro.server.ratelimit import RateLimiter
from repro.server.routes import (
    HttpError,
    Request,
    Response,
    Router,
    json_response,
    read_request,
)

#: Campaign ids and spec hashes are SHA-256 hex; anything else 404s
#: before touching the filesystem (ids appear in manifest paths).
_HASH_RE = re.compile(r"^[0-9a-f]{64}$")

#: How often the live.json watcher polls while a job runs.
LIVE_POLL_SECONDS = 0.25

#: Events kept per job for SSE replay to late subscribers.
EVENT_HISTORY = 256

#: Idle SSE streams get a comment keepalive this often.
SSE_KEEPALIVE_SECONDS = 15.0

#: Per-request read/parse deadline.
REQUEST_TIMEOUT_SECONDS = 30.0

#: Rows-per-page ceiling (clients may ask for less, never more).
MAX_PAGE_LIMIT = 500

#: Sentinel queued to SSE subscribers when their job's stream closes.
_CLOSE = None


@dataclass
class CampaignJob:
    """One submission's in-memory life: queued → running → done/failed.

    The job object is also the SSE hub — ``events`` is the replayable
    history (capped at :data:`EVENT_HISTORY`), ``subscribers`` the live
    queues.  Store-derived progress is *not* cached here; handles are
    rebuilt from the store on every status read so they are honest
    under concurrent writers.
    """

    id: str
    request: SubmitRequest
    state: str = "queued"
    detail: str = ""
    outcome: Any = None
    results: Any = None
    wall_seconds: Optional[float] = None
    seq: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: List["asyncio.Queue[Any]"] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")


class ColoringServer:
    """The serving tier: routes, rate limits, the single-writer
    executor, and SSE fan-out, all over one shared store."""

    def __init__(
        self,
        store_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        rate: float = 20.0,
        burst: int = 40,
        drain_grace: float = 10.0,
        trace_path=None,
    ) -> None:
        self.store = ResultStore(store_dir)
        self.host = host
        self.port = port
        self.drain_grace = drain_grace
        self.trace_path = None if trace_path is None else os.fspath(trace_path)
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.registry = get_registry()
        self.draining = False
        self._jobs: Dict[str, CampaignJob] = {}
        # The queue and the stopped-event are created in start(): on
        # older pythons asyncio primitives bind their loop at creation,
        # and the server object is built before asyncio.run() starts it.
        self._queue: Optional["asyncio.Queue[Optional[str]]"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor_task: Optional[asyncio.Task] = None
        self._runner = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="campaign-exec"
        )
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self.router = Router()
        self.router.add("POST", "/v1/campaigns", self._handle_submit)
        self.router.add("GET", "/v1/campaigns/{id}", self._handle_status)
        self.router.add("GET", "/v1/campaigns/{id}/rows", self._handle_rows)
        self.router.add(
            "GET", "/v1/campaigns/{id}/events", self._handle_events
        )
        self.router.add("GET", "/v1/results/{spec_hash}", self._handle_result)
        self.router.add("GET", "/metrics", self._handle_metrics)
        self.router.add("GET", "/healthz", self._handle_healthz)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the executor task.  ``self.port``
        is the *actual* bound port afterwards (pass ``port=0`` for an
        ephemeral one — the CLI prints it for scripts to parse)."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopped = asyncio.Event()
        self._executor_task = self._loop.create_task(self._executor_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until drained (SIGTERM/SIGINT trigger the drain)."""
        await self.start()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_drain)
        print(
            f"repro-server listening on http://{self.host}:{self.port} "
            f"(store: {self.store.root})",
            flush=True,
        )
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        if self.draining:
            return
        self.draining = True
        self.registry.inc("server_drains")
        self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        # Fail everything still queued — resubmission after restart
        # costs nothing thanks to store dedupe.
        while True:
            try:
                job_id = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if job_id is None:
                continue
            job = self._jobs.get(job_id)
            if job is not None and job.state == "queued":
                job.state = "failed"
                job.detail = "server draining"
                self._publish(job, "failed", {
                    "id": job.id, "detail": job.detail,
                })
                self._close_subscribers(job)
        self._queue.put_nowait(None)  # executor-loop stop sentinel
        if self._executor_task is not None:
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._executor_task), self.drain_grace
                )
            except asyncio.TimeoutError:
                self._executor_task.cancel()
                await asyncio.gather(
                    self._executor_task, return_exceptions=True
                )
        for job in self._jobs.values():
            self._close_subscribers(job)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._runner.shutdown(wait=False, cancel_futures=True)
        self._stopped.set()

    async def stop(self) -> None:
        """Drain and wait (the programmatic / test shutdown path)."""
        self.request_drain()
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # The single-writer executor
    # ------------------------------------------------------------------
    async def _executor_loop(self) -> None:
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                continue
            if self.draining:
                job.state = "failed"
                job.detail = "server draining"
                self._publish(job, "failed", {
                    "id": job.id, "detail": job.detail,
                })
                self._close_subscribers(job)
                continue
            await self._run_one(job)

    async def _run_one(self, job: CampaignJob) -> None:
        job.state = "running"
        self._publish(job, "running", {"id": job.id, "name": job.request.spec.name})
        watcher = self._loop.create_task(self._watch_live(job))
        started = time.monotonic()
        error: Optional[BaseException] = None
        try:
            results, outcome = await self._loop.run_in_executor(
                self._runner, self._run_job, job
            )
        except Exception as exc:  # noqa: BLE001 - job failure, not server
            error = exc
        watcher.cancel()
        await asyncio.gather(watcher, return_exceptions=True)
        # The watcher polls; a fast campaign can finish between polls.
        # Publish the final telemetry snapshot explicitly — before the
        # terminal event — so every SSE stream sees at least one
        # progress event, then the done/failed marker last.
        status = await self._loop.run_in_executor(
            None, read_live_status, self.store.root
        )
        if status:
            self._publish_progress(job, status)
        if error is not None:
            job.state = "failed"
            job.detail = f"{type(error).__name__}: {error}"
            self.registry.inc("server_jobs_failed")
            self._publish(job, "failed", {
                "id": job.id, "detail": job.detail,
            })
        else:
            job.results = results
            job.outcome = outcome
            job.wall_seconds = time.monotonic() - started
            job.state = "done"
            self.registry.inc("server_jobs_done")
            self._publish(job, "done", {
                "id": job.id,
                "total": outcome.total,
                "played": outcome.played,
                "deduped": outcome.deduped,
                "errors": len(outcome.errors),
            })
        self._close_subscribers(job)

    def _run_job(self, job: CampaignJob) -> Tuple[Any, Any]:
        """Runs on the one-thread pool: the blocking campaign itself."""
        options: Dict[str, Any] = {}
        if self.trace_path is not None:
            options["trace_path"] = self.trace_path
        return run_submission(job.request, self.store.root, **options)

    async def _watch_live(self, job: CampaignJob) -> None:
        """Poll the scheduler's ``live.json`` while the job runs and
        fan snapshots out as SSE ``progress`` events."""
        last_stamp: Any = None
        while True:
            await asyncio.sleep(LIVE_POLL_SECONDS)
            status = await self._loop.run_in_executor(
                None, read_live_status, self.store.root
            )
            if not status:
                continue
            stamp = status.get("monotonic", status.get("written_at"))
            if stamp == last_stamp:
                continue
            last_stamp = stamp
            self._publish_progress(job, status)

    def _publish_progress(
        self, job: CampaignJob, status: Dict[str, Any]
    ) -> None:
        self._publish(job, "progress", {
            key: status[key]
            for key in (
                "campaign", "kind", "done", "games_total",
                "games_played", "games_deduped", "games_errors",
                "queue_depth", "in_flight", "workers",
            )
            if key in status
        })

    # ------------------------------------------------------------------
    # SSE fan-out
    # ------------------------------------------------------------------
    def _publish(
        self, job: CampaignJob, event: str, data: Dict[str, Any]
    ) -> None:
        job.seq += 1
        record = {"seq": job.seq, "event": event, "data": data}
        job.events.append(record)
        if len(job.events) > EVENT_HISTORY:
            del job.events[: len(job.events) - EVENT_HISTORY]
        for queue in list(job.subscribers):
            queue.put_nowait(record)

    def _close_subscribers(self, job: CampaignJob) -> None:
        for queue in list(job.subscribers):
            queue.put_nowait(_CLOSE)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        response: Optional[Response] = None
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), REQUEST_TIMEOUT_SECONDS
                )
                if request is None:
                    return
                peer = writer.get_extra_info("peername")
                request.peer = peer[0] if isinstance(peer, tuple) else str(peer)
                response = await self._dispatch(request, writer)
            except HttpError as exc:
                response = exc.to_response()
            except asyncio.TimeoutError:
                response = HttpError(
                    408, "bad-request", "request read timed out"
                ).to_response()
            except (ConnectionResetError, BrokenPipeError):
                return
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                self.registry.inc("server_internal_errors")
                response = HttpError(
                    500, "internal", f"{type(exc).__name__}: {exc}"
                ).to_response()
            if response is not None:
                writer.write(response.encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Optional[Response]:
        self.registry.inc("server_requests")
        handler, params = self.router.resolve(request.method, request.path)
        if request.path not in ("/healthz", "/metrics"):
            if not self.limiter.allow(request.client_key()):
                self.registry.inc("server_rate_limited")
                raise HttpError(
                    429, "rate-limited",
                    "per-client request budget exhausted; slow down",
                    detail={"retry_after": self.limiter.retry_after()},
                    headers={
                        "Retry-After": str(
                            max(1, int(self.limiter.retry_after()))
                        )
                    },
                )
        return await handler(request, params, writer)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_submit(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Response:
        payload = request.json()
        try:
            submit = SubmitRequest.from_payload(payload)
        except SpecVersionError as exc:
            raise HttpError(400, "unsupported-version", str(exc)) from exc
        except CampaignError as exc:
            raise HttpError(400, "bad-spec", str(exc)) from exc
        except ReproError as exc:
            raise HttpError(400, "bad-spec", str(exc)) from exc
        if self.draining:
            raise HttpError(
                503, "draining", "server is draining; resubmit elsewhere"
            )
        job, created = self._submit(submit)
        handle = await self._build_handle(job.id)
        return json_response(202 if created else 200, handle.to_payload())

    def _submit(self, submit: SubmitRequest) -> Tuple[CampaignJob, bool]:
        """Single-flight admission: identical in-flight work coalesces."""
        job_id = submit.campaign_id()
        job = self._jobs.get(job_id)
        if job is not None and not job.finished:
            self.registry.inc("server_submissions_coalesced")
            return job, False
        job = CampaignJob(id=job_id, request=submit)
        self._jobs[job_id] = job
        self.registry.inc("server_submissions")
        self._publish(job, "queued", {
            "id": job.id, "name": submit.spec.name, "kind": submit.kind,
        })
        self._queue.put_nowait(job_id)
        return job, True

    async def _handle_status(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Response:
        handle = await self._build_handle(self._checked_id(params["id"]))
        if handle is None:
            raise HttpError(
                404, "not-found", f"no campaign {params['id']!r} here"
            )
        return json_response(200, handle.to_payload())

    async def _handle_rows(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Response:
        offset = self._query_int(request, "offset", 0, minimum=0)
        limit = self._query_int(request, "limit", 100, minimum=1)
        limit = min(limit, MAX_PAGE_LIMIT)
        job_id = self._checked_id(params["id"])
        page = await self._loop.run_in_executor(
            None, self._build_page, job_id, offset, limit
        )
        if page is None:
            raise HttpError(
                404, "not-found", f"no campaign {params['id']!r} here"
            )
        return json_response(200, page.to_payload())

    async def _handle_events(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Optional[Response]:
        job = self._jobs.get(self._checked_id(params["id"]))
        if job is None:
            raise HttpError(
                404, "not-found",
                f"no live campaign {params['id']!r} (events exist only "
                f"for jobs submitted to this server process)",
            )
        self.registry.inc("server_sse_streams")
        queue: "asyncio.Queue[Any]" = asyncio.Queue()
        job.subscribers.append(queue)  # subscribe *before* replay
        try:
            writer.write(sse.response_head())
            seen = 0
            for record in list(job.events):
                writer.write(sse.format_event(
                    record["event"], record["data"], record["seq"]
                ))
                seen = record["seq"]
            await writer.drain()
            while True:
                if job.finished and queue.empty():
                    break
                try:
                    record = await asyncio.wait_for(
                        queue.get(), SSE_KEEPALIVE_SECONDS
                    )
                except asyncio.TimeoutError:
                    writer.write(sse.format_comment())
                    await writer.drain()
                    continue
                if record is _CLOSE:
                    break
                if record["seq"] <= seen:
                    continue  # already replayed from history
                writer.write(sse.format_event(
                    record["event"], record["data"], record["seq"]
                ))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to clean but the queue
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)
        return None

    async def _handle_result(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Response:
        digest = self._checked_id(params["spec_hash"])
        row = await self._loop.run_in_executor(
            None, lambda: self.store.index().get(digest)
        )
        if row is None:
            raise HttpError(
                404, "not-found", f"no result for spec hash {digest!r}"
            )
        return json_response(200, row)

    async def _handle_metrics(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Response:
        text = to_prometheus(self.registry.snapshot())
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )

    async def _handle_healthz(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> Response:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return json_response(200, {
            "ok": True,
            "draining": self.draining,
            "jobs": states,
            "store": self.store.root,
        })

    # ------------------------------------------------------------------
    # Handle / page construction (blocking parts run on the default
    # executor so the event loop never waits on a store scan)
    # ------------------------------------------------------------------
    @staticmethod
    def _checked_id(value: str) -> str:
        if not _HASH_RE.match(value):
            raise HttpError(
                404, "not-found",
                f"{value!r} is not a campaign id (ids are 64-char "
                f"SHA-256 hex)",
            )
        return value

    @staticmethod
    def _query_int(
        request: Request, key: str, default: int, minimum: int
    ) -> int:
        raw = request.query.get(key)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as exc:
            raise HttpError(
                400, "bad-request", f"query parameter {key!r} must be an "
                f"integer, got {raw!r}"
            ) from exc
        if value < minimum:
            raise HttpError(
                400, "bad-request", f"query parameter {key!r} must be "
                f">= {minimum}, got {value}"
            )
        return value

    def _spec_for(self, job_id: str):
        """The campaign spec behind an id: a live job's, else the store
        manifest's (campaigns from earlier lives), else None."""
        job = self._jobs.get(job_id)
        if job is not None:
            return job.request.spec
        path = os.path.join(self.store.root, f"manifest-{job_id}.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            return campaign_from_dict(payload)
        except ReproError:
            return None

    async def _build_handle(self, job_id: str) -> Optional[CampaignHandle]:
        return await self._loop.run_in_executor(
            None, self._build_handle_sync, job_id
        )

    def _build_handle_sync(self, job_id: str) -> Optional[CampaignHandle]:
        spec = self._spec_for(job_id)
        if spec is None:
            return None
        index = self.store.index()
        rows = covered_rows(spec, index)
        quarantined = sum(
            1 for row in rows if row.get("cause") == QUARANTINE_CAUSE
        )
        if isinstance(spec, CampaignSpec):
            kind = "sweep"
            done = len(rows)
            total = len(spec.expand())
            detail = ""
        else:
            kind = "threshold"
            results, done = replay_threshold(spec, index)
            total = None
            converged = sum(1 for result in results if result.converged)
            detail = f"{converged}/{len(results)} combos converged"
        job = self._jobs.get(job_id)
        state = "stored" if job is None else job.state
        played = deduped = None
        errors = 0
        wall_seconds = None
        phases = None
        if job is not None:
            if job.detail:
                detail = job.detail
            if job.outcome is not None:
                played = job.outcome.played
                deduped = job.outcome.deduped
                errors = len(job.outcome.errors)
                wall_seconds = job.wall_seconds
                # The run ledger keeps the authoritative phase table
                # for the finished run; surface the newest entry for
                # this campaign.
                for run in reversed(self.store.runs()):
                    if run.get("campaign") == spec.name:
                        phases = run.get("phases")
                        if run.get("wall_seconds") is not None:
                            wall_seconds = run["wall_seconds"]
                        break
        return CampaignHandle(
            id=job_id,
            name=spec.name,
            kind=kind,
            state=state,
            done=done,
            total=total,
            played=played,
            deduped=deduped,
            errors=errors,
            quarantined=quarantined,
            detail=detail,
            wall_seconds=wall_seconds,
            phases=phases,
        )

    def _build_page(
        self, job_id: str, offset: int, limit: int
    ) -> Optional[RowPage]:
        spec = self._spec_for(job_id)
        if spec is None:
            return None
        rows = covered_rows(spec, self.store.index())
        return RowPage(
            campaign_id=job_id,
            offset=offset,
            limit=limit,
            total=len(rows),
            rows=tuple(rows[offset:offset + limit]),
        )


async def serve(
    store_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    **options: Any,
) -> None:
    """Convenience wrapper: build a :class:`ColoringServer` and serve
    until drained (what ``repro serve`` runs)."""
    server = ColoringServer(store_dir, host, port, **options)
    await server.run()
