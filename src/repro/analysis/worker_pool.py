"""Supervised campaign worker pool: chunked leases, crash recovery,
quarantine, warm workers, and a cross-process shared ball pool.

The PR-5 campaign scheduler fanned games out over bare ``ctx.Process``
workers sharing one task queue.  That survives the failures *games*
survive (victim crashes become forfeit rows inside the worker) but not
the failures *processes* suffer: a SIGKILLed, OOM'd, or natively hung
worker silently lost its in-flight game, and the parent's drain loop
only noticed once **every** worker was dead.  This module replaces the
fan-out with a supervised pool:

* **Chunked leases** — the parent dispatches a *batch* of games to one
  worker per lease and records a :class:`Lease` (the chunk's items,
  pid, a monotonic deadline summed over the chunk's ``GamePolicy``
  timeouts × a grace factor).  Chunk size adapts: it starts at
  ``ceil(pending / (2 × workers))`` (capped by ``max_chunk``) and
  halves toward 1 as the queue drains, so work-stealing stays balanced
  at the tail while the bulk of the campaign pays one IPC round-trip
  and one fsync per *chunk* instead of per game.  The worker heartbeats
  each game as it starts, plays the whole chunk, fsyncs every row in
  one batched store append, and sends **one** ack carrying all rows.
* **Crash recovery at chunk granularity, blame at game granularity** —
  dead workers (``Process.is_alive()``/``exitcode``) and expired leases
  are reaped, a replacement spawned (while the restart budget lasts),
  and every *unacknowledged* game of the lost chunk requeued.  The
  per-game heartbeat marks which game was in progress, so only that
  game is blamed for the loss: ``poison_threshold`` losses quarantine
  *it* — written to the :class:`~repro.analysis.store.ResultStore` as a
  structured forfeit row (``reason="forfeit:poison"``) — while its
  chunk-mates are requeued untainted.
* **Warm forkserver workers** — the pool runs on a ``forkserver``
  context (``REPRO_POOL_START`` overrides) with the simulator/graph/CSR
  modules preloaded, and healthy workers are *parked* in a module-level
  :class:`WarmWorkerPool` at shutdown instead of being retired.  The
  next campaign in the same process adopts them with a ``configure``
  message, so ``pool-spawn`` is paid once per process, not per
  campaign.  ``REPRO_WARM_POOL=0`` disables parking.
* **Cross-process shared ball pool** — when shared memory is available
  the parent creates a :class:`~repro.graphs.shared_pool.SharedBallPool`
  segment, records a sidecar under the store root, and ships the
  segment name to workers, whose
  :class:`~repro.graphs.traversal.BallCache` then reuses balls computed
  by *siblings*.  Segments are unlinked on shutdown and degradation,
  and stale segments from a SIGKILLed run are swept (pid-liveness
  keyed) before the next pool starts.
* **Isolated channels** — each worker talks to the parent over its own
  duplex pipe; a torn write poisons only the dead worker's channel.
* **Graceful degradation** — when the restart budget is exhausted the
  pool stops, hands the un-played remainder back to the scheduler, and
  the scheduler finishes **in-process serially** instead of raising.

Observability: the drain runs inside a ``worker-pool`` trace span;
worker lifecycle transitions are trace events (``worker-spawned``,
``worker-adopted``, ``worker-died``, ``lease-expired``,
``game-requeued``, ``game-quarantined``, ``pool-degraded``) and the
counters ``campaign_worker_restarts`` / ``campaign_lease_expirations``
/ ``campaign_games_requeued`` / ``campaign_games_quarantined`` /
``campaign_pool_degradations`` / ``campaign_warm_adoptions`` fold
through the ordinary registry.  Heartbeats (one per game start), the
rate-limited ``live.json`` status, phase timers (``ack-wait`` is the
parent blocked on worker pipes, ``ack-drain`` the actual recv+fold
cost), and the flight recorder all carry over from PR-8 unchanged.

Chaos: workers consult an optional
:class:`~repro.robustness.chaos.ChaosPolicy` (normally passed via the
``REPRO_CHAOS`` environment) before each game of a chunk — kill-self,
stall, corrupt-result-row, slow-start.  The parent never applies chaos,
so the degraded serial path always completes.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.analysis.executor import GameSpec
from repro.analysis.store import (
    HASH_FIELD,
    QUARANTINE_CAUSE,
    QUARANTINE_REASON,
    ResultStore,
)
from repro.graphs.shared_pool import (
    SharedBallPool,
    pid_alive,
    publish_segment,
    retire_segment,
    set_active_pool,
    shared_balls_enabled,
    sweep_stale_segments,
)
from repro.observability.export import write_live_status
from repro.observability.flightrec import FLIGHT, dump_on_fault
from repro.observability.metrics import get_registry, scoped_registry
from repro.observability.timers import (
    WORKER_SCOPE,
    phase_attribution,
    phase_timer,
    phase_timers_enabled,
    set_phase_scope,
    set_phase_timers,
)
from repro.observability.trace import TRACER
from repro.robustness.chaos import ChaosPolicy, inject_corrupt_row

# Parent-side phase handles (module-level so the per-event cost is one
# registry identity check; see repro.observability.timers).  ack-wait is
# the parent *blocked* on worker pipes (healthy overlap with worker
# compute); ack-drain is the recv + bookkeeping that is real IPC cost.
_T_POOL_SPAWN = phase_timer("pool-spawn")
_T_PIPE_SEND = phase_timer("pipe-send")
_T_ACK_WAIT = phase_timer("ack-wait")
_T_ACK_DRAIN = phase_timer("ack-drain")
_T_LEASE_SWEEP = phase_timer("lease-sweep")
# Worker-side handles pick up the "worker:" scope set in _pool_worker;
# store fsync is timed inside ResultStore.add_many itself, under
# whichever scope the writing process runs.
_T_W_RECV = phase_timer("pipe-recv")
_T_W_COMPUTE = phase_timer("compute")
_T_W_SEND = phase_timer("pipe-send")

#: One work item as the scheduler hands it over: (content hash, spec).
WorkItem = Tuple[str, GameSpec]

#: One dispatched chunk entry: (content hash, spec, attempt number).
ChunkItem = Tuple[str, GameSpec, int]

#: Upper bound on the adaptive chunk size (games per lease).
DEFAULT_MAX_CHUNK = 32

#: Environment knob selecting the pool's multiprocessing start method
#: (default ``forkserver``; ``fork`` restores the PR-5 behavior).
POOL_START_ENV_VAR = "REPRO_POOL_START"

#: Environment knob disabling the cross-campaign warm worker pool.
WARM_POOL_ENV_VAR = "REPRO_WARM_POOL"

#: Modules the forkserver preloads so every worker fork starts with the
#: simulator, registry, and graph kernels already imported.
FORKSERVER_PRELOAD = (
    "repro.analysis.campaign",
    "repro.registry",
    "repro.graphs.csr",
    "repro.graphs.traversal",
)


def _main_module_forkable() -> bool:
    """Whether forkserver children can re-prepare the caller's main
    module.

    Forkserver workers run the spawn-style main-module fixup: a main
    imported by name (``python -m``, pytest's importable scripts) or a
    real file re-imports fine, but a pseudo-path like ``<stdin>`` (a
    heredoc script) makes every worker die at boot trying to re-run it.
    Those callers get the plain ``fork`` method instead.
    """
    main_module = sys.modules.get("__main__")
    if main_module is None:  # pragma: no cover - embedded interpreters
        return False
    spec = getattr(main_module, "__spec__", None)
    if getattr(spec, "name", None) is not None:
        return True
    main_path = getattr(main_module, "__file__", None)
    if main_path is None:
        # No spec and no file (a REPL): children skip main fixup.
        return True
    return os.path.isfile(main_path)

_pool_ctxs: Dict[str, Any] = {}


def pool_start_context():
    """The pool's multiprocessing context (cached per start method).

    ``forkserver`` by default: one server process imports the heavy
    modules once (``set_forkserver_preload``) and every worker is a
    cheap fork of *it*, so repeated campaigns stop paying interpreter
    plus import start-up per worker.  ``REPRO_POOL_START`` selects
    ``fork``/``spawn`` instead (the SIGKILL process-tree test uses
    ``fork`` where workers must be direct children, and in-process
    registry mutations only reach fork workers) and is re-read on every
    call so tests can switch methods mid-process.
    """
    default = "forkserver" if _main_module_forkable() else "fork"
    requested = os.environ.get(POOL_START_ENV_VAR, default)
    cached = _pool_ctxs.get(requested)
    if cached is not None:
        return cached
    try:
        ctx = multiprocessing.get_context(requested)
    except ValueError:  # pragma: no cover - platform without the method
        ctx = multiprocessing.get_context()
    if requested == "forkserver":
        try:
            ctx.set_forkserver_preload(list(FORKSERVER_PRELOAD))
        except Exception:  # pragma: no cover - server already running
            pass
    _pool_ctxs[requested] = ctx
    return ctx


def chunk_target(pending: int, workers: int, max_chunk: int = DEFAULT_MAX_CHUNK) -> int:
    """The adaptive chunk size for one dispatch.

    ``ceil(pending / (2 × workers))`` capped by ``max_chunk``: with a
    full queue every worker gets a substantial batch (and a second one
    is always left to steal), and as the queue drains the target halves
    toward 1, so the tail of a campaign degenerates to the PR-5
    game-at-a-time protocol and no worker sits idle behind a hoarder.
    """
    if pending <= 0:
        return 1
    return max(1, min(max_chunk, -(-pending // (2 * max(1, workers)))))


def warm_pool_enabled() -> bool:
    """Whether retiring pools park healthy workers for reuse."""
    return os.environ.get(WARM_POOL_ENV_VAR, "") != "0"


class WarmWorkerPool:
    """Parked worker processes kept alive between campaigns.

    A parked worker sits blocked on its pipe; adopting it costs one
    ``configure`` message instead of a process spawn.  Only healthy,
    lease-free workers are ever parked, and adoption re-checks
    liveness, so a worker that died while parked is silently discarded.
    """

    def __init__(self) -> None:
        self._parked: List[Tuple[Any, Any]] = []

    def __len__(self) -> int:
        return len(self._parked)

    def acquire(self) -> Optional[Tuple[Any, Any]]:
        """A live (process, conn) pair, or None when none survive."""
        while self._parked:
            process, conn = self._parked.pop()
            if process.is_alive():
                return process, conn
            self._discard(process, conn)
        return None

    def park(self, process, conn) -> bool:
        """Shelve a healthy worker for the next campaign."""
        if not process.is_alive():
            self._discard(process, conn)
            return False
        self._parked.append((process, conn))
        return True

    def shutdown(self) -> None:
        """Retire every parked worker (sentinel, join, kill stragglers)."""
        parked, self._parked = self._parked, []
        for process, conn in parked:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 5.0
        for process, conn in parked:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - straggler
                process.kill()
                process.join()
            try:
                conn.close()
            except (OSError, ValueError):  # pragma: no cover
                pass

    @staticmethod
    def _discard(process, conn) -> None:
        try:
            process.join(timeout=0)
        except (OSError, ValueError):  # pragma: no cover
            pass
        try:
            conn.close()
        except (OSError, ValueError):  # pragma: no cover
            pass


#: The process-wide warm pool every SupervisedWorkerPool shares.
WARM_POOL = WarmWorkerPool()
atexit.register(WARM_POOL.shutdown)


def warm_pool_size() -> int:
    """How many parked workers the next campaign can adopt."""
    return len(WARM_POOL)


def shutdown_warm_pool() -> None:
    """Retire every parked worker now (tests and embedders call this to
    return the process to a cold state)."""
    WARM_POOL.shutdown()


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to (re)configure itself for a campaign.

    Shipped at spawn and again on adoption from the warm pool, so a
    parked worker always serves the *current* campaign's store, chaos
    policy, timer setting, and shared ball segment.
    """

    store_root: str
    retries: int
    backoff: float
    chaos: Optional[ChaosPolicy]
    timers_on: bool
    segment: Optional[str]


@dataclass
class Lease:
    """One dispatched chunk of games, tracked until acknowledged.

    ``deadline`` is a monotonic-clock instant derived from the *sum* of
    the chunk's wall-clock timeouts × the pool's grace factor (plus a
    constant slack); ``None`` when any policy in the chunk has no
    timeout, in which case only worker death — not expiry — can end the
    lease.  ``current`` tracks the most recent per-game heartbeat: the
    game to *blame* when the worker is lost mid-chunk.
    """

    items: List[ChunkItem]
    pid: Optional[int]
    started: float
    deadline: Optional[float]
    current: Optional[str] = None

    @property
    def blamed(self) -> ChunkItem:
        """The chunk item in progress when the lease was lost (the
        heartbeated game, else the first item)."""
        for item in self.items:
            if item[0] == self.current:
                return item
        return self.items[0]


@dataclass
class _Worker:
    """Parent-side handle on one worker process and its duplex pipe.

    ``broken`` is set when the parent fails to send to or receive from
    the pipe — a torn write from a mid-ack SIGKILL, an EOF, anything —
    and is treated exactly like process death by the health sweep.
    """

    index: int
    process: Any
    conn: Any
    lease: Optional[Lease] = None
    broken: bool = False
    #: Monotonic instant of the last message (heartbeat or ack) the
    #: parent read from this worker; spawn time until then.
    last_seen: float = 0.0
    #: Games this worker has acknowledged as done.
    games: int = 0


@dataclass
class PoolOutcome:
    """What one pool drain produced.

    ``leftover`` is non-empty exactly when the pool degraded: the
    restart budget ran out and these games must be finished in-process
    by the caller.  ``quarantined`` digests also appear in ``rows`` (as
    their structured forfeit rows), so callers count them as covered.
    """

    rows: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    errors: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    leftover: List[WorkItem] = field(default_factory=list)
    restarts: int = 0
    lease_expirations: int = 0
    requeues: int = 0
    degraded: bool = False


def quarantine_row(digest: str, spec: GameSpec, losses: int) -> Dict[str, Any]:
    """The structured forfeit row a poison game is stored under.

    Shaped like an ordinary tournament row (so tables, status, and
    dedupe treat it uniformly) plus ``cause="poison"`` — the marker
    :meth:`ResultStore.quarantined` and ``campaign status`` key on.
    """
    return {
        HASH_FIELD: digest,
        "adversary": spec.adversary,
        "victim": spec.victim,
        "locality": spec.locality,
        "won": True,
        "reason": QUARANTINE_REASON,
        "forfeit": True,
        "detail": (
            f"game killed or hung {losses} worker processes; "
            "quarantined by the supervised pool"
        ),
        "error_type": "PoisonGame",
        "failed_at_step": None,
        "n": None,
        "cause": QUARANTINE_CAUSE,
    }


def _error_entry(digest: str, spec: GameSpec, detail: str) -> Dict[str, Any]:
    return {
        HASH_FIELD: digest,
        "adversary": spec.adversary,
        "victim": spec.victim,
        "locality": spec.locality,
        "error": detail,
    }


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
class _WorkerState:
    """The worker loop's mutable campaign configuration."""

    __slots__ = (
        "store", "retries", "backoff", "chaos",
        "segment", "segment_name", "parent_pid",
    )

    def __init__(self, parent_pid: int) -> None:
        self.store: Optional[ResultStore] = None
        self.retries = 1
        self.backoff = 0.0
        self.chaos: Optional[ChaosPolicy] = None
        self.segment: Optional[SharedBallPool] = None
        self.segment_name: Optional[str] = None
        self.parent_pid = parent_pid


def _worker_detach_segment(state: _WorkerState) -> None:
    if state.segment is not None:
        set_active_pool(None)
        state.segment.close()
        state.segment = None
        state.segment_name = None


def _worker_apply_config(
    config: WorkerConfig, state: _WorkerState, index: int
) -> None:
    set_phase_timers(config.timers_on)
    state.store = ResultStore(config.store_root)
    state.retries = config.retries
    state.backoff = config.backoff
    state.chaos = config.chaos
    if config.segment != state.segment_name:
        _worker_detach_segment(state)
        if config.segment is not None:
            segment = SharedBallPool.attach(config.segment)
            if segment is not None:
                state.segment = segment
                state.segment_name = config.segment
                set_active_pool(segment)
    # Applied at boot *and* on warm adoption: a chaos slow start models
    # a slow worker bring-up, and adoption is this campaign's bring-up.
    if config.chaos is not None:
        config.chaos.apply_slow_start(index)


def _serve_chunk(
    conn, items: List[ChunkItem], state: _WorkerState, worker_registry,
    games_served: int,
) -> Optional[int]:
    """Play one leased chunk; returns the new served count, or None
    when the parent is unreachable (the worker should exit).

    Every game is heartbeated *before* its chaos action or compute, so
    even a game that kills this worker instantly leaves a liveness mark
    — that mark is what lets the parent blame the right game of the
    chunk.  All rows are fsynced in **one** batched store append before
    the single chunk ack, so a kill — of the worker or the parent —
    never loses an acknowledged game, and a kill mid-chunk loses only
    unacknowledged (hence requeued) ones.
    """
    from repro.analysis.campaign import _play_with_retry, _store_row

    results: List[Tuple[str, str, Any]] = []
    played: List[Tuple[str, Dict[str, Any]]] = []
    corrupted: List[str] = []
    chaos = state.chaos
    for digest, spec, attempt in items:
        try:
            conn.send(
                ("heartbeat", digest, {"pid": os.getpid(), "games": games_served}, None)
            )
        except OSError:  # pragma: no cover - parent gone
            return None
        action = None
        if chaos is not None:
            action = chaos.action_for(digest, attempt)
            if action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif action == "stall":
                # The parent's lease expiry is expected to SIGKILL us
                # long before this loop finishes; bail out if the
                # parent itself dies so a stalled worker never
                # outlives it as an orphan.
                deadline = time.monotonic() + chaos.stall_seconds
                while time.monotonic() < deadline:
                    if not pid_alive(state.parent_pid):
                        return None
                    time.sleep(0.2)
        try:
            with _T_W_COMPUTE:
                outcome = _play_with_retry(spec, state.retries, state.backoff)
        except Exception as exc:
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            results.append((digest, "error", detail))
            continue
        if outcome.metrics:
            worker_registry.merge(outcome.metrics)
        row = _store_row(outcome, digest)
        if action == "corrupt":
            corrupted.append(digest)
        else:
            played.append((digest, row))
    try:
        state.store.add_many([row for _, row in played])
    except OSError as exc:
        # Disk trouble fails the whole batch: none of these rows is
        # durable, so none may be acknowledged; the next run retries.
        results.extend(
            (digest, "error", f"result store write failed: {exc}")
            for digest, _ in played
        )
    else:
        results.extend((digest, "done", row) for digest, row in played)
        games_served += len(played)
    for digest in corrupted:
        # Chaos "corrupt": tear this worker's shard the way a kill
        # mid-write would, and report the game as a store failure.
        try:
            inject_corrupt_row(state.store.root, os.getpid())
        except OSError as exc:
            results.append(
                (digest, "error", f"result store write failed: {exc}")
            )
    metrics = worker_registry.snapshot()
    worker_registry.reset()
    try:
        with _T_W_SEND:
            conn.send(("chunk-done", None, results, metrics))
    except OSError:  # pragma: no cover - parent gone
        return None
    return games_served


def _pool_worker(index: int, conn, config: WorkerConfig, parent_pid: int) -> None:
    """Worker loop: serve one leased chunk per pipe round-trip until the
    ``None`` sentinel.

    Pipe sends are synchronous (no feeder thread): once ``conn.send``
    returns, the ack is in the kernel buffer and survives this
    process's death.  Parent-death detection cannot rely on pipe EOF
    alone (inherited duplicate fds keep pipes open) nor on ``getppid``
    (under forkserver the worker's parent is the *server*, not the
    pool), so the worker probes the pool pid's liveness directly while
    idle and while stalled.
    """
    # Phase timers: adopt the parent's setting explicitly (forkserver
    # children do not inherit the module global from the pool process)
    # and scope every phase this process records under "worker:" so
    # merged parent snapshots keep worker-side time apart from
    # parent-side time.  The fresh scoped registry matters under fork:
    # the child inherits a *copy* of the parent's counters, and shipping
    # that copy back would double every pre-fork count.
    set_phase_scope(WORKER_SCOPE)
    state = _WorkerState(parent_pid)
    _worker_apply_config(config, state, index)
    games_served = 0
    with scoped_registry() as worker_registry:
        while True:
            try:
                with _T_W_RECV:
                    while not conn.poll(1.0):
                        if not pid_alive(state.parent_pid):
                            _worker_detach_segment(state)
                            return
                    item = conn.recv()
            except (EOFError, OSError):  # parent gone
                _worker_detach_segment(state)
                return
            if item is None:
                try:
                    conn.send(("exit", index, None, None))
                except OSError:  # pragma: no cover - parent gone
                    pass
                _worker_detach_segment(state)
                return
            kind = item[0]
            if kind == "configure":
                # Warm adoption: the park-wait interval belongs to no
                # campaign, so drop anything the registry accrued since
                # the last chunk ack (e.g. worker:pipe-recv timed while
                # the previous campaign's timers were still on).
                worker_registry.reset()
                _worker_apply_config(item[1], state, index)
                continue
            if kind == "park":
                # Between campaigns: drop the segment attachment so the
                # retiring pool can unlink it, then wait warm.
                _worker_detach_segment(state)
                continue
            if kind == "chunk":
                served = _serve_chunk(
                    conn, item[1], state, worker_registry, games_served
                )
                if served is None:
                    _worker_detach_segment(state)
                    return
                games_served = served


class SupervisedWorkerPool:
    """Drain campaign work through leased, supervised worker processes.

    Parameters
    ----------
    store:
        The :class:`ResultStore` workers write rows into and the parent
        writes quarantine rows into.
    workers:
        Worker process count (the pool spawns at most ``len(work)``).
    retries, backoff:
        Per-game in-worker retry budget and base backoff, as in
        :class:`~repro.analysis.campaign.CampaignScheduler`.
    max_worker_restarts:
        Total worker respawns across the drain before the pool degrades
        to the caller's serial path.  ``None`` means ``max(8, 2 ×
        workers)``.
    poison_threshold:
        Worker losses (deaths + lease expirations) one game may cause
        before it is quarantined.
    lease_grace, lease_slack:
        A chunk's lease expires ``sum(timeouts) × lease_grace +
        lease_slack`` seconds after dispatch (no expiry when any spec
        in the chunk has no timeout).
    heartbeat:
        The drain loop's poll interval — how often worker health and
        lease deadlines are checked while no results arrive.
    chaos:
        Fault-injection policy shipped to workers; defaults to
        :meth:`ChaosPolicy.from_env` (i.e. the ``REPRO_CHAOS``
        environment), which resolves to None in ordinary runs.
    chunk_size:
        Games per lease.  ``None`` (default) adapts via
        :func:`chunk_target`; an explicit integer pins it — ``1`` is
        the degenerate mode equivalent to the PR-5 per-game protocol,
        which CI uses to prove chunking is semantics-preserving.
    max_chunk:
        Upper bound on the adaptive chunk size.
    live_interval:
        How often (seconds) the drain loop republishes ``live.json``
        under the store root for ``repro campaign watch``; ``None``
        disables live telemetry entirely.
    live_extra:
        Extra fields merged into every live status record (the
        scheduler passes campaign-level context such as the dedupe
        count, which the pool cannot know).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int,
        retries: int = 1,
        backoff: float = 0.05,
        max_worker_restarts: Optional[int] = None,
        poison_threshold: int = 3,
        lease_grace: float = 3.0,
        lease_slack: float = 1.0,
        heartbeat: float = 0.1,
        chaos: Optional[ChaosPolicy] = None,
        chunk_size: Optional[int] = None,
        max_chunk: int = DEFAULT_MAX_CHUNK,
        live_interval: Optional[float] = 1.0,
        live_extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {poison_threshold}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.store = store
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.max_worker_restarts = (
            max_worker_restarts
            if max_worker_restarts is not None
            else max(8, 2 * workers)
        )
        self.poison_threshold = poison_threshold
        self.lease_grace = lease_grace
        self.lease_slack = lease_slack
        self.heartbeat = heartbeat
        self.chaos = chaos if chaos is not None else ChaosPolicy.from_env()
        self.chunk_size = chunk_size
        self.max_chunk = max_chunk
        self.live_interval = live_interval
        self.live_extra = dict(live_extra) if live_extra else {}
        self._last_live = 0.0
        self._max_queue_depth = 0
        self._max_in_flight = 0
        self._segment: Optional[SharedBallPool] = None

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def run(self, work: List[WorkItem]) -> PoolOutcome:
        """Play every work item; returns the :class:`PoolOutcome`.

        Never raises on worker failure: lost games are requeued or
        quarantined, and a exhausted restart budget surfaces as
        ``leftover`` work for the caller's serial path.
        """
        ctx = pool_start_context()
        self._specs = dict(work)
        registry = get_registry()
        outcome = PoolOutcome()
        pending: Deque[WorkItem] = deque(work)
        attempts: Dict[str, int] = {}
        losses: Dict[str, int] = {}
        pool_size = min(self.workers, len(work))
        total = len(work)
        self._create_segment(pool_size)
        FLIGHT.record("pool-start", workers=pool_size, games=total)
        fleet: List[_Worker] = [
            self._spawn(ctx, index) for index in range(pool_size)
        ]

        with TRACER.span("worker-pool", workers=pool_size) as span:
            try:
                while True:
                    for worker in fleet:
                        if worker.lease is None:
                            self._dispatch(
                                worker, pending, outcome.rows, attempts
                            )
                    busy = any(worker.lease is not None for worker in fleet)
                    remaining = any(
                        d not in outcome.rows for d, _ in pending
                    )
                    if not busy and not remaining:
                        break
                    if not fleet:
                        # Every worker slot is gone and the budget with it.
                        self._degrade(outcome, pending, fleet, registry)
                        break
                    self._drain_one(fleet, outcome, registry)
                    if not self._sweep_health(
                        ctx, fleet, pending, outcome, attempts, losses,
                        registry,
                    ):
                        self._degrade(outcome, pending, fleet, registry)
                        break
                    with _T_LEASE_SWEEP:
                        self._publish_live(
                            fleet, pending, outcome, total, registry,
                            done=False,
                        )
                with _T_LEASE_SWEEP:
                    self._shutdown(fleet)
                    registry.set("campaign_queue_depth", self._max_queue_depth)
                    registry.set("campaign_in_flight", self._max_in_flight)
                    self._publish_live(
                        fleet, pending, outcome, total, registry, done=True
                    )
            finally:
                self._retire_segment()
            FLIGHT.record(
                "pool-finished",
                games=len(outcome.rows),
                errors=len(outcome.errors),
                restarts=outcome.restarts,
                degraded=outcome.degraded,
            )
            span.note(
                restarts=outcome.restarts,
                lease_expirations=outcome.lease_expirations,
                requeues=outcome.requeues,
                quarantined=len(outcome.quarantined),
                degraded=outcome.degraded,
            )
        return outcome

    def _publish_live(
        self,
        fleet: List[_Worker],
        pending: Deque[WorkItem],
        outcome: PoolOutcome,
        total: int,
        registry,
        done: bool,
    ) -> None:
        """Track queue gauges and (rate-limited) rewrite ``live.json``.

        Telemetry, not bookkeeping: any failure here is swallowed by
        :func:`write_live_status` rather than surfacing in the drain.
        """
        queue_depth = sum(1 for d, _ in pending if d not in outcome.rows)
        in_flight = sum(
            len(w.lease.items) for w in fleet if w.lease is not None
        )
        if queue_depth > self._max_queue_depth:
            self._max_queue_depth = queue_depth
        if in_flight > self._max_in_flight:
            self._max_in_flight = in_flight
        if self.live_interval is None:
            return
        now = time.monotonic()
        if not done and now - self._last_live < self.live_interval:
            return
        self._last_live = now
        status: Dict[str, Any] = dict(self.live_extra)
        status.update(
            {
                "done": done,
                "monotonic": now,
                "games_total": total,
                "games_played": len(outcome.rows),
                "games_errors": len(outcome.errors),
                "games_quarantined": len(outcome.quarantined),
                "games_requeued": outcome.requeues,
                "worker_restarts": outcome.restarts,
                "queue_depth": queue_depth,
                "in_flight": in_flight,
                "chunk_size": (
                    "adaptive" if self.chunk_size is None else self.chunk_size
                ),
                "workers": [
                    {
                        "index": w.index,
                        "pid": w.process.pid,
                        "state": (
                            "broken"
                            if w.broken
                            else ("busy" if w.lease is not None else "idle")
                        ),
                        "last_seen": w.last_seen,
                        "games": w.games,
                    }
                    for w in fleet
                ],
                "phases": phase_attribution(registry.snapshot()),
            }
        )
        write_live_status(self.store.root, status)

    # ------------------------------------------------------------------
    # Shared ball segment lifecycle
    # ------------------------------------------------------------------
    def _create_segment(self, pool_size: int) -> None:
        """Create this run's shared ball segment (multi-worker pools
        only) after sweeping segments orphaned by SIGKILLed runs."""
        if pool_size < 2 or not shared_balls_enabled():
            return
        sweep_stale_segments(self.store.root)
        segment = SharedBallPool.create()
        if segment is None:
            return  # shared memory unavailable: in-process pools only
        self._segment = segment
        publish_segment(self.store.root, segment)

    def _retire_segment(self) -> None:
        if self._segment is None:
            return
        retire_segment(self.store.root, self._segment)
        self._segment = None

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self) -> WorkerConfig:
        return WorkerConfig(
            store_root=self.store.root,
            retries=self.retries,
            backoff=self.backoff,
            chaos=self.chaos,
            timers_on=phase_timers_enabled(),
            segment=self._segment.name if self._segment is not None else None,
        )

    def _spawn(self, ctx, index: int) -> _Worker:
        config = self._worker_config()
        if warm_pool_enabled():
            adopted = self._adopt_warm(index, config)
            if adopted is not None:
                return adopted
        with _T_POOL_SPAWN:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_pool_worker,
                args=(index, child_conn, config, os.getpid()),
                daemon=True,
            )
            process.start()
            # Drop the parent's copy of the child end so a dead worker
            # reads as EOF instead of a silent hang.
            child_conn.close()
        TRACER.event("worker-spawned", worker=index, pid=process.pid)
        FLIGHT.record("worker-spawned", worker=index, pid=process.pid)
        return _Worker(
            index=index,
            process=process,
            conn=parent_conn,
            last_seen=time.monotonic(),
        )

    def _adopt_warm(self, index: int, config: WorkerConfig) -> Optional[_Worker]:
        """Reuse a parked worker: one configure message, no spawn."""
        while True:
            pair = WARM_POOL.acquire()
            if pair is None:
                return None
            process, conn = pair
            try:
                with _T_PIPE_SEND:
                    conn.send(("configure", config))
            except OSError:
                WarmWorkerPool._discard(process, conn)
                continue
            get_registry().inc("campaign_warm_adoptions")
            TRACER.event("worker-adopted", worker=index, pid=process.pid)
            FLIGHT.record("worker-adopted", worker=index, pid=process.pid)
            return _Worker(
                index=index,
                process=process,
                conn=conn,
                last_seen=time.monotonic(),
            )

    def _chunk_target(self, pending: Deque[WorkItem]) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return chunk_target(len(pending), self.workers, self.max_chunk)

    def _dispatch(
        self,
        worker: _Worker,
        pending: Deque[WorkItem],
        rows: Dict[str, Dict[str, Any]],
        attempts: Dict[str, int],
    ) -> None:
        chunk: List[ChunkItem] = []
        target = self._chunk_target(pending)
        while pending and len(chunk) < target:
            digest, spec = pending.popleft()
            if digest in rows:
                continue  # answered while waiting (stale-done race)
            attempt = attempts.get(digest, 0) + 1
            attempts[digest] = attempt
            chunk.append((digest, spec, attempt))
        if not chunk:
            return
        now = time.monotonic()
        # The deadline budgets the whole chunk: the worker runs its
        # games back to back, so expiry must allow every timeout.
        budget: Optional[float] = 0.0
        for _, spec, _ in chunk:
            timeout = spec.policy.timeout
            if timeout is None:
                budget = None
                break
            budget += timeout
        deadline = (
            None
            if budget is None
            else now + budget * self.lease_grace + self.lease_slack
        )
        worker.lease = Lease(
            items=chunk,
            pid=worker.process.pid,
            started=now,
            deadline=deadline,
        )
        FLIGHT.record(
            "dispatch",
            worker=worker.index,
            digest=chunk[0][0],
            attempt=chunk[0][2],
            games=len(chunk),
        )
        try:
            with _T_PIPE_SEND:
                worker.conn.send(("chunk", chunk))
        except OSError:
            # Worker already dead: undo the dispatch (keeping the
            # attempt numbering aligned with actual plays) and let
            # the health sweep reap it.
            worker.lease = None
            worker.broken = True
            for digest, spec, attempt in reversed(chunk):
                attempts[digest] = attempt - 1
                pending.appendleft((digest, spec))

    def _drain_one(
        self, fleet: List[_Worker], outcome: PoolOutcome, registry
    ) -> None:
        by_conn = {
            worker.conn: worker
            for worker in fleet
            if worker.conn is not None and not worker.broken
        }
        if not by_conn:
            with _T_ACK_WAIT:
                time.sleep(self.heartbeat)
            return
        with _T_ACK_WAIT:
            ready = _connection_wait(list(by_conn), timeout=self.heartbeat)
        for conn in ready:
            worker = by_conn[conn]
            with _T_ACK_DRAIN:
                try:
                    message = conn.recv()
                except Exception:
                    # EOF (dead worker) or a torn/garbled ack: only this
                    # worker's channel is poisoned.  The sweep reaps it.
                    worker.broken = True
                    continue
                self._handle_message(worker, message, outcome, registry)

    def _handle_message(
        self, worker: _Worker, message, outcome: PoolOutcome, registry
    ) -> None:
        try:
            kind, digest, payload, metrics = message
        except (TypeError, ValueError):  # pragma: no cover - malformed
            worker.broken = True
            return
        worker.last_seen = time.monotonic()
        if kind == "exit":
            return
        if kind == "heartbeat":
            # Liveness plus blame: mark which game of the chunk is in
            # progress — the lease stays open until the chunk ack.
            registry.inc("campaign_worker_heartbeats")
            if worker.lease is not None:
                worker.lease.current = digest
            return
        if kind == "chunk-done":
            worker.lease = None
            for entry_digest, status, detail in payload:
                if status == "error":
                    outcome.errors.append(
                        _error_entry(
                            entry_digest, self._specs[entry_digest], detail
                        )
                    )
                    FLIGHT.record(
                        "game-error", worker=worker.index, digest=entry_digest
                    )
                    continue
                worker.games += 1
                if entry_digest not in outcome.rows:
                    outcome.rows[entry_digest] = detail
            if metrics:
                registry.merge(metrics)
            return
        worker.broken = True  # unknown message kind

    def _salvage(
        self, worker: _Worker, outcome: PoolOutcome, registry
    ) -> None:
        """Recover intact acks buffered in a dead worker's pipe.

        A worker may finish a chunk (fsync + ack) and then die before
        the drain reads the ack; the bytes survive in the kernel
        buffer, so read until EOF or the first tear rather than
        discarding them.
        """
        if worker.conn is None:
            return
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except Exception:
                return
            self._handle_message(worker, message, outcome, registry)

    def _sweep_health(
        self,
        ctx,
        fleet: List[_Worker],
        pending: Deque[WorkItem],
        outcome: PoolOutcome,
        attempts: Dict[str, int],
        losses: Dict[str, int],
        registry,
    ) -> bool:
        """Reap dead workers and expired leases; respawn replacements.

        Returns False when a replacement is needed but the restart
        budget is exhausted — the signal to degrade.
        """
        now = time.monotonic()
        for worker in list(fleet):
            # The respawn below runs outside the lease-sweep timing so
            # its cost lands in the pool-spawn phase, not twice.
            with _T_LEASE_SWEEP:
                dead = worker.broken or not worker.process.is_alive()
                expired = (
                    not dead
                    and worker.lease is not None
                    and worker.lease.deadline is not None
                    and now > worker.lease.deadline
                )
                if not dead and not expired:
                    continue
                if expired:
                    blamed_digest, _, blamed_attempt = worker.lease.blamed
                    outcome.lease_expirations += 1
                    registry.inc("campaign_lease_expirations")
                    TRACER.event(
                        "lease-expired",
                        worker=worker.index,
                        pid=worker.process.pid,
                        digest=blamed_digest,
                        attempt=blamed_attempt,
                        games=len(worker.lease.items),
                    )
                    dump_on_fault(
                        self.store.root,
                        "lease-expired",
                        worker=worker.index,
                        pid=worker.process.pid,
                        digest=blamed_digest,
                        attempt=blamed_attempt,
                    )
                worker.process.kill()
                worker.process.join()
                TRACER.event(
                    "worker-died",
                    worker=worker.index,
                    pid=worker.process.pid,
                    exitcode=worker.process.exitcode,
                    cause="lease-expired" if expired else "worker-death",
                )
                FLIGHT.record(
                    "worker-died",
                    worker=worker.index,
                    pid=worker.process.pid,
                    exitcode=worker.process.exitcode,
                    cause="lease-expired" if expired else "worker-death",
                )
                self._salvage(worker, outcome, registry)
                self._close_conn(worker.conn)
                fleet.remove(worker)
            # Loss accounting may fsync a quarantine row — that time
            # belongs to store-fsync, a sibling top-level phase, so it
            # must not run nested inside the lease-sweep timing.
            if worker.lease is not None:
                self._account_loss(
                    worker.lease, pending, outcome, losses, registry
                )
            with _T_LEASE_SWEEP:
                if outcome.restarts >= self.max_worker_restarts:
                    return False
                outcome.restarts += 1
                registry.inc("campaign_worker_restarts")
            fleet.append(self._spawn(ctx, worker.index))
        return True

    def _account_loss(
        self,
        lease: Lease,
        pending: Deque[WorkItem],
        outcome: PoolOutcome,
        losses: Dict[str, int],
        registry,
    ) -> None:
        """Requeue the lost chunk's unacknowledged games; blame one.

        The chunk ack is all-or-nothing, so acknowledged games are
        already in ``rows`` (salvage reads buffered acks first) and
        everything else requeues.  Only the *blamed* game — the one the
        worker heartbeated last, i.e. the one in progress when the
        worker was lost — accrues a poison loss; its chunk-mates were
        bystanders.  At ``poison_threshold`` losses the blamed game is
        quarantined (structured forfeit row) instead of requeued.
        """
        unacked = [item for item in lease.items if item[0] not in outcome.rows]
        if not unacked:
            return
        blamed_digest, blamed_spec, blamed_attempt = lease.blamed
        if blamed_digest in outcome.rows:
            # The heartbeated game was acked just before death; someone
            # must own the loss — charge the first unacked item.
            blamed_digest, blamed_spec, blamed_attempt = unacked[0]
        losses[blamed_digest] = losses.get(blamed_digest, 0) + 1
        if losses[blamed_digest] >= self.poison_threshold:
            # The store write self-times as store-fsync; the flight dump
            # and bookkeeping around it count as lease-sweep, kept in
            # separate blocks so the two top-level phases never nest.
            row = quarantine_row(
                blamed_digest, blamed_spec, losses[blamed_digest]
            )
            self.store.add(row)
            with _T_LEASE_SWEEP:
                outcome.rows[blamed_digest] = row
                outcome.quarantined.append(blamed_digest)
                registry.inc("campaign_games_quarantined")
                TRACER.event(
                    "game-quarantined",
                    digest=blamed_digest,
                    adversary=blamed_spec.adversary,
                    victim=blamed_spec.victim,
                    locality=blamed_spec.locality,
                    losses=losses[blamed_digest],
                )
                dump_on_fault(
                    self.store.root,
                    "game-quarantined",
                    digest=blamed_digest,
                    adversary=blamed_spec.adversary,
                    victim=blamed_spec.victim,
                    losses=losses[blamed_digest],
                )
            unacked = [
                item for item in unacked if item[0] != blamed_digest
            ]
        with _T_LEASE_SWEEP:
            for digest, spec, attempt in unacked:
                pending.append((digest, spec))
                outcome.requeues += 1
                registry.inc("campaign_games_requeued")
                TRACER.event(
                    "game-requeued",
                    digest=digest,
                    attempt=attempt,
                    losses=losses.get(digest, 0),
                )
                FLIGHT.record(
                    "game-requeued",
                    digest=digest,
                    attempt=attempt,
                    losses=losses.get(digest, 0),
                )

    # ------------------------------------------------------------------
    # Degradation and shutdown
    # ------------------------------------------------------------------
    def _degrade(
        self,
        outcome: PoolOutcome,
        pending: Deque[WorkItem],
        fleet: List[_Worker],
        registry,
    ) -> None:
        """Restart budget exhausted: stop the pool, hand work back."""
        outcome.degraded = True
        leftover: List[WorkItem] = []
        seen = set()
        for worker in fleet:
            worker.process.kill()
            worker.process.join()
            self._salvage(worker, outcome, registry)
            self._close_conn(worker.conn)
            if worker.lease is not None:
                for digest, spec, _ in worker.lease.items:
                    if digest not in outcome.rows and digest not in seen:
                        leftover.append((digest, spec))
                        seen.add(digest)
                worker.lease = None
        fleet.clear()
        for digest, spec in pending:
            if digest not in outcome.rows and digest not in seen:
                leftover.append((digest, spec))
                seen.add(digest)
        pending.clear()
        # The degraded serial path plays in *this* process: release the
        # shared segment now (nobody shares with a serial run).
        self._retire_segment()
        outcome.leftover = leftover
        registry.inc("campaign_pool_degradations")
        TRACER.event(
            "pool-degraded",
            remaining=len(leftover),
            restarts=outcome.restarts,
            budget=self.max_worker_restarts,
        )
        dump_on_fault(
            self.store.root,
            "pool-degraded",
            remaining=len(leftover),
            restarts=outcome.restarts,
            budget=self.max_worker_restarts,
        )

    def _shutdown(self, fleet: List[_Worker]) -> None:
        """Retire the surviving workers.

        Healthy, lease-free workers are *parked* in the warm pool
        (after a ``park`` message telling them to drop their segment
        attachment, so the retiring pool can unlink it) for the next
        campaign to adopt; everything else gets the sentinel/join/kill
        treatment.
        """
        cold: List[_Worker] = []
        for worker in fleet:
            healthy = (
                worker.process.is_alive()
                and not worker.broken
                and worker.lease is None
            )
            if healthy and warm_pool_enabled():
                try:
                    worker.conn.send(("park", None))
                except (OSError, ValueError):
                    cold.append(worker)
                    continue
                WARM_POOL.park(worker.process, worker.conn)
                continue
            cold.append(worker)
        for worker in cold:
            if worker.process.is_alive() and not worker.broken:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):  # pragma: no cover - closed
                    pass
        deadline = time.monotonic() + 5.0
        for worker in cold:
            remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(timeout=remaining)
            if worker.process.is_alive():  # pragma: no cover - straggler
                worker.process.kill()
                worker.process.join()
            self._close_conn(worker.conn)
        fleet.clear()

    @staticmethod
    def _close_conn(conn) -> None:
        try:
            conn.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
