"""Graph substrate: adjacency-list graphs, traversal, and isomorphism tools.

Every other subsystem in :mod:`repro` is built on this package.  The graph
class is deliberately minimal — an undirected simple graph with hashable
node labels — because the paper's constructions (grids, gadgets, duplicate
hierarchies) are all plain undirected graphs whose structure we generate
programmatically.
"""

from repro.graphs.csr import (
    CSRView,
    csr_view,
    get_graph_backend,
    set_graph_backend,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    BallCache,
    ball,
    bfs_distances,
    connected_components,
    diameter,
    is_connected,
    shortest_path,
)
from repro.graphs.isomorphism import find_isomorphism, is_isomorphic

__all__ = [
    "Graph",
    "BallCache",
    "CSRView",
    "csr_view",
    "ball",
    "bfs_distances",
    "connected_components",
    "diameter",
    "get_graph_backend",
    "is_connected",
    "set_graph_backend",
    "shortest_path",
    "find_isomorphism",
    "is_isomorphic",
]
