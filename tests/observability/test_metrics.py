"""Tests for the metrics registry: instruments, snapshot/merge algebra."""

import random

from repro.observability.metrics import (
    BoundCounter,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.inc("reveals_total")
    registry.inc("reveals_total", 4)
    registry.set("depth", 3.0)
    registry.set("depth", 2.0)  # last set wins locally
    registry.observe("seconds", 0.5)
    registry.observe("seconds", 1.5)

    assert registry.counter("reveals_total").value == 5
    assert registry.gauge("depth").value == 2.0
    hist = registry.histogram("seconds")
    assert hist.count == 2
    assert hist.total == 2.0
    assert (hist.minimum, hist.maximum) == (0.5, 1.5)
    assert hist.mean == 1.0


def test_instruments_are_stable_objects():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_snapshot_round_trip_merge():
    registry = MetricsRegistry()
    registry.inc("a", 3)
    registry.set("g", 7.0)
    registry.observe("h", 2.0)

    other = MetricsRegistry()
    other.merge(registry.snapshot())
    assert other.snapshot() == registry.snapshot()


def _random_registry(rng: random.Random) -> MetricsRegistry:
    # Observed values are small dyadic rationals so float addition is
    # exact and the associativity check compares snapshots bit-for-bit.
    registry = MetricsRegistry()
    for name in ("a", "b"):
        if rng.random() < 0.8:
            registry.inc(name, rng.randrange(10))
    if rng.random() < 0.8:
        registry.set("g", rng.randrange(-20, 20) / 4)
    for _ in range(rng.randrange(4)):
        registry.observe("h", rng.randrange(0, 12) / 4)
    return registry


def test_merge_is_commutative():
    rng = random.Random(7)
    for _ in range(20):
        one = _random_registry(rng).snapshot()
        two = _random_registry(rng).snapshot()

        forward = MetricsRegistry()
        forward.merge(one)
        forward.merge(two)
        backward = MetricsRegistry()
        backward.merge(two)
        backward.merge(one)
        assert forward.snapshot() == backward.snapshot()


def test_merge_is_associative():
    rng = random.Random(11)
    for _ in range(20):
        snaps = [_random_registry(rng).snapshot() for _ in range(3)]

        # (a + b) + c
        left_inner = MetricsRegistry()
        left_inner.merge(snaps[0])
        left_inner.merge(snaps[1])
        left = MetricsRegistry()
        left.merge(left_inner.snapshot())
        left.merge(snaps[2])

        # a + (b + c)
        right_inner = MetricsRegistry()
        right_inner.merge(snaps[1])
        right_inner.merge(snaps[2])
        right = MetricsRegistry()
        right.merge(snaps[0])
        right.merge(right_inner.snapshot())

        assert left.snapshot() == right.snapshot()


def test_merge_partition_matches_serial():
    """Any partition of the work merged in any order equals the serial
    totals — the property the parallel sweep relies on."""
    rng = random.Random(13)
    parts = [_random_registry(rng) for _ in range(5)]

    serial = MetricsRegistry()
    for part in parts:
        serial.merge(part.snapshot())

    shuffled = list(parts)
    rng.shuffle(shuffled)
    folded = MetricsRegistry()
    for part in shuffled:
        folded.merge(part.snapshot())
    assert folded.snapshot() == serial.snapshot()


def test_reset_zeroes_in_place():
    registry = MetricsRegistry()
    counter = registry.counter("a")
    registry.inc("a", 5)
    registry.set("g", 1.0)
    registry.observe("h", 2.0)
    registry.reset()
    assert counter.value == 0  # existing handles stay valid
    assert registry.gauge("g").value is None
    assert registry.histogram("h").count == 0
    assert registry.histogram("h").minimum is None


def test_scoped_registry_swaps_and_restores():
    ambient = get_registry()
    with scoped_registry() as scoped:
        assert get_registry() is scoped
        assert scoped is not ambient
        get_registry().inc("only_in_scope")
    assert get_registry() is ambient
    assert ambient.counter("only_in_scope").value == 0


def test_scoped_registry_restores_on_error():
    ambient = get_registry()
    try:
        with scoped_registry():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert get_registry() is ambient


def test_set_registry_returns_previous():
    ambient = get_registry()
    fresh = MetricsRegistry()
    assert set_registry(fresh) is ambient
    try:
        assert get_registry() is fresh
    finally:
        set_registry(ambient)


def test_null_registry_records_nothing():
    null = NullRegistry()
    null.inc("a")
    null.set("g", 1.0)
    null.observe("h", 2.0)
    # The instrument getters hand back sinks that also discard.
    null.counter("a").inc(7)
    null.gauge("g").set(3.0)
    null.histogram("h").observe(4.0)
    snapshot = null.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}


def test_bound_counter_follows_the_active_registry():
    """The cached hot-path handle re-binds on every registry swap, so
    scoped workers still see exactly their own deltas."""
    bound = BoundCounter("bound_test_total")
    with scoped_registry() as outer:
        bound.inc()
        with scoped_registry() as inner:
            bound.inc(2)
            assert inner.counter("bound_test_total").value == 2
        bound.inc()
        assert outer.counter("bound_test_total").value == 2
    assert get_registry().counter("bound_test_total").value == 0


def test_bound_counter_suppressed_under_null_registry():
    bound = BoundCounter("bound_null_total")
    with scoped_registry(NullRegistry()) as null:
        bound.inc(5)
        assert null.snapshot()["counters"] == {}
    with scoped_registry() as live:
        bound.inc()
        assert live.counter("bound_null_total").value == 1


def test_ball_cache_counts_in_active_registry():
    """Satellite: BallCache aggregates live in the registry, not class
    globals, and reset() zeroes them."""
    from repro.families.grids import SimpleGrid
    from repro.graphs.traversal import BallCache

    grid = SimpleGrid(4, 4)
    with scoped_registry():
        cache = BallCache(grid.graph)
        cache.ball((0, 0), 1)
        cache.ball((0, 0), 1)
        stats = BallCache.global_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        BallCache.reset()
        assert BallCache.global_stats() == {
            "hits": 0, "misses": 0, "hit_rate": 0.0,
            "evictions": 0, "scoped_flushes": 0, "full_flushes": 0,
            "bucket_reattaches": 0, "shm_hits": 0, "shm_puts": 0,
        }
        # The pre-registry alias still works.
        BallCache.reset_global_stats()
