"""Tests for the stable ``repro.api`` facade."""

import warnings

import pytest

import repro.api as api


def test_all_exports_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_run_game_by_names():
    row = api.run_game("theorem1-grid", "greedy", locality=1)
    assert row.won
    assert row.adversary == "theorem1-grid"
    assert row.victim == "greedy"


def test_run_game_fixed_victim_ignores_victim_arg():
    row = api.run_game("theorem5-reduction", "akbari", locality=1, k=3)
    assert row.victim == api.FIXED_VICTIM
    assert row.won


def test_run_game_unknown_names_raise_registry_error():
    with pytest.raises(api.RegistryError, match="unknown adversary"):
        api.run_game("nope", "greedy")
    with pytest.raises(api.RegistryError, match="unknown victim"):
        api.run_game("theorem1-grid", "nope")


def test_verify_coloring_is_assert_proper():
    from repro.verify.coloring import assert_proper

    assert api.verify_coloring is assert_proper


def test_deprecation_shims_warn_and_resolve():
    from repro.analysis.executor import ParallelSweep
    from repro.robustness.journal import SweepJournal

    expected = {
        "SweepJournal": SweepJournal,
        "ParallelSweep": ParallelSweep,
    }
    for name, target in expected.items():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolved = getattr(api, name)
        assert resolved is target
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert name in str(caught[0].message)


def test_shims_appear_in_dir():
    listing = dir(api)
    assert "SweepJournal" in listing
    assert "run_campaign" in listing


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        api.definitely_not_a_symbol


# ----------------------------------------------------------------------
# The typed request/response surface (API v1)
# ----------------------------------------------------------------------

#: One fast game: the smallest useful sweep.
def _tiny_spec():
    return api.CampaignSpec(
        name="tiny",
        adversaries=("theorem1-grid",),
        victims=("greedy",),
        localities=(1,),
        timeout=10.0,
    )


def test_submit_request_round_trips_and_ids_ignore_run_options():
    request = api.SubmitRequest(spec=_tiny_spec(), workers=4, max_games=2)
    clone = api.SubmitRequest.from_payload(request.to_payload())
    assert clone == request
    # The campaign id is the *work*, not the tuning: identical specs
    # coalesce regardless of worker counts or budgets.
    retuned = api.SubmitRequest(spec=_tiny_spec())
    assert retuned.campaign_id() == request.campaign_id()
    assert request.campaign_id() == api.spec_hash(_tiny_spec().to_payload())


def test_submit_request_rejects_unknown_fields_and_versions():
    payload = api.SubmitRequest(spec=_tiny_spec()).to_payload()
    with pytest.raises(api.CampaignError, match="unknown submit fields"):
        api.SubmitRequest.from_payload({**payload, "nope": 1})
    with pytest.raises(api.SpecVersionError, match="version 9"):
        api.SubmitRequest.from_payload({**payload, "version": 9})
    with pytest.raises(api.SpecVersionError):
        api.SubmitRequest(spec=_tiny_spec(), version=9)
    with pytest.raises(api.CampaignError, match="'spec'"):
        api.SubmitRequest.from_payload({"version": 1})
    with pytest.raises(api.CampaignError, match="'workers'"):
        api.SubmitRequest.from_payload({**payload, "workers": 0})


def test_run_campaign_typed_form(tmp_path):
    request = api.SubmitRequest(spec=_tiny_spec())
    outcome = api.run_campaign(request, tmp_path / "store")
    assert (outcome.total, outcome.played, outcome.deduped) == (1, 1, 0)
    again = api.run_campaign(request, tmp_path / "store")
    assert (again.played, again.deduped) == (0, 1)


def test_run_campaign_typed_form_requirements(tmp_path):
    request = api.SubmitRequest(spec=_tiny_spec())
    with pytest.raises(TypeError, match="store_dir"):
        api.run_campaign(request)
    with pytest.raises(TypeError, match="SubmitRequest"):
        # Run options live on the request; passing both is ambiguous.
        api.run_campaign(request, tmp_path / "store", workers=2)
    threshold = api.SubmitRequest(spec=api.ThresholdSearchSpec(
        adversaries=("theorem1-grid",), victims=("greedy",),
        low=0, high=1, timeout=10.0,
    ))
    with pytest.raises(api.CampaignError, match="run_threshold_search"):
        api.run_campaign(threshold, tmp_path / "store")
    with pytest.raises(api.CampaignError, match="run_campaign"):
        api.run_threshold_search(
            api.SubmitRequest(spec=_tiny_spec()), tmp_path / "store"
        )


def test_loose_kwargs_forms_warn_but_work(tmp_path):
    with pytest.warns(DeprecationWarning, match="SubmitRequest"):
        outcome = api.run_campaign(_tiny_spec(), tmp_path / "store")
    assert outcome.total == 1


def test_run_submission_dispatches_by_kind(tmp_path):
    results, outcome = api.run_submission(
        api.SubmitRequest(spec=_tiny_spec()), tmp_path / "store"
    )
    assert results is None and outcome.total == 1
    threshold = api.SubmitRequest(spec=api.ThresholdSearchSpec(
        adversaries=("theorem1-grid",), victims=("greedy",),
        low=0, high=1, timeout=10.0,
    ))
    results, outcome = api.run_submission(threshold, tmp_path / "store")
    assert results is not None and len(results) == 1


def test_run_tournament_typed_form(tmp_path):
    request = api.SubmitRequest(spec=_tiny_spec())
    rows = api.run_tournament(request, store_dir=tmp_path / "store")
    assert [type(row) for row in rows] == [api.TournamentRow]
    assert rows[0].adversary == "theorem1-grid" and rows[0].won
    # Store-less form plays into a throwaway store and just returns rows.
    rows_again = api.run_tournament(request)
    assert [(r.adversary, r.victim, r.won) for r in rows_again] \
        == [(r.adversary, r.victim, r.won) for r in rows]
    with pytest.raises(TypeError, match="SubmitRequest"):
        api.run_tournament("not-a-request")


def test_row_page_pagination_math():
    page = api.RowPage(campaign_id="c" * 64, offset=0, limit=2, total=3,
                       rows=({"spec_hash": "a"}, {"spec_hash": "b"}))
    assert page.next_offset == 2
    last = api.RowPage(campaign_id="c" * 64, offset=2, limit=2, total=3,
                       rows=({"spec_hash": "c"},))
    assert last.next_offset is None
    clone = api.RowPage.from_payload(page.to_payload())
    assert clone.next_offset == 2 and clone.total == 3


def test_error_body_round_trip():
    error = api.ErrorBody(code="bad-spec", message="nope",
                          detail={"field": "victims"})
    clone = api.ErrorBody.from_payload(error.to_payload())
    assert clone == error


def test_campaign_handle_ignores_unknown_payload_fields():
    handle = api.CampaignHandle(
        id="a" * 64, name="tiny", kind="sweep", state="done", done=1,
        total=1,
    )
    payload = handle.to_payload()
    payload["some_future_field"] = True
    clone = api.CampaignHandle.from_payload(payload)
    assert clone.id == handle.id and clone.state == "done"
