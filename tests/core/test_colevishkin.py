"""Tests for the Cole–Vishkin O(log* n) path/cycle 3-coloring."""

import random

import pytest

from repro.core.colevishkin import (
    log_star,
    round_bound,
    three_color_directed_path,
)


def assert_proper_path(colors, cyclic):
    for a, b in zip(colors, colors[1:]):
        assert a != b
    if cyclic and len(colors) >= 2:
        assert colors[0] != colors[-1]
    assert set(colors) <= {1, 2, 3}


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            log_star(0)


class TestPaths:
    def test_trivial_sizes(self):
        assert three_color_directed_path([]) == ([], 0)
        assert three_color_directed_path([42]) == ([1], 0)

    def test_two_nodes(self):
        colors, rounds = three_color_directed_path([7, 12])
        assert_proper_path(colors, cyclic=False)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_ids(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 300)
        ids = rng.sample(range(10 ** 6), n)
        colors, rounds = three_color_directed_path(ids)
        assert_proper_path(colors, cyclic=False)
        assert rounds <= round_bound(max(ids))

    def test_sequential_ids(self):
        colors, rounds = three_color_directed_path(list(range(1000)))
        assert_proper_path(colors, cyclic=False)

    def test_adversarial_alternating_ids(self):
        ids = [i * 2 if i % 2 == 0 else 10 ** 6 - i for i in range(200)]
        assert len(set(ids)) == 200
        colors, __ = three_color_directed_path(ids)
        assert_proper_path(colors, cyclic=False)

    def test_round_count_is_log_star_scale(self):
        """Doubling the id magnitude barely moves the round count."""
        small_ids = random.Random(0).sample(range(2 ** 10), 100)
        huge_ids = random.Random(0).sample(range(2 ** 62), 100)
        __, rounds_small = three_color_directed_path(small_ids)
        __, rounds_huge = three_color_directed_path(huge_ids)
        assert rounds_huge <= rounds_small + 3


class TestCycles:
    @pytest.mark.parametrize("n", (3, 4, 5, 50, 51))
    def test_cycles_of_both_parities(self, n):
        ids = random.Random(n).sample(range(10 ** 5), n)
        colors, rounds = three_color_directed_path(ids, cyclic=True)
        assert_proper_path(colors, cyclic=True)
        assert rounds <= round_bound(max(ids))

    def test_short_cycle_rejected(self):
        with pytest.raises(ValueError):
            three_color_directed_path([1, 2], cyclic=True)


class TestValidation:
    def test_duplicate_ids(self):
        with pytest.raises(ValueError, match="unique"):
            three_color_directed_path([1, 2, 1])

    def test_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            three_color_directed_path([1, -2, 3])
