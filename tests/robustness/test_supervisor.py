"""The supervised execution boundary: budgets, timeouts, forfeits."""

import time

import pytest

from repro.adversaries.result import AdversaryError, AdversaryResult
from repro.core.baselines import GreedyOnlineColorer
from repro.families.grids import SimpleGrid
from repro.models.online_local import OnlineLocalSimulator
from repro.robustness.errors import (
    GameTimeout,
    StepBudgetExceeded,
    VictimCrash,
)
from repro.robustness.faults import (
    CrashingAlgorithm,
    InfiniteLoopAlgorithm,
    NoneReturningAlgorithm,
)
from repro.robustness.supervisor import (
    GamePolicy,
    SupervisedAlgorithm,
    SupervisedGame,
    call_with_timeout,
)


def run_grid_game(victim):
    """A minimal 'adversary': run the victim over a small grid."""
    grid = SimpleGrid(4, 4)
    sim = OnlineLocalSimulator(grid.graph, victim, locality=1, num_colors=4)
    sim.run(sorted(grid.graph.nodes()))
    return AdversaryResult(won=False, reason="survived")


def test_honest_victim_passes_through():
    result = SupervisedGame(run_grid_game, GamePolicy(timeout=10.0)).run(
        GreedyOnlineColorer()
    )
    assert not result.forfeit
    assert result.reason == "survived"
    assert result.stats["steps_taken"] == 16


def test_crash_becomes_forfeit():
    result = SupervisedGame(run_grid_game, GamePolicy()).run(
        CrashingAlgorithm(trigger_step=3)
    )
    assert result.won and result.forfeit
    assert result.reason == "forfeit:victim-crash"
    assert result.stats["error_type"] == "VictimCrash"
    assert "injected crash at step 3" in result.stats["error"]
    # The structured cause carries the reveal index the game reached.
    assert result.stats["failed_at_step"] == 3


def test_step_budget_forfeit_records_failure_position():
    result = SupervisedGame(run_grid_game, GamePolicy(step_budget=5)).run(
        GreedyOnlineColorer()
    )
    assert result.stats["failed_at_step"] == 6  # the budget-busting step


def test_forfeit_metrics_and_wall_seconds_recorded():
    from repro.observability.metrics import scoped_registry

    with scoped_registry() as registry:
        SupervisedGame(run_grid_game, GamePolicy()).run(
            CrashingAlgorithm(trigger_step=3)
        )
        SupervisedGame(run_grid_game, GamePolicy(timeout=10.0)).run(
            GreedyOnlineColorer()
        )
        assert registry.counter("supervisor_forfeits").value == 1
        assert registry.histogram("game_wall_seconds").count == 2


def test_game_span_carries_labels_and_outcome(tmp_path):
    from repro.observability.trace import read_trace, tracing

    path = tmp_path / "t.jsonl"
    with tracing(path):
        SupervisedGame(
            run_grid_game,
            GamePolicy(),
            labels={"adversary": "mini-grid"},
        ).run(CrashingAlgorithm(trigger_step=3))
    records = read_trace(path)
    start = next(r for r in records if r["type"] == "span-start")
    end = next(r for r in records if r["type"] == "span-end")
    assert start["adversary"] == "mini-grid"
    assert start["victim"].startswith("crash-on-step")
    assert end["reason"] == "forfeit:victim-crash"
    assert end["forfeit"] is True
    assert end["steps"] == 3


def test_none_return_becomes_model_violation_forfeit():
    result = SupervisedGame(run_grid_game, GamePolicy()).run(
        NoneReturningAlgorithm(trigger_step=2)
    )
    assert result.won and result.forfeit
    assert result.reason == "forfeit:model-violation"


def test_step_budget_forfeit():
    result = SupervisedGame(run_grid_game, GamePolicy(step_budget=5)).run(
        GreedyOnlineColorer()
    )
    assert result.won and result.forfeit
    assert result.reason == "forfeit:step-budget"


def test_wall_clock_timeout_interrupts_infinite_loop():
    started = time.monotonic()
    result = SupervisedGame(run_grid_game, GamePolicy(timeout=0.5)).run(
        InfiniteLoopAlgorithm(trigger_step=2, max_spin_seconds=20.0)
    )
    elapsed = time.monotonic() - started
    assert result.won and result.forfeit
    assert result.reason == "forfeit:timeout"
    assert elapsed < 5.0, "preemptive alarm did not fire"


def test_supervised_algorithm_classifies_crash():
    victim = SupervisedAlgorithm(CrashingAlgorithm(trigger_step=1))
    victim.reset(n=4, locality=1, num_colors=3)
    with pytest.raises(VictimCrash):
        victim.step(None, 0)


def test_supervised_algorithm_step_budget():
    victim = SupervisedAlgorithm(
        GreedyOnlineColorer(), GamePolicy(step_budget=0)
    )
    victim.reset(n=4, locality=1, num_colors=3)
    with pytest.raises(StepBudgetExceeded):
        victim.step(None, 0)


def test_adversary_error_is_not_swallowed():
    def buggy_adversary(_victim):
        raise AdversaryError("certificate holds but no improper edge")

    with pytest.raises(AdversaryError):
        SupervisedGame(buggy_adversary, GamePolicy()).run(GreedyOnlineColorer())


def test_call_with_timeout_passthrough_and_interrupt():
    assert call_with_timeout(lambda: 42, timeout=None) == 42
    assert call_with_timeout(lambda: 42, timeout=5.0) == 42

    def spin():
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            pass

    with pytest.raises(GameTimeout):
        call_with_timeout(spin, timeout=0.3)


def test_alarm_guard_inner_fires_under_an_outer_timer():
    from repro.robustness.supervisor import alarm_guard

    started = time.monotonic()
    with alarm_guard(10.0):
        with pytest.raises(GameTimeout):
            with alarm_guard(0.2):
                time.sleep(5.0)
    assert time.monotonic() - started < 2.0


def test_alarm_guard_restores_outer_timer_with_remaining_time():
    from repro.robustness.supervisor import alarm_guard

    started = time.monotonic()
    with pytest.raises(GameTimeout):
        with alarm_guard(0.4):
            with alarm_guard(5.0):
                time.sleep(0.05)  # inner exits cleanly, well under both
            # Before the fix the inner guard's exit zeroed ITIMER_REAL,
            # silently cancelling the outer 0.4s deadline — this sleep
            # would then run its full 5 seconds.
            time.sleep(5.0)
    assert time.monotonic() - started < 2.0


def test_alarm_guard_outer_deadline_elapsed_inside_inner_still_fires():
    from repro.robustness.supervisor import alarm_guard

    started = time.monotonic()
    with pytest.raises(GameTimeout):
        with alarm_guard(0.2):
            with alarm_guard(5.0):
                time.sleep(0.35)  # outer deadline passes in here
            time.sleep(5.0)  # re-armed to fire (near) immediately
    assert time.monotonic() - started < 2.0
