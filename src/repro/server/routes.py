"""Minimal HTTP/1.1 layer over asyncio streams.

The server speaks exactly as much HTTP as the API needs — JSON bodies,
path templates, one request per connection (``Connection: close``) —
implemented on :class:`asyncio.StreamReader`/``StreamWriter`` so the
whole serving tier stays inside the standard library.  Anything that
goes wrong at this layer raises :class:`HttpError`, which carries a
status code plus the same structured :class:`~repro.api.ErrorBody`
the handlers use, so every failure a client sees is machine-readable.

Limits are deliberate and small: request heads are capped at
:data:`MAX_HEADER_BYTES` and bodies at :data:`MAX_BODY_BYTES` — a
campaign spec is a few hundred bytes, so anything near the cap is a
mistake (or not a friend).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.api import ErrorBody

#: Cap on the request line + headers, together.
MAX_HEADER_BYTES = 32 * 1024

#: Cap on request bodies (a campaign spec is ~1 KiB; 1 MiB is generous).
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the statuses the server actually emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An HTTP failure with a structured body.

    ``code`` is the machine-readable :class:`~repro.api.ErrorBody`
    code (``bad-request``, ``not-found``, ``rate-limited``, ...); the
    CLI and tests match on it, never on the message text.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})
        self.body = ErrorBody(code=code, message=message,
                              detail=dict(detail or {}))

    def to_response(self) -> "Response":
        return json_response(
            self.status, self.body.to_payload(), headers=self.headers
        )


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    peer: str = ""

    def json(self) -> Any:
        """The body as JSON; raises a 400 :class:`HttpError` otherwise."""
        if not self.body:
            raise HttpError(400, "bad-request", "request body is empty")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400, "bad-request", f"request body is not valid JSON: {exc}"
            ) from exc

    def client_key(self) -> str:
        """The rate-limit identity: an explicit ``X-Client-Id`` header
        when the client sends one, else the peer address."""
        return self.headers.get("x-client-id") or self.peer or "?"


@dataclass
class Response:
    """One buffered HTTP response (SSE streams bypass this and write
    their head + events straight to the transport)."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = {
            "Content-Type": self.content_type,
            "Content-Length": str(len(self.body)),
            "Connection": "close",
        }
        headers.update(self.headers)
        lines.extend(f"{key}: {value}" for key, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


def json_response(
    status: int,
    payload: Any,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    body = (json.dumps(payload, sort_keys=True, default=str) + "\n").encode(
        "utf-8"
    )
    return Response(status=status, body=body, headers=dict(headers or {}))


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF (the
    client connected and went away without sending anything)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "bad-request", "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(
            400, "bad-request",
            f"request head exceeds {MAX_HEADER_BYTES} bytes",
        ) from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(
            400, "bad-request",
            f"request head exceeds {MAX_HEADER_BYTES} bytes",
        )
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(400, "bad-request", "non-ASCII request head") from exc
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(
            400, "bad-request", f"malformed request line {request_line!r}"
        )
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))

    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad-request", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(
            400, "bad-request", "chunked request bodies are not supported"
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(
                400, "bad-request", "malformed Content-Length"
            ) from exc
        if length < 0:
            raise HttpError(400, "bad-request", "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, "payload-too-large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(
                400, "bad-request", "request body shorter than declared"
            ) from exc
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body)


#: Handlers receive the request, the captured path parameters, and the
#: stream writer (so SSE can stream); returning a Response sends it,
#: returning None means the handler wrote the stream itself.
Handler = Callable[
    [Request, Dict[str, str], asyncio.StreamWriter],
    Awaitable[Optional[Response]],
]


class Router:
    """Path-template dispatch: ``/v1/campaigns/{id}/rows`` captures
    ``{id}`` into the params dict.  Unknown paths 404; known paths with
    the wrong method 405 (with ``Allow``)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(
            (method.upper(), tuple(pattern.strip("/").split("/")), handler)
        )

    @staticmethod
    def _match(
        template: Tuple[str, ...], segments: Tuple[str, ...]
    ) -> Optional[Dict[str, str]]:
        if len(template) != len(segments):
            return None
        params: Dict[str, str] = {}
        for part, segment in zip(template, segments):
            if part.startswith("{") and part.endswith("}"):
                if not segment:
                    return None
                params[part[1:-1]] = segment
            elif part != segment:
                return None
        return params

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Handler, Dict[str, str]]:
        segments = tuple(path.strip("/").split("/"))
        allowed: List[str] = []
        for route_method, template, handler in self._routes:
            params = self._match(template, segments)
            if params is None:
                continue
            if route_method == method.upper():
                return handler, params
            allowed.append(route_method)
        if allowed:
            raise HttpError(
                405, "method-not-allowed",
                f"{method} not allowed on {path}",
                headers={"Allow": ", ".join(sorted(set(allowed)))},
            )
        raise HttpError(404, "not-found", f"no route for {path}")
