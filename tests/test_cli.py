"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_adversary_theorem1(capsys):
    code = main(["adversary", "theorem1", "--victim", "greedy", "--locality", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DEFEATED" in out
    assert "witness edge" in out


def test_adversary_theorem2(capsys):
    code = main(
        ["adversary", "theorem2", "--victim", "akbari", "--locality", "1",
         "--topology", "cylinder"]
    )
    assert code == 0
    assert "DEFEATED" in capsys.readouterr().out


def test_adversary_theorem3(capsys):
    code = main(["adversary", "theorem3", "--victim", "greedy", "--k", "3"])
    assert code == 0
    assert "DEFEATED" in capsys.readouterr().out


def test_adversary_theorem5(capsys):
    code = main(["adversary", "theorem5", "--k", "3", "--locality", "1"])
    assert code == 0
    assert "DEFEATED" in capsys.readouterr().out


def test_upper_bound_akbari(capsys):
    code = main(["upper-bound", "akbari", "--side", "10"])
    assert code == 0
    assert "proper 3-coloring" in capsys.readouterr().out


def test_upper_bound_unify(capsys):
    code = main(["upper-bound", "unify-triangular", "--side", "8"])
    assert code == 0
    assert "proper 4-coloring" in capsys.readouterr().out


def test_unknown_victim_rejected(capsys):
    """Bad invocations exit 2 with a normalized error line, not a raw
    SystemExit message."""
    code = main(["adversary", "theorem1", "--victim", "quantum"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "quantum" in err


def test_adversary_trace_and_stats(capsys, tmp_path):
    trace = tmp_path / "t.jsonl"
    code = main(
        ["adversary", "theorem1", "--victim", "greedy", "--locality", "1",
         "--trace", str(trace), "--metrics"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "reveals_total" in out  # --metrics table
    assert trace.exists()

    code = main(["stats", str(trace)])
    assert code == 0
    out = capsys.readouterr().out
    assert "reveals total:" in out
    assert "games by adversary:" in out
    assert "theorem1" in out
    assert "ball cache hit rate:" in out


def test_stats_missing_file_rejected(capsys, tmp_path):
    code = main(["stats", str(tmp_path / "absent.jsonl")])
    assert code == 2
    assert capsys.readouterr().err.startswith("repro: error:")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_tournament_subcommand(capsys):
    code = main(["tournament", "--locality", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "clean sweep over honest victims: True" in out
    assert "(fixed)" in out  # theorem5 plays once, not per victim


def test_fast_examples_run(capsys):
    """Smoke: the fast example scripts execute end to end."""
    import runpy
    import sys

    for script in ("examples/bvalue_tour.py", "examples/quickstart.py"):
        saved_argv = sys.argv
        sys.argv = [script]
        try:
            runpy.run_path(script, run_name="__main__")
        finally:
            sys.argv = saved_argv
    out = capsys.readouterr().out
    assert "Lemma 3.3" in out
    assert "Proper 3-coloring" in out


def test_top_level_api_exports():
    """The package-level convenience API resolves and works."""
    import repro

    grid = repro.SimpleGrid(6, 6)
    sim = repro.OnlineLocalSimulator(
        grid.graph, repro.AkbariBipartiteColoring(), locality=12, num_colors=3
    )
    coloring = sim.run(sorted(grid.graph.nodes()))
    repro.assert_proper(grid.graph, coloring, max_colors=3)
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_tournament_resume_without_journal_rejected(capsys):
    """--resume with no --journal must fail loudly, not be ignored."""
    code = main(["tournament", "--resume"])
    assert code == 2
    err = capsys.readouterr().err
    assert "--resume" in err
    assert "--journal" in err


def test_tournament_parallel_matches_serial_output(capsys, tmp_path):
    code = main(["tournament", "--locality", "1"])
    assert code == 0
    serial_out = capsys.readouterr().out
    code = main(["tournament", "--locality", "1", "--workers", "2"])
    assert code == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_tournament_workers_rejects_non_positive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["tournament", "--workers", "0"])
