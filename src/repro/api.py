"""The stable public API facade.

``repro.api`` is the one import that examples, benchmarks, and
third-party code should need: it re-exports the supported entry points
under their canonical names and keeps them stable across internal
refactors (the implementation modules move; this surface does not).

Entry points
------------
:func:`run_game`
    Play one adversary-vs-victim game by registry name.
:func:`run_tournament`
    The pre-baked full-portfolio sweep (see
    :mod:`repro.analysis.tournament`).
:func:`run_campaign` / :func:`run_threshold_search`
    Declarative campaigns over the sharded work-queue scheduler with a
    content-addressed result store (see :mod:`repro.analysis.campaign`).
:func:`verify_coloring` / :func:`is_proper`
    Machine-check a coloring against a graph.
Registries
    ``register_adversary`` / ``register_victim`` / ``register_family``
    and their ``get_*`` / ``list_*`` companions extend every surface at
    once (tournament, campaigns, CLI).

Spec dataclasses (:class:`GameSpec`, :class:`GamePolicy`,
:class:`CampaignSpec`, :class:`ThresholdSearchSpec`,
:class:`TournamentRow`, :class:`CampaignOutcome`,
:class:`ThresholdResult`) and the store (:class:`ResultStore`,
:func:`spec_hash`) ride along for typed callers.

Symbols that predate the facade and moved during the PR 5 redesign are
served through deprecation shims: importing them from here works but
emits a :class:`DeprecationWarning` naming the canonical location.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

from repro.analysis.campaign import (
    AdversaryRef,
    CampaignError,
    CampaignOutcome,
    CampaignSpec,
    CampaignStatus,
    ThresholdResult,
    ThresholdSearchSpec,
    campaign_from_dict,
    campaign_status,
    load_campaign,
    run_campaign,
    run_threshold_search,
    threshold_table,
)
from repro.analysis.executor import GameSpec, play_spec
from repro.analysis.store import ResultStore, spec_hash
from repro.analysis.worker_pool import (
    shutdown_warm_pool,
    warm_pool_enabled,
    warm_pool_size,
)
from repro.analysis.tournament import (
    TournamentRow,
    clean_sweep,
    honest_rows,
    run_tournament,
)
from repro.registry import (
    FIXED_VICTIM,
    FixedVictimGame,
    Registry,
    RegistryError,
    get_adversary,
    get_family,
    get_victim,
    list_adversaries,
    list_families,
    list_victims,
    register_adversary,
    register_family,
    register_victim,
)
from repro.robustness.supervisor import GamePolicy
from repro.verify.coloring import assert_proper, is_proper

__all__ = [
    # play
    "run_game",
    "run_tournament",
    "run_campaign",
    "run_threshold_search",
    "clean_sweep",
    "honest_rows",
    # verify
    "verify_coloring",
    "is_proper",
    # specs and results
    "GamePolicy",
    "GameSpec",
    "TournamentRow",
    "AdversaryRef",
    "CampaignSpec",
    "ThresholdSearchSpec",
    "CampaignOutcome",
    "CampaignStatus",
    "ThresholdResult",
    "campaign_from_dict",
    "campaign_status",
    "load_campaign",
    "threshold_table",
    # store
    "ResultStore",
    "spec_hash",
    # warm worker pool (campaign workers kept alive between runs; see
    # repro.analysis.worker_pool)
    "warm_pool_enabled",
    "warm_pool_size",
    "shutdown_warm_pool",
    # registries
    "Registry",
    "RegistryError",
    "register_adversary",
    "register_victim",
    "register_family",
    "get_adversary",
    "get_victim",
    "get_family",
    "list_adversaries",
    "list_victims",
    "list_families",
    "FIXED_VICTIM",
    "FixedVictimGame",
    "CampaignError",
]

#: Canonical verifier under the facade's name: raises
#: :class:`~repro.robustness.errors.ProtocolViolation` subclasses on an
#: improper or over-budget coloring, returns None on success.
verify_coloring = assert_proper


def run_game(
    adversary: str,
    victim: str = "greedy",
    locality: int = 1,
    *,
    policy: Optional[GamePolicy] = None,
    **params: Any,
) -> TournamentRow:
    """Play one supervised game by registry names; returns its row.

    ``params`` are forwarded to the adversary factory (``k``, ``side``,
    ``topology``, ...).  Fixed-victim adversaries (the Theorem 5
    reduction) ignore ``victim`` and play under the
    :data:`FIXED_VICTIM` column.

    >>> row = run_game("theorem1-grid", "greedy", locality=1)
    >>> row.won
    True
    """
    entry = get_adversary(adversary)(locality, **params)
    if isinstance(entry, FixedVictimGame):
        victim = FIXED_VICTIM
    else:
        get_victim(victim)  # fail fast with the registry's error message
    spec = GameSpec(
        adversary=adversary,
        victim=victim,
        locality=locality,
        policy=policy if policy is not None else GamePolicy(timeout=30.0),
        params=tuple(sorted(params.items())),
    )
    return play_spec(spec).row


#: Moved symbols served with a deprecation warning: importing them from
#: ``repro.api`` works, but the canonical home is what the warning names.
_MOVED = {
    "default_victims": (
        "repro.analysis.tournament", "default_victims",
        "resolve portfolios through repro.registry instead",
    ),
    "default_adversaries": (
        "repro.analysis.tournament", "default_adversaries",
        "resolve portfolios through repro.registry instead",
    ),
    "SweepJournal": (
        "repro.robustness.journal", "SweepJournal",
        "import it from repro.robustness.journal",
    ),
    "ParallelSweep": (
        "repro.analysis.executor", "ParallelSweep",
        "import it from repro.analysis.executor",
    ),
    "faulty_victims": (
        "repro.robustness.faults", "faulty_victims",
        "faulty victims are registered in repro.registry",
    ),
}


def __getattr__(name: str):
    if name in _MOVED:
        module_name, attr, hint = _MOVED[name]
        warnings.warn(
            f"repro.api.{name} is deprecated; {hint} "
            f"(canonical location: {module_name}.{attr})",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_MOVED) | set(globals()))
