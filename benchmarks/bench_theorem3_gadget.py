"""Experiment T3 (Theorem 3): Ω(n) for (2k-2)-coloring k-partite graphs.

The adversary needs chain length ≥ 2T+3, i.e. n = k²(2T+3) nodes, and
defeats any algorithm at that size — the defeated locality grows
*linearly* in n, which the fit asserts.
"""

import pytest

from repro.adversaries.gadget import GadgetAdversary
from repro.analysis.fitting import fit_growth
from repro.analysis.tables import render_table
from repro.core.baselines import GreedyOnlineColorer

LOCALITIES = (1, 2, 4, 6)


def run_sweep(k):
    rows = []
    for T in LOCALITIES:
        adversary = GadgetAdversary(k=k, locality=T)
        result = adversary.run(GreedyOnlineColorer())
        assert result.won, f"greedy survived gadgets k={k} T={T}"
        n = k * k * adversary.length
        rows.append(
            [
                T,
                adversary.length,
                n,
                2 * k - 2,
                result.reason,
                result.stats.get("tail_committed", "-"),
            ]
        )
    return rows


@pytest.mark.parametrize("k", (3, 4))
def test_theorem3_linear_scale(k):
    rows = run_sweep(k)
    print()
    print(f"Theorem 3 (k={k}): defeated locality vs instance size")
    print(render_table(["T", "gadgets", "n", "colors", "outcome", "commit"], rows))
    ts = [float(row[0]) for row in rows]
    ns = [float(row[2]) for row in rows]
    fit = fit_growth(ts, ns, "linear")
    print(f"n vs T: slope {fit.slope:.1f} (theory: 2k^2 = {2 * k * k}), "
          f"R^2 {fit.r_squared:.3f}")
    assert fit.r_squared > 0.99
    assert abs(fit.slope - 2 * k * k) < 0.5


def test_theorem3_contrast_with_k2():
    """For k = 2 the same statement fails — Corollary 1.1 gives Θ(log n)
    for 3-coloring bipartite graphs — so the adversary refuses k = 2."""
    with pytest.raises(ValueError):
        GadgetAdversary(k=2, locality=1)


@pytest.mark.parametrize("k", (3, 4))
def test_bench_theorem3(benchmark, k):
    result = benchmark(
        lambda: GadgetAdversary(k=k, locality=2).run(GreedyOnlineColorer())
    )
    assert result.won
