"""Executable lower-bound adversaries for Theorems 1, 2, 3, and 5.

Each adversary drives a deterministic Online-LOCAL algorithm (any
:class:`~repro.models.base.OnlineAlgorithm`) through an adaptive
instance, branching only on the colors the algorithm returns, and
produces an :class:`~repro.adversaries.result.AdversaryResult` whose win
is machine-checked (an explicit monochromatic edge plus, where
applicable, a b-value certificate, and a full view-consistency audit).
"""

from repro.adversaries.result import AdversaryError, AdversaryResult
from repro.adversaries.path_builder import BuiltPath, PathBuilder
from repro.adversaries.grid import GridAdversary
from repro.adversaries.torus import TorusAdversary
from repro.adversaries.gadget import GadgetAdversary
from repro.adversaries.reduction import HierarchyReduction, reduce_to_grid

__all__ = [
    "AdversaryError",
    "AdversaryResult",
    "BuiltPath",
    "PathBuilder",
    "GridAdversary",
    "TorusAdversary",
    "GadgetAdversary",
    "HierarchyReduction",
    "reduce_to_grid",
]
