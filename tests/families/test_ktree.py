"""Tests for k-trees."""

import pytest

from repro.families.ktree import KTree, deterministic_ktree, random_ktree
from repro.graphs.traversal import is_connected
from repro.verify.coloring import is_proper


def test_initial_clique():
    tree = KTree(2)
    assert tree.num_nodes == 3
    assert tree.graph.num_edges == 3


def test_attach_grows_by_one():
    tree = KTree(2)
    new = tree.attach([0, 1])
    assert new == 3
    assert tree.graph.has_edge(3, 0)
    assert tree.graph.has_edge(3, 1)
    assert not tree.graph.has_edge(3, 2)


def test_attach_requires_clique():
    tree = KTree(2)
    tree.attach([0, 1])  # node 3
    # 2 and 3 are not adjacent: not a clique.
    with pytest.raises(ValueError):
        tree.attach([2, 3])


def test_attach_requires_k_nodes():
    tree = KTree(3)
    with pytest.raises(ValueError):
        tree.attach([0, 1])


def test_canonical_coloring_proper():
    tree = random_ktree(3, 40, seed=7)
    coloring = {u: tree.canonical_color(u) + 1 for u in tree.graph.nodes()}
    assert is_proper(tree.graph, coloring)
    assert max(coloring.values()) <= 4


def test_canonical_coloring_unique_within_cliques():
    tree = random_ktree(2, 30, seed=3)
    for clique in tree.cliques:
        colors = {tree.canonical_color(u) for u in clique}
        assert len(colors) == len(clique)


def test_deterministic_ktree_is_path_like():
    tree = deterministic_ktree(2, 20)
    assert tree.num_nodes == 20
    assert is_connected(tree.graph)
    # The newest node attaches to the two previous ones.
    assert tree.graph.has_edge(19, 18)
    assert tree.graph.has_edge(19, 17)


def test_random_ktree_reproducible():
    t1 = random_ktree(2, 25, seed=11)
    t2 = random_ktree(2, 25, seed=11)
    assert t1.graph == t2.graph


def test_clique_tree_is_connected_tree():
    tree = random_ktree(2, 20, seed=5)
    h = tree.clique_tree()
    assert is_connected(h)
    assert h.num_edges >= h.num_nodes - 1


def test_minimum_sizes():
    with pytest.raises(ValueError):
        deterministic_ktree(3, 3)
    with pytest.raises(ValueError):
        KTree(0)
