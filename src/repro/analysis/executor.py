"""Process-parallel tournament execution.

``run_tournament`` plays the adversary×victim rectangle sequentially;
this module fans the same games out over a ``multiprocessing`` worker
pool.  The unit of distribution is a :class:`GameSpec` — a *picklable
description* of one game (adversary name, victim name, locality,
policy), never a live adversary or algorithm object.  Each worker
resolves the names through the factory registries
(:mod:`repro.registry` — builtins plus anything third-party code
registered before the pool forked), plays the game inside the usual
:class:`~repro.robustness.supervisor.SupervisedGame` boundary, and ships
the finished :class:`~repro.analysis.tournament.TournamentRow` back.

Guarantees:

* **Deterministic row order** — specs are enumerated in the serial
  sweep's order and results are reassembled by index, so a parallel
  sweep returns byte-identical rows to the serial one.
* **Per-game policies in every worker** — the worker process runs the
  game under the spec's :class:`~repro.robustness.supervisor.GamePolicy`;
  pool workers execute on their process's main thread, so the preemptive
  ``SIGALRM`` watchdog works exactly as in serial runs.
* **Crash-safe journaling without lock contention** — each worker
  appends finished rows to its own journal shard
  (``<journal>.shard-<pid>``); the parent concatenates the shards into
  the main journal (:meth:`~repro.robustness.journal.SweepJournal.merge_shards`)
  when the pool drains, and again *before* computing the resume set, so
  rows that reached only a shard before a kill still count as done.
* **Metrics survive the process boundary** — each game plays under a
  fresh :func:`~repro.observability.metrics.scoped_registry`, and the
  worker ships the registry snapshot back alongside the row
  (:class:`WorkerResult`).  The parent folds every snapshot into its
  ambient registry; because
  :meth:`~repro.observability.metrics.MetricsRegistry.merge` is
  associative and commutative, the folded totals equal a serial run's.
  One caveat: the ball cache pools balls per *process* (see
  ``docs/performance.md``), so while the query total
  (``ball_cache_hits + ball_cache_misses``) and every simulation counter
  are partition-independent, the hit/miss *split* — and the
  eviction/flush counters that ride along the same snapshots — depend on
  which worker played which games.
  Traced sweeps (``GameSpec.trace_path``) likewise write per-worker
  trace shards that the caller merges when the pool drains.

Workers are forked where the platform allows it (Linux/macOS with the
``fork`` start method); ``spawn`` platforms work too since every spec
field and the worker function are importable top-level objects.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.observability.metrics import get_registry, scoped_registry
from repro.observability.trace import TRACER, JsonlTraceRecorder, shard_path
from repro.robustness.journal import SweepJournal
from repro.robustness.supervisor import GamePolicy, SupervisedGame

#: Environment knob for the default worker count (used by CI to push the
#: whole default-portfolio test traffic through the parallel path).
WORKERS_ENV_VAR = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int]) -> int:
    """The effective worker count: explicit argument, else the
    :data:`REPRO_WORKERS <WORKERS_ENV_VAR>` environment variable, else 1
    (serial)."""
    if workers is None:
        workers = int(os.environ.get(WORKERS_ENV_VAR, "1"))
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class GameSpec:
    """A picklable description of one tournament/campaign game.

    ``adversary`` and ``victim`` are registry names
    (:mod:`repro.registry`); ``victim`` is
    :data:`~repro.registry.FIXED_VICTIM` for fixed-victim entries (the
    Theorem 5 reduction chain), whose victim is built by the adversary
    itself.  ``params`` carries extra adversary-factory keyword
    arguments as a sorted, hashable ``((key, value), ...)`` tuple —
    campaign specs use it to sweep instance-size knobs (``k``, ``side``,
    ``length``) without registering a name per configuration.

    ``include_faulty`` is kept for spec compatibility; victims resolve
    through the registry (which always knows the fault-injection
    family), so the flag no longer gates the lookup.
    """

    adversary: str
    victim: str
    locality: int
    policy: GamePolicy
    include_faulty: bool = False
    journal_path: Optional[str] = None
    trace_path: Optional[str] = None
    params: tuple = ()


@dataclass
class WorkerResult:
    """What one game ships back across the process boundary: the row
    plus the game's metrics-registry snapshot (its exact metric delta,
    thanks to the per-game :func:`scoped_registry`)."""

    row: Any
    metrics: Dict[str, Any] = field(default_factory=dict)


def play_spec(spec: GameSpec) -> WorkerResult:
    """Play one game described by ``spec``; returns a :class:`WorkerResult`.

    Runs inside a worker process (also callable inline, which is how the
    serial path and the tests exercise it).  Adversary and victim are
    resolved by name through :mod:`repro.registry`, so anything
    registered — builtin or third-party — can cross the process
    boundary; only raw callables (custom ``victims=``/``adversaries=``
    dicts passed to ``run_tournament``) cannot, and stay on the serial
    path there.

    The game plays under a fresh scoped metrics registry whose snapshot
    is returned with the row.  When ``spec.trace_path`` is set (and no
    tracer is already active in this process), trace records go to this
    process's shard file for the caller to merge.
    """
    from repro.analysis.tournament import _row_from_result
    from repro.registry import (
        FIXED_VICTIM,
        FixedVictimGame,
        get_adversary,
        get_victim,
    )

    activated = False
    if spec.trace_path is not None and not TRACER.enabled:
        TRACER.activate(
            JsonlTraceRecorder(shard_path(spec.trace_path, os.getpid()))
        )
        activated = True
    try:
        with scoped_registry() as registry:
            entry = get_adversary(spec.adversary)(
                spec.locality, **dict(spec.params)
            )
            labels = {"adversary": spec.adversary}
            if isinstance(entry, FixedVictimGame):
                if spec.victim != FIXED_VICTIM:
                    raise ValueError(
                        f"{spec.adversary} is a fixed-victim game; spec named "
                        f"victim {spec.victim!r}"
                    )
                game = SupervisedGame(
                    lambda _victim, e=entry: e.play(), spec.policy, labels=labels
                )
                result = game.run(None)
            else:
                factory = get_victim(spec.victim)
                result = SupervisedGame(
                    entry, spec.policy, labels=labels
                ).run(factory())
            row = _row_from_result(
                spec.adversary, spec.victim, spec.locality, result
            )
            snapshot = registry.snapshot()
    finally:
        if activated:
            TRACER.deactivate()
    if spec.journal_path is not None:
        from repro.analysis.tournament import JOURNAL_KEY_FIELDS

        journal = SweepJournal(spec.journal_path, JOURNAL_KEY_FIELDS)
        journal.shard(os.getpid()).append(asdict(row))
    return WorkerResult(row=row, metrics=snapshot)


def _pool_context():
    """Prefer ``fork`` (no re-import, shards inherit sys.path); fall back
    to the platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ParallelSweep:
    """Fan a list of :class:`GameSpec` out over a worker pool.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` plays every spec inline (no pool),
        which keeps the serial path free of multiprocessing machinery.
    journal:
        The main :class:`SweepJournal`, if the sweep is journaled.
        Workers write shards next to it; :meth:`run` merges them when the
        pool completes.
    """

    def __init__(
        self, workers: int, journal: Optional[SweepJournal] = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.journal = journal

    def run(
        self,
        specs: Sequence[GameSpec],
        precomputed: Optional[Dict[int, object]] = None,
    ) -> List[object]:
        """Play every spec; returns rows in spec order.

        ``precomputed`` maps spec indices to already-known rows (resumed
        from a journal); those specs are not played.

        Each played game's metrics snapshot is folded into the caller's
        ambient registry, so after a parallel sweep
        ``get_registry().snapshot()`` reports the same totals a serial
        sweep would have accumulated — except the ball-cache hit/miss
        split and eviction/flush counters, which are per-process cache
        profile rather than simulation state (the query total still
        matches; see the module docstring).
        """
        precomputed = precomputed or {}
        rows: List[object] = [None] * len(specs)
        for index, row in precomputed.items():
            rows[index] = row
        pending = [
            (index, spec)
            for index, spec in enumerate(specs)
            if index not in precomputed
        ]
        if not pending:
            return rows
        ambient = get_registry()
        if self.workers == 1:
            for index, spec in pending:
                outcome = play_spec(spec)
                rows[index] = outcome.row
                ambient.merge(outcome.metrics)
                if self.journal is not None:
                    self.journal.merge_shards()
            return rows
        ctx = _pool_context()
        pool_size = min(self.workers, len(pending))
        # Batch specs per map task so the pool pays one IPC round-trip
        # per chunk, not per game (chunksize=1 was measured at 0.75x
        # "speedup"); ~4 chunks per worker keeps late stealing possible.
        chunksize = max(1, len(pending) // (pool_size * 4))
        with ctx.Pool(processes=pool_size) as pool:
            played = pool.map(
                play_spec, [spec for _, spec in pending], chunksize=chunksize
            )
        for (index, _), outcome in zip(pending, played):
            rows[index] = outcome.row
            ambient.merge(outcome.metrics)
        if self.journal is not None:
            self.journal.merge_shards()
        return rows
