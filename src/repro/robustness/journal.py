"""Crash-safe sweep journaling: JSON-lines checkpoints for long runs.

A :class:`SweepJournal` records one JSON object per completed game (or
benchmark row) and can be reloaded after a crash or kill to resume a
sweep from where it stopped.  Rows are keyed by caller-chosen tuples —
the tournament uses ``(adversary, victim, locality)``.

The format is deliberately append-only, one self-contained JSON object
per line, flushed per write: killing the process mid-sweep loses at most
the in-flight game.  A trailing partial line (the kill landed mid-write)
is detected and ignored on load.
"""

from __future__ import annotations

import glob as _glob
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

Key = Tuple[Any, ...]


class SweepJournal:
    """Append-only JSON-lines journal of completed sweep rows.

    Parameters
    ----------
    path:
        Journal file location.  Parent directories are created lazily on
        first append.
    key_fields:
        The row fields forming the resume key, in order.
    """

    def __init__(self, path, key_fields: Iterable[str]) -> None:
        self.path = os.fspath(path)
        self.key_fields = tuple(key_fields)
        if not self.key_fields:
            raise ValueError("key_fields must name at least one field")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> List[Dict[str, Any]]:
        """Every complete row on disk, in append order.

        Corrupt or partial trailing lines are skipped (they are the
        signature of a kill mid-write, which resume must survive).
        """
        if not os.path.exists(self.path):
            return []
        rows: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(row, dict):
                    rows.append(row)
        return rows

    def completed(self) -> Dict[Key, Dict[str, Any]]:
        """Rows keyed by their resume key (later entries win).

        Keys are normalized (:meth:`key_of`), so a key computed from a
        live in-memory row always matches the key of the same row after
        a JSON round-trip through the journal file.
        """
        return {self.key_of(row): row for row in self.load()}

    def key_of(self, row: Dict[str, Any]) -> Key:
        """The resume key of a row dict, with canonicalized value types.

        Journal rows pass through JSON (``json.dumps(..., default=str)``),
        which turns tuples into lists and non-JSON values into strings.
        Without normalization a live row keyed ``("adv", ("a", 1), 2)``
        never matches its reloaded twin ``("adv", ["a", 1], 2)`` and every
        resume replays the whole sweep.  Canonicalization mirrors exactly
        what the round-trip does — lists become tuples again, exotic
        values become their ``str`` — while **preserving** scalar types,
        so an integer locality ``1`` stays distinct from a string ``"1"``.
        """
        return tuple(self._canonical(row.get(field)) for field in self.key_fields)

    @classmethod
    def _canonical(cls, value: Any) -> Any:
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, (list, tuple)):
            return tuple(cls._canonical(item) for item in value)
        if isinstance(value, (int, float, str)):
            return value
        return str(value)  # what json.dumps(default=str) stores

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, row: Dict[str, Any]) -> None:
        """Record one completed row, flushed to disk immediately."""
        self.append_many([row])

    def append_many(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Record a batch of rows under one buffered write + one fsync.

        Same durability contract as :meth:`append` — once this returns,
        every row in the batch survives a kill — but the fsync cost is
        paid once per batch instead of once per row, which is what makes
        chunked campaign scheduling pay off (a worker fsyncing per game
        spends ~a quarter of its compute budget in the disk).  A kill
        mid-batch can tear only the final line, exactly like a kill
        mid-append; :meth:`load` skips the tear and the next write
        repairs it.
        """
        lines = "".join(
            json.dumps(row, sort_keys=True, default=str) + "\n" for row in rows
        )
        if not lines:
            return
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # A kill mid-write can leave a partial line with no newline; a
        # fresh row must not be glued onto it (both would be lost).
        repair = ""
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    repair = "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(repair + lines)
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Delete the journal file (start a sweep from scratch)."""
        if os.path.exists(self.path):
            os.remove(self.path)

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    # Worker shards
    # ------------------------------------------------------------------
    def shard(self, worker_id) -> "SweepJournal":
        """A sibling journal for one parallel worker.

        Parallel sweeps give each worker process its own append-only
        shard (``<path>.shard-<worker_id>``) so workers never contend on
        the main journal file; :meth:`merge_shards` folds the shards back
        in when the sweep completes (or on resume after a kill).
        """
        return SweepJournal(f"{self.path}.shard-{worker_id}", self.key_fields)

    def shard_paths(self) -> List[str]:
        """Every shard file currently on disk, in sorted order."""
        return sorted(_glob.glob(_glob.escape(self.path) + ".shard-*"))

    def merge_shards(self, shard_paths: Optional[Iterable[str]] = None) -> int:
        """Concatenate worker shards into the main journal; returns the
        number of rows merged.

        Rows whose resume key is already present in the main journal are
        skipped (a worker may have raced a row the parent also recorded).
        Merged shard files are deleted; a kill mid-merge is safe because
        a shard is only removed after every row it holds is in the main
        journal, and re-merging surviving shards just deduplicates.
        """
        paths = list(shard_paths) if shard_paths is not None else self.shard_paths()
        done = self.completed()
        merged = 0
        for path in paths:
            shard = SweepJournal(path, self.key_fields)
            for row in shard.load():
                key = self.key_of(row)
                if key in done:
                    continue
                self.append(row)
                done[key] = row
                merged += 1
            shard.clear()
        return merged
