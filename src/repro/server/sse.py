"""Server-Sent Events wire formatting (the ``/events`` stream).

SSE is the simplest standard streaming shape HTTP offers — plain text,
one ``event:``/``data:`` block per message, comment lines as
keepalives — and needs nothing beyond the stdlib on either end
(``curl -N`` on the client side).  This module only *formats*; the
subscription plumbing lives in :mod:`repro.server.app`.
"""

from __future__ import annotations

import json
from typing import Any, Optional


def response_head() -> bytes:
    """The HTTP head that opens an event stream (no Content-Length —
    the stream ends when the connection closes)."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-cache\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )


def format_event(
    event: str, data: Any, event_id: Optional[int] = None
) -> bytes:
    """One SSE message: ``data`` is JSON-encoded on a single line."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    lines.append("data: " + json.dumps(data, sort_keys=True, default=str))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_comment(text: str = "keepalive") -> bytes:
    """A comment line — ignored by clients, keeps idle streams alive
    through buffering proxies and read timeouts."""
    return f": {text}\n\n".encode("utf-8")
