"""Tests for experiment helpers and table rendering."""

import pytest

from repro.analysis.experiments import (
    ExperimentRecord,
    survival_battery,
    threshold_locality,
)
from repro.analysis.tables import render_table


class TestThreshold:
    def test_finds_exact_threshold(self):
        assert threshold_locality(lambda t: t >= 13, low=0, high=64) == 13

    def test_zero_threshold(self):
        assert threshold_locality(lambda t: True, low=0, high=8) == 0

    def test_none_when_even_high_fails(self):
        assert threshold_locality(lambda t: False, low=0, high=8) is None

    def test_boundary(self):
        assert threshold_locality(lambda t: t >= 8, low=0, high=8) == 8

    def test_call_count_is_logarithmic(self):
        calls = []

        def survives(t):
            calls.append(t)
            return t >= 37

        threshold_locality(survives, low=0, high=1024)
        assert len(calls) <= 13


class TestBattery:
    def test_all_pass(self):
        assert survival_battery(lambda T, s: True, locality=3, seeds=[1, 2, 3])

    def test_any_failure(self):
        assert not survival_battery(
            lambda T, s: s != 2, locality=3, seeds=[1, 2, 3]
        )


class TestRecord:
    def test_defaults(self):
        rec = ExperimentRecord(experiment="T1", n=100)
        assert rec.parameters == {}
        assert rec.measured == {}


class TestTables:
    def test_render_basic(self):
        table = render_table(["n", "T"], [[16, 4], [256, 8]])
        lines = table.splitlines()
        assert lines[0].startswith("n")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        table = render_table(["x"], [[3.14159]])
        assert "3.14" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_alignment(self):
        table = render_table(["name", "value"], [["long-name-here", 1]])
        lines = table.splitlines()
        # The rule row is padded to the widest cell of each column.
        assert lines[1] == "-" * len("long-name-here") + "  " + "-" * len("value")
