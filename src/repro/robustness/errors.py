"""The structured exception hierarchy for the whole reproduction.

Every failure the harness can classify derives from :class:`ReproError`,
so supervisors and sweeps can distinguish *our* structured failures from
genuinely unexpected bugs with a single ``except ReproError``.

Layout::

    ReproError
    ├── ProtocolViolation          (the algorithm broke the model contract)
    │   ├── InvalidColorError      (color outside 1..num_colors, or not an int)
    │   ├── LocalityViolation      (colored a node outside the seen region)
    │   ├── RecoloringError        (changed an already-committed color)
    │   ├── RevealOrderError       (σ is not a permutation: double reveal /
    │   │                           incomplete cover — also a ValueError)
    │   └── UnknownHostNodeError   (reveal of a non-host node — also a KeyError)
    ├── GameTimeout                (wall-clock budget exhausted)
    │   └── StepBudgetExceeded     (per-game step budget exhausted)
    └── VictimCrash                (the algorithm under test raised)

``RevealOrderError`` and ``UnknownHostNodeError`` additionally subclass
the builtin exceptions the pre-robustness simulators raised
(``ValueError`` / ``KeyError``) so callers written against the old
contract keep working.

``repro.models.base.AlgorithmError`` is an alias of
:class:`ProtocolViolation`: adversaries that catch ``AlgorithmError`` to
convert contract breaches into model-violation wins automatically catch
every specific violation below it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured failure raised by this package."""


class ProtocolViolation(ReproError):
    """The algorithm under test broke the Online-LOCAL model contract.

    Examples: coloring an unseen node (exceeding its locality), recoloring
    a node, using a color outside ``1..num_colors``, failing to color the
    revealed node, or returning something that is not a node→color mapping.
    """


class InvalidColorError(ProtocolViolation):
    """A committed color lies outside ``1..num_colors`` (or is not an int)."""


class LocalityViolation(ProtocolViolation):
    """The algorithm colored a node outside its seen region."""


class RecoloringError(ProtocolViolation):
    """The algorithm tried to change an already-committed color."""


class RevealOrderError(ProtocolViolation, ValueError):
    """The reveal sequence σ is not a permutation of the host nodes.

    Raised on double reveals and on ``run`` orders that do not cover the
    host.  Subclasses ``ValueError`` for backward compatibility with the
    pre-robustness simulator contract.
    """


class UnknownHostNodeError(ProtocolViolation, KeyError):
    """A reveal referenced a node that is not part of the host graph.

    Subclasses ``KeyError`` for backward compatibility.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return Exception.__str__(self)


class GameTimeout(ReproError):
    """A supervised game exhausted its wall-clock budget."""


class StepBudgetExceeded(GameTimeout):
    """A supervised game exhausted its per-game step budget."""


class VictimCrash(ReproError):
    """The algorithm under test raised an arbitrary exception.

    The original exception is preserved as ``__cause__``.
    """
