"""Tests for the Theorem 3 gadget-chain adversary."""

import pytest

from repro.adversaries.gadget import GadgetAdversary
from repro.core.baselines import GreedyOnlineColorer
from repro.models.base import AlgorithmView, OnlineAlgorithm


class RowCanonicalColorer(OnlineAlgorithm):
    """Colors each seen component by a locally consistent k-partition,
    making every gadget row-colorful in its own frame — the strongest
    natural strategy, still defeated by the transpose commitment."""

    name = "row-canonical"

    def step(self, view: AlgorithmView, target):
        # Greedy, but preferring to reuse few colors: this makes the end
        # gadgets k-colored and hence row- or column-colorful.
        used = {view.colors.get(v) for v in view.graph.neighbors(target)}
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {target: color}
        return {target: 1}


@pytest.mark.parametrize("k", (3, 4))
def test_defeats_greedy(k):
    result = GadgetAdversary(k=k, locality=1).run(GreedyOnlineColorer())
    assert result.won
    assert result.reason in ("monochromatic-edge", "model-violation")


def test_defeats_canonical_colorer():
    result = GadgetAdversary(k=3, locality=2).run(RowCanonicalColorer())
    assert result.won


def test_higher_locality_with_longer_chain():
    result = GadgetAdversary(k=3, locality=4).run(GreedyOnlineColorer())
    assert result.won
    assert result.stats["length"] == 2 * 4 + 3


def test_transpose_forced_when_classes_agree():
    result = GadgetAdversary(k=3, locality=1).run(RowCanonicalColorer())
    if result.stats.get("head_class") == result.stats.get("tail_class"):
        assert result.stats.get("tail_committed") == "transpose"


def test_classification_recorded():
    result = GadgetAdversary(k=3, locality=1).run(RowCanonicalColorer())
    assert result.stats.get("head_class") in ("row", "column", None)


def test_validation():
    with pytest.raises(ValueError, match="k >= 3"):
        GadgetAdversary(k=2, locality=1)
    with pytest.raises(ValueError, match="too small"):
        GadgetAdversary(k=3, locality=3, length=5)
    with pytest.raises(ValueError):
        GadgetAdversary(k=3, locality=-1)


def test_determinism():
    r1 = GadgetAdversary(k=3, locality=1).run(RowCanonicalColorer())
    r2 = GadgetAdversary(k=3, locality=1).run(RowCanonicalColorer())
    assert r1.stats == r2.stats


class TestCorollary13:
    """(k+1)-coloring k-partite graphs needs Ω(n) locality for k >= 3 —
    the same adversary with the smaller color budget."""

    @pytest.mark.parametrize("k", (3, 4))
    def test_k_plus_one_coloring_defeated(self, k):
        result = GadgetAdversary(k=k, locality=2, colors=k + 1).run(
            GreedyOnlineColorer()
        )
        assert result.won
        assert result.stats["colors"] == k + 1

    def test_every_budget_between_k_and_2k_minus_2(self):
        for c in (4, 5, 6):
            result = GadgetAdversary(k=4, locality=1, colors=c).run(
                GreedyOnlineColorer()
            )
            assert result.won, f"survived at c={c}"

    def test_color_budget_validation(self):
        with pytest.raises(ValueError, match="colors"):
            GadgetAdversary(k=3, locality=1, colors=5)  # > 2k-2
        with pytest.raises(ValueError, match="colors"):
            GadgetAdversary(k=3, locality=1, colors=2)  # < k
