"""Tests for the message-passing LOCAL formulation and its equivalence
with the view-based definition (the paper's Section 2.2 claim)."""

import random

import pytest

from repro.families.grids import SimpleGrid
from repro.graphs.graph import Graph
from repro.models.local import LocalSimulator, LocalAlgorithm, LocalView
from repro.models.message_passing import (
    ColeVishkinMessagePassing,
    FloodFill,
    SynchronousNetwork,
    cv_total_rounds,
    reduction_rounds,
)


class TestSynchronousNetwork:
    def test_zero_rounds_gives_initial_outputs(self):
        grid = SimpleGrid(3, 3)
        net = SynchronousNetwork(grid.graph)
        outputs = net.run(FloodFill(), rounds=0)
        for node, known in outputs.items():
            assert len(known) == 1  # only itself

    def test_negative_rounds_rejected(self):
        net = SynchronousNetwork(Graph(edges=[(0, 1)]))
        with pytest.raises(ValueError):
            net.run(FloodFill(), rounds=-1)

    def test_id_map_validation(self):
        with pytest.raises(ValueError):
            SynchronousNetwork(Graph(edges=[(0, 1)]), id_map={0: 1, 1: 1})


class TestFloodFillEquivalence:
    """After T rounds, flood-fill has learned exactly the T-ball — the
    equivalence of the two LOCAL definitions."""

    @pytest.mark.parametrize("rounds", (1, 2, 3))
    def test_ball_node_sets_match_view_based_local(self, rounds):
        grid = SimpleGrid(5, 6)
        net = SynchronousNetwork(grid.graph)
        outputs = net.run(FloodFill(), rounds=rounds)

        class BallCollector(LocalAlgorithm):
            name = "ball-collector"
            views = {}

            def color(self, view: LocalView):
                BallCollector.views[view.center] = set(view.graph.nodes())
                return 1

        BallCollector.views = {}
        LocalSimulator(grid.graph, BallCollector(), locality=rounds,
                       num_colors=1).run()
        id_map = net.id_map
        for node, known in outputs.items():
            assert set(known) == BallCollector.views[id_map[node]]

    def test_interior_adjacency_is_learned(self):
        grid = SimpleGrid(4, 4)
        net = SynchronousNetwork(grid.graph)
        outputs = net.run(FloodFill(), rounds=2)
        center = (1, 1)
        known = outputs[center]
        # Nodes at distance <= 1 have had a round to report their
        # adjacency lists; check one.
        nbr_id = net.id_map[(1, 2)]
        assert known[nbr_id] is not None
        assert net.id_map[(1, 1)] in known[nbr_id]


def make_cycle(n, seed):
    """An oriented cycle with random ids; returns (graph, successor map,
    ids in cycle order)."""
    rng = random.Random(seed)
    ids = rng.sample(range(10 ** 6), n)
    graph = Graph()
    for index in range(n):
        graph.add_edge(ids[index], ids[(index + 1) % n])
    successor = {ids[index]: ids[(index + 1) % n] for index in range(n)}
    return graph, successor, ids


class TestColeVishkinMessagePassing:
    @pytest.mark.parametrize("n", (3, 5, 8, 60))
    def test_three_colors_cycle(self, n):
        graph, successor, ids = make_cycle(n, seed=n)
        id_map = {node: node for node in graph.nodes()}
        net = SynchronousNetwork(graph, id_map=id_map)
        algorithm = ColeVishkinMessagePassing(successor, id_bound=10 ** 6)
        outputs = net.run(algorithm, rounds=cv_total_rounds(10 ** 6))
        assert set(outputs.values()) <= {1, 2, 3}
        for index in range(n):
            u, v = ids[index], ids[(index + 1) % n]
            assert outputs[u] != outputs[v]

    def test_round_count_is_log_star_scale(self):
        assert cv_total_rounds(10 ** 6) <= 12
        assert cv_total_rounds(2 ** 64) <= 13
        assert reduction_rounds(5) == 1
        assert reduction_rounds(6) == 2

    def test_degree_validation(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (0, 3)])
        net = SynchronousNetwork(graph, id_map={i: i for i in range(4)})
        algorithm = ColeVishkinMessagePassing({0: 1, 1: 2, 2: 0, 3: 0}, 10)
        with pytest.raises(ValueError, match="degree 2"):
            net.run(algorithm, rounds=1)
