"""Proper-coloring checks."""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph

Node = Hashable
Color = int


def find_monochromatic_edge(
    graph: Graph, coloring: Dict[Node, Color]
) -> Optional[Tuple[Node, Node]]:
    """An edge whose two (colored) endpoints share a color, or None.

    Edges with an uncolored endpoint are ignored, so the check applies to
    partial colorings as well.
    """
    for u, v in graph.edges():
        color_u = coloring.get(u)
        if color_u is not None and color_u == coloring.get(v):
            return (u, v)
    return None


def is_proper(
    graph: Graph, coloring: Dict[Node, Color], require_total: bool = True
) -> bool:
    """Whether ``coloring`` is a proper coloring of ``graph``.

    With ``require_total`` (the default) every node must be colored.
    """
    if require_total and any(node not in coloring for node in graph.nodes()):
        return False
    return find_monochromatic_edge(graph, coloring) is None


def assert_proper(
    graph: Graph, coloring: Dict[Node, Color], max_colors: Optional[int] = None
) -> None:
    """Raise AssertionError with a precise witness if the coloring fails."""
    for node in graph.nodes():
        if node not in coloring:
            raise AssertionError(f"node {node!r} is uncolored")
    edge = find_monochromatic_edge(graph, coloring)
    if edge is not None:
        u, v = edge
        raise AssertionError(
            f"monochromatic edge {u!r} ~ {v!r} (both color {coloring[u]})"
        )
    if max_colors is not None:
        used = count_colors(coloring)
        if any(color > max_colors or color < 1 for color in used):
            raise AssertionError(
                f"colors {sorted(used)} exceed the budget 1..{max_colors}"
            )


def count_colors(coloring: Dict[Node, Color]) -> Set[Color]:
    """The set of colors used."""
    return set(coloring.values())
