"""Retry-with-reseed for randomized oracle/order paths."""

import pytest

from repro.oracles.base import OracleError
from repro.robustness.errors import ReproError
from repro.robustness.retry import RetriesExhausted, retry_with_reseed


def test_first_attempt_success_uses_given_seed():
    seen = []
    assert retry_with_reseed(lambda seed: seen.append(seed) or seed, seed=7) == 7
    assert seen == [7]


def test_reseeds_on_structured_failure():
    seen = []

    def attempt(seed):
        seen.append(seed)
        if seed < 2:
            raise OracleError(f"seed {seed} strands the oracle")
        return seed

    observed = []
    result = retry_with_reseed(
        attempt, seed=0, attempts=5,
        on_retry=lambda seed, exc: observed.append((seed, type(exc).__name__)),
    )
    assert result == 2
    assert seen == [0, 1, 2]
    assert observed == [(0, "OracleError"), (1, "OracleError")]


def test_unstructured_failures_propagate_immediately():
    calls = []

    def attempt(seed):
        calls.append(seed)
        raise RuntimeError("genuine bug")

    with pytest.raises(RuntimeError):
        retry_with_reseed(attempt, seed=0, attempts=5)
    assert calls == [0]


def test_exhaustion_raises_structured_error_with_cause():
    def attempt(seed):
        raise OracleError(f"seed {seed} bad")

    with pytest.raises(RetriesExhausted) as info:
        retry_with_reseed(attempt, seed=3, attempts=2)
    assert isinstance(info.value.__cause__, OracleError)
    assert isinstance(info.value, ReproError)
    assert "seeds 3..4" in str(info.value)


def test_attempts_must_be_positive():
    with pytest.raises(ValueError):
        retry_with_reseed(lambda seed: seed, attempts=0)
