"""Per-client token-bucket rate limiting.

One bucket per client identity (``X-Client-Id`` header, else peer
address), refilled continuously at ``rate`` tokens per second up to
``burst``.  The bucket table is a bounded LRU so an open server cannot
be grown without limit by spraying fresh identities — evicting an idle
client merely hands it a full bucket on return, which errs on the
side of admitting traffic.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable


class TokenBucket:
    """The classic leaky counter: ``allow`` spends one token if the
    continuously-refilled balance covers it."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def allow(self, now: float) -> bool:
        elapsed = max(now - self.stamp, 0.0)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RateLimiter:
    """A bounded table of per-client :class:`TokenBucket`\\ s.

    ``rate <= 0`` disables limiting entirely (every ``allow`` is True)
    — the switch the test suite and trusted deployments use.
    """

    def __init__(
        self,
        rate: float = 20.0,
        burst: int = 40,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, key: str) -> bool:
        """Spend one token for ``key``; False means 429."""
        if not self.enabled:
            return True
        now = self._clock()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[key] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        self._buckets.move_to_end(key)
        return bucket.allow(now)

    def retry_after(self) -> float:
        """A client-friendly wait hint: the time one token takes."""
        return 1.0 / self.rate if self.enabled else 0.0
