"""Acceptance: every faulty victim loses — by forfeit, never by crash —
against every adversary, while the honest sweep stays clean."""

from repro.analysis.tournament import (
    FIXED_VICTIM,
    clean_sweep,
    default_adversaries,
    default_victims,
    honest_rows,
    run_tournament,
)
from repro.robustness.faults import faulty_victims
from repro.robustness.supervisor import GamePolicy


def test_full_faulty_sweep_completes_with_structured_forfeits():
    """One full sweep: honest portfolio + every FaultyAlgorithm variant.

    Must complete with zero uncaught exceptions; every faulty game is a
    forfeit row with a machine-readable reason, and the honest games are
    still a clean sweep.
    """
    rows = run_tournament(
        locality=1,
        include_faulty=True,
        policy=GamePolicy(timeout=2.0),
    )
    adversaries = default_adversaries(1)
    n_adversaries = len(adversaries)
    n_fixed = 1  # theorem5 plays once, against its built-in victim
    n_honest = len(default_victims())
    n_faulty = len(faulty_victims())
    expected = (n_adversaries - n_fixed) * (n_honest + n_faulty) + n_fixed
    assert len(rows) == expected

    honest = honest_rows(rows)
    assert clean_sweep(honest)
    assert not any(row.forfeit for row in honest)

    faulty = [row for row in rows if row.victim.startswith("faulty-")]
    assert len(faulty) == (n_adversaries - n_fixed) * n_faulty
    for row in faulty:
        assert row.won, f"{row.adversary} vs {row.victim} did not win"
        assert row.forfeit, f"{row.adversary} vs {row.victim} not a forfeit"
        assert row.reason.startswith("forfeit:"), row.reason

    # Every failure mode maps to its expected forfeit class, for every
    # adversary it met.
    reason_by_victim = {
        "faulty-crash": {"forfeit:victim-crash"},
        "faulty-invalid-color": {"forfeit:model-violation"},
        "faulty-none": {"forfeit:model-violation"},
        "faulty-infinite-loop": {"forfeit:timeout"},
        "faulty-flip-flop": {"forfeit:model-violation"},
    }
    for row in faulty:
        assert row.reason in reason_by_victim[row.victim], (
            f"{row.adversary} vs {row.victim}: {row.reason}"
        )

    # Satellite: every forfeit row surfaces its structured cause — the
    # triggering exception type and the reveal index the game reached.
    for row in faulty:
        assert row.error_type, f"{row.adversary} vs {row.victim}"
        assert row.failed_at_step is not None
        assert row.failed_at_step >= 1

    # The sweep is still rectangular: every non-fixed adversary met every
    # victim exactly once, and the fixed game ran exactly once.
    fixed = [row for row in rows if row.victim == FIXED_VICTIM]
    assert len(fixed) == n_fixed
    assert fixed[0].won


def test_fixed_victim_game_plays_once():
    """Theorem 5 is not re-run per victim: one game, one row."""
    adversaries = {
        name: entry
        for name, entry in default_adversaries(1).items()
        if name == "theorem5-reduction"
    }
    rows = run_tournament(locality=1, adversaries=adversaries)
    assert len(rows) == 1
    assert rows[0].victim == FIXED_VICTIM
    assert rows[0].won and not rows[0].forfeit
