#!/usr/bin/env python3
"""Quickstart: 3-color a grid online with the Akbari et al. algorithm.

The Online-LOCAL model (the paper's Section 2.2): an adversary reveals
nodes one at a time; the algorithm sees the abstract subgraph induced by
the union of T-radius balls around revealed nodes, plus unlimited global
memory, and must commit each revealed node's color immediately.

This script runs the O(log n)-locality algorithm of Akbari et al.
(ICALP 2023) — the upper bound whose optimality the paper proves — on a
grid under a scattered adversarial reveal order, verifies the coloring,
and prints it.
"""

import math

from repro.core import AkbariBipartiteColoring
from repro.families import SimpleGrid
from repro.models import OnlineLocalSimulator
from repro.render import render_grid
from repro.verify import assert_proper


def main() -> None:
    side = 30
    grid = SimpleGrid(side, side + 1)
    n = grid.num_nodes
    budget = 3 * math.ceil(math.log2(n))
    print(f"Grid: {side}x{side + 1} ({n} nodes); "
          f"paper locality budget T = 3*log2(n) = {budget}")

    # An adversarial order that forces the algorithm's flip machinery:
    # two far-apart anchors on opposite bipartition classes (the groups'
    # types clash), then a BFS fill from the first anchor so the merge
    # happens once, deep inside the seen region.
    from repro.graphs.traversal import bfs_distances

    anchors = [(15, 5), (15, 26)]
    distances = bfs_distances(grid.graph, anchors[0])
    rest = sorted(
        (v for v in grid.graph.nodes() if v not in set(anchors)),
        key=lambda v: (distances[v], v),
    )
    algorithm = AkbariBipartiteColoring()
    simulator = OnlineLocalSimulator(
        grid.graph, algorithm, locality=5, num_colors=3
    )
    for node in anchors + rest:
        simulator.reveal(node)
    coloring = simulator.coloring()

    assert_proper(grid.graph, coloring, max_colors=3)
    used = sorted(set(coloring.values()))
    print(f"Proper 3-coloring produced at T=5. Colors used: {used}; "
          f"parity flips performed: {algorithm.flip_count}")
    print("(the ring of 3s below is the flip barrier around the second anchor)")
    print()
    print(render_grid(grid, coloring))


if __name__ == "__main__":
    main()
