"""Property-based tests for the adaptive instances: random games always
audit clean, and illegal merges are always rejected."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.adaptive import ConsistencyError, FloatingGridInstance
from repro.models.base import OnlineAlgorithm


class Greedy3(OnlineAlgorithm):
    name = "greedy3"

    def step(self, view, target):
        used = {view.colors.get(v) for v in view.graph.neighbors(target)}
        for color in (1, 2, 3):
            if color not in used:
                return {target: color}
        return {target: 1}


@st.composite
def random_games(draw):
    """A random sequence of fragment reveals and merge attempts."""
    locality = draw(st.integers(min_value=0, max_value=2))
    moves = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["reveal", "merge"]),
                st.integers(min_value=-12, max_value=12),  # x offset / dx
                st.booleans(),  # reflect for merges
            ),
            min_size=1,
            max_size=10,
        )
    )
    return locality, moves


@given(random_games())
@settings(max_examples=60, deadline=None)
def test_random_games_audit_clean(game):
    """Whatever legal moves the adversary plays, the final committed host
    must replay every view identically."""
    locality, moves = game
    instance = FloatingGridInstance(
        Greedy3(), locality=locality, num_colors=3, declared_n=10 ** 6
    )
    fragments = [instance.new_fragment()]
    instance.reveal(fragments[0], (0, 0))
    for kind, offset, reflect in moves:
        if kind == "reveal":
            instance.reveal(fragments[-1], (offset, 0))
        else:
            fresh = instance.new_fragment()
            instance.reveal(fresh, (0, 0))
            try:
                instance.merge(fragments[-1], fresh, dx=offset, dy=0,
                               reflect=reflect)
            except ConsistencyError:
                # Illegal placement rejected: the fresh fragment stays
                # separate; keep revealing into the old one.
                fragments.append(fresh)
                fragments.reverse()  # vary which fragment gets reveals
    instance.commit()
    instance.audit()


@given(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=-3, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_too_close_merges_always_rejected(locality, jitter):
    """Any merge placing the second singleton ball within distance 1 of
    the first must raise; any placement at distance >= 2 must succeed."""
    instance = FloatingGridInstance(
        Greedy3(), locality=locality, num_colors=3, declared_n=10 ** 6
    )
    a = instance.new_fragment()
    b = instance.new_fragment()
    instance.reveal(a, (0, 0))
    instance.reveal(b, (0, 0))
    # Seen extents are [-T, T]; placing b's center at dx puts its extent
    # at [dx-T, dx+T]; the regions are at distance |dx| - 2T.
    dx = 2 * locality + jitter
    if abs(dx) - 2 * locality >= 2:
        instance.merge(a, b, dx=dx, dy=0)
        instance.commit()
        instance.audit()
    else:
        try:
            instance.merge(a, b, dx=dx, dy=0)
            raised = False
        except ConsistencyError:
            raised = True
        assert raised


@given(st.integers(min_value=2, max_value=8), st.booleans())
@settings(max_examples=30, deadline=None)
def test_reflection_preserves_committed_colors(span, reflect):
    """Colors travel with the nodes under reflected merges."""
    instance = FloatingGridInstance(
        Greedy3(), locality=1, num_colors=3, declared_n=10 ** 6
    )
    a = instance.new_fragment()
    b = instance.new_fragment()
    instance.reveal(a, (0, 0))
    expected = {}
    for x in range(span):
        instance.reveal(b, (x, 0))
        expected[x] = instance.fragment_color(b, (x, 0))
    dx = 20 + (span if reflect else 0)
    instance.merge(a, b, dx=dx, dy=0, reflect=reflect)
    for x, color in expected.items():
        landed = (dx - x) if reflect else (dx + x)
        assert instance.fragment_color(a, (landed, 0)) == color
    instance.commit()
    instance.audit()
