"""The message-passing formulation of the LOCAL model (Section 2.2).

"There is an alternative way of defining the LOCAL model from the
perspective of distributed computing: the communication proceeds in
synchronous rounds; in each round, each node can communicate with its
neighbors by exchanging messages of unlimited size.  The locality of an
algorithm is the number of communication rounds."

This module implements that definition literally — nodes are state
machines, each round every node sends one message per incident edge and
receives its neighbors' messages — and two algorithms on top:

* :class:`FloodFill` — after T rounds each node has collected exactly its
  T-ball (tested against the view-based :class:`LocalSimulator`, which
  proves the two definitions coincide in this codebase);
* :class:`ColeVishkinMessagePassing` — the classic O(log* n) 3-coloring
  of directed cycles, driven by real message exchange (the array-based
  reference implementation lives in :mod:`repro.core.colevishkin`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional

from repro.core.colevishkin import _cv_step
from repro.graphs.graph import Graph

Node = Hashable
Message = Any


class MessagePassingAlgorithm(ABC):
    """A per-node state machine for the synchronous LOCAL model."""

    name: str = "message-passing-algorithm"

    @abstractmethod
    def init_state(self, node_id: int, degree: int, n: int) -> Any:
        """The node's initial state, from its id, degree, and n."""

    @abstractmethod
    def send(self, state: Any, round_index: int) -> Message:
        """The message broadcast to every neighbor this round."""

    @abstractmethod
    def receive(
        self, state: Any, inbox: List[Message], round_index: int
    ) -> Any:
        """The state after receiving this round's messages."""

    @abstractmethod
    def output(self, state: Any) -> Any:
        """The node's final output after the last round."""


class SynchronousNetwork:
    """Run a message-passing algorithm for T rounds on a host graph.

    Identifiers are assigned like in :class:`LocalSimulator` (sorted by
    repr unless supplied), and messages are delivered simultaneously —
    every node's round-r message is computed from its round-(r-1) state.
    """

    def __init__(
        self,
        host: Graph,
        id_map: Optional[Dict[Node, int]] = None,
    ) -> None:
        self.host = host
        if id_map is None:
            ordered = sorted(host.nodes(), key=repr)
            id_map = {node: index for index, node in enumerate(ordered)}
        if len(set(id_map.values())) != host.num_nodes:
            raise ValueError("id_map must assign distinct ids")
        self.id_map = id_map

    def run(
        self, algorithm: MessagePassingAlgorithm, rounds: int
    ) -> Dict[Node, Any]:
        """Execute ``rounds`` synchronous rounds; returns node outputs."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        states = {
            node: algorithm.init_state(
                self.id_map[node], self.host.degree(node), self.host.num_nodes
            )
            for node in self.host.nodes()
        }
        for round_index in range(rounds):
            outgoing = {
                node: algorithm.send(states[node], round_index)
                for node in self.host.nodes()
            }
            states = {
                node: algorithm.receive(
                    states[node],
                    [outgoing[nbr] for nbr in sorted(
                        self.host.neighbors(node), key=lambda v: self.id_map[v]
                    )],
                    round_index,
                )
                for node in self.host.nodes()
            }
        return {node: algorithm.output(states[node]) for node in self.host.nodes()}


class FloodFill(MessagePassingAlgorithm):
    """Collect the T-ball: each round, forward everything known.

    State: ``(my_id, {id: (id, sorted neighbor ids)})`` — the fragment of
    the graph learned so far, as an id-labeled adjacency map.  After T
    rounds this is exactly the T-ball's structure plus the adjacency
    lists of its interior (the information a view-based LOCAL algorithm
    gets), which the equivalence test checks.
    """

    name = "flood-fill"

    def init_state(self, node_id: int, degree: int, n: int):
        return (node_id, {node_id: None})  # adjacency learned lazily

    def send(self, state, round_index):
        my_id, known = state
        return (my_id, dict(known))

    def receive(self, state, inbox, round_index):
        my_id, known = state
        merged = dict(known)
        neighbor_ids = []
        for sender_id, sender_known in inbox:
            neighbor_ids.append(sender_id)
            for node_id, adjacency in sender_known.items():
                if merged.get(node_id) is None:
                    merged[node_id] = adjacency
        merged[my_id] = tuple(sorted(neighbor_ids))
        return (my_id, merged)

    def output(self, state):
        my_id, known = state
        return known


def reduction_rounds(id_bound: int) -> int:
    """Rounds of Cole–Vishkin reduction guaranteeing all colors < 6.

    If the maximum color value is ``C``, one step yields
    ``2*i + b ≤ 2*(bit_length(C) - 1) + 1 = 2*bit_length(C) - 1``, so the
    value bound iterates ``C -> 2*bit_length(C) - 1`` and stabilizes at
    5 (from 7: 2*3-1 = 5).  One cv step on two colors < 6 stays < 6, so
    overshooting is harmless and every node can use this common schedule
    knowing only the public identifier bound (poly(n)).
    """
    bound = max(5, id_bound)
    rounds = 0
    while bound > 5:
        bound = 2 * bound.bit_length() - 1
        rounds += 1
    return rounds + 1  # one stabilizing extra round


def cv_total_rounds(id_bound: int) -> int:
    """Reduction rounds plus the three shift rounds."""
    return reduction_rounds(id_bound) + 3


class ColeVishkinMessagePassing(MessagePassingAlgorithm):
    """Cole–Vishkin on a directed cycle, by actual message exchange.

    The cycle orientation is supplied as a successor map on ids (an
    oriented cycle is the input family; LOCAL inputs may carry such port
    labels).  All nodes share a deterministic schedule computed from the
    public id bound: ``reduction_rounds(id_bound)`` cv steps, then three
    shift rounds retiring colors 5, 4, 3.  Run it with
    ``SynchronousNetwork.run(algorithm, cv_total_rounds(id_bound))``.
    """

    name = "cole-vishkin-mp"

    def __init__(self, successor_of: Dict[int, int], id_bound: int) -> None:
        self.successor_of = successor_of
        self.id_bound = id_bound
        self.cv_rounds = reduction_rounds(id_bound)

    def init_state(self, node_id: int, degree: int, n: int):
        if degree != 2:
            raise ValueError("Cole-Vishkin runs on cycles (degree 2)")
        return {
            "id": node_id,
            "succ": self.successor_of[node_id],
            "color": node_id,
        }

    def send(self, state, round_index):
        return (state["id"], state["color"])

    def receive(self, state, inbox, round_index):
        new_state = dict(state)
        neighbors = {sender: color for sender, color in inbox}
        if round_index < self.cv_rounds:
            succ_color = neighbors.get(state["succ"])
            if succ_color is None:
                raise ValueError("successor id not among neighbors")
            new_state["color"] = _cv_step(state["color"], succ_color)
        else:
            retired = 5 - (round_index - self.cv_rounds)
            if state["color"] == retired:
                used = set(neighbors.values())
                new_state["color"] = min(c for c in (0, 1, 2) if c not in used)
        return new_state

    def output(self, state):
        return state["color"] + 1
