"""Cross-model simulation adapters.

The paper's framing rests on the sandwich

    LOCAL  ⊆  SLOCAL  ⊆  Online-LOCAL

(every algorithm in a weaker model runs unchanged, with the same
asymptotic locality, in a stronger one).  These adapters implement the
two inclusions executably: a LOCAL or SLOCAL algorithm becomes an
:class:`~repro.models.base.OnlineAlgorithm` that colors only the revealed
node, using only its ``T``-ball inside the Online-LOCAL view.

The adapters also serve the benchmarks: the LOCAL-model baselines (e.g.,
the full-view canonical colorer) are run against the Online-LOCAL
adversaries through these wrappers.
"""

from __future__ import annotations

from typing import Mapping

from repro.graphs.traversal import ball
from repro.models.base import AlgorithmView, Color, NodeId, OnlineAlgorithm
from repro.models.local import LocalAlgorithm, LocalView
from repro.models.slocal import SLocalAlgorithm, SLocalView


class LocalAsOnline(OnlineAlgorithm):
    """Run a LOCAL algorithm in the Online-LOCAL model.

    When ``target`` is revealed, the view graph contains the full host
    ball :math:`\\mathcal{B}(target, T)` (just added by the simulator),
    and every host shortest path of length ≤ T from ``target`` lies
    inside that ball — so a BFS of radius T *within the view* recovers
    the exact LOCAL view.
    """

    def __init__(self, inner: LocalAlgorithm) -> None:
        self.inner = inner
        self.name = f"local:{inner.name}"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n, locality, num_colors)
        self.inner.reset(n=n, locality=locality, num_colors=num_colors)

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        region = ball(view.graph, target, view.locality)
        local_view = LocalView(
            graph=view.graph.induced_subgraph(region),
            center=target,
            n=view.n,
            locality=view.locality,
        )
        return {target: self.inner.color(local_view)}


class SLocalAsOnline(OnlineAlgorithm):
    """Run an SLOCAL algorithm in the Online-LOCAL model.

    Identical to :class:`LocalAsOnline` but the inner algorithm also sees
    the colors previously committed inside the ball, matching the SLOCAL
    contract.
    """

    def __init__(self, inner: SLocalAlgorithm) -> None:
        self.inner = inner
        self.name = f"slocal:{inner.name}"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n, locality, num_colors)
        self.inner.reset(n=n, locality=locality, num_colors=num_colors)

    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        region = ball(view.graph, target, view.locality)
        slocal_view = SLocalView(
            graph=view.graph.induced_subgraph(region),
            center=target,
            colors={u: view.colors[u] for u in region if u in view.colors},
            n=view.n,
            locality=view.locality,
        )
        return {target: self.inner.color(slocal_view)}
