"""The Akbari et al. O(log n) Online-LOCAL 3-coloring of bipartite graphs.

This is the upper-bound algorithm whose optimality the paper proves
(Section 5.1.1 reviews it; Theorem 1 shows its Θ(log n) locality is
tight).  The algorithm 2-colors the *groups* (connected components of the
seen region) with colors {1, 2}, and when two groups with incompatible
parities merge, it flips the smaller one by laying three boundary layers
(2, then 3, then 1) around its colored core — the only place color 3 is
used.

With locality ``T ≥ 3·log2(n) + c`` the algorithm produces a proper
3-coloring of any bipartite graph under any reveal order.  Run with a
smaller budget it is a fair member of the adversary's victim portfolio:
flips that would overrun the seen region are truncated, and improper
edges eventually appear — exactly the behavior Theorem 1 predicts must
occur for *every* algorithm with ``T ∈ o(log n)``.

Implementation notes
--------------------
* Group parities are maintained with a parity union-find
  (:class:`~repro.core.parity_uf.ParityUnionFind`); each group root
  stores the color assigned to parity-0 nodes (its *type*) and the set of
  nodes the algorithm has colored in the group.
* When a reveal merges groups, the types of the smaller groups are
  rebased into the merged parity frame and physically flipped where they
  disagree with the largest group's type.
* On a parity contradiction (non-bipartite input, e.g. an odd cycle of a
  torus) the component is marked odd and colored greedily — the algorithm
  keeps playing, and loses, rather than crashing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.parity_uf import ParityUnionFind
from repro.models.base import AlgorithmView, Color, NodeId, OnlineAlgorithm

_FLIP_SCHEDULE: Tuple[Tuple[Color, Color], ...] = ((1, 2), (2, 3), (3, 1))


class _Group:
    """Per-root group metadata."""

    __slots__ = ("colored", "type_color")

    def __init__(self) -> None:
        # Nodes this algorithm has committed colors to, in this group.
        self.colored: Set[NodeId] = set()
        # The color in {1, 2} assigned to parity-0 nodes (the "type").
        self.type_color: Optional[Color] = None


class AkbariBipartiteColoring(OnlineAlgorithm):
    """Online-LOCAL 3-coloring of bipartite graphs, per Akbari et al.

    Parameters
    ----------
    flip_larger:
        Ablation knob.  The paper flips the *smaller* group on a parity
        conflict, which caps per-node flip participation at log2(n).
        Setting this to True flips the larger group instead — correct,
        but the flip count per node can grow linearly, so the required
        locality explodes (see ``benchmarks/bench_ablations.py``).
    """

    name = "akbari-bipartite"

    def __init__(self, flip_larger: bool = False) -> None:
        self.flip_larger = flip_larger
        if flip_larger:
            self.name = "akbari-flip-larger"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n, locality, num_colors)
        if num_colors < 3:
            raise ValueError("the Akbari algorithm needs 3 colors")
        self._uf = ParityUnionFind()
        self._groups: Dict[NodeId, _Group] = {}
        self._known: Set[NodeId] = set()
        self._colors: Dict[NodeId, Color] = {}
        self.flip_count = 0  # instrumentation for the benchmarks

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------
    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        assignment: Dict[NodeId, Color] = {}
        old_groups = self._absorb_new_nodes(view, target)
        root, __ = self._uf.find(target)

        if self._uf.is_odd(target):
            # Non-bipartite component: play on greedily (and lose later).
            self._greedy_color(view, target, assignment)
            self._record(root, assignment)
            return assignment

        group = self._groups.setdefault(root, _Group())
        if not old_groups:
            # Case 1: a brand-new group.  Color the target 1 and anchor
            # the type so that the target's parity maps to color 1.
            __, target_parity = self._uf.find(target)
            group.type_color = 1 if target_parity == 0 else 2
            self._commit(target, 1, assignment)
        else:
            # Cases 2 and 3: rebase every old group's type into the
            # merged parity frame; flip the ones disagreeing with the
            # largest group.
            rebased = self._rebase(old_groups)
            if self.flip_larger:
                rebased.sort(key=lambda item: (item[0], item[1]))
            else:
                rebased.sort(key=lambda item: (-item[0], item[1]))
            __, reference_type, __ = rebased[0]
            for __, type_color, old_colored in rebased[1:]:
                if type_color != reference_type:
                    self._flip(view, old_colored, assignment)
                    self.flip_count += 1
                group.colored |= old_colored
            group.colored |= rebased[0][2]
            group.type_color = reference_type
            if target not in self._colors:
                __, target_parity = self._uf.find(target)
                color = reference_type if target_parity == 0 else 3 - reference_type
                self._commit(target, color, assignment)
        self._record(root, assignment)
        return assignment

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _absorb_new_nodes(
        self, view: AlgorithmView, target: NodeId
    ) -> List[Tuple[int, NodeId, Color, Set[NodeId]]]:
        """Register nodes that appeared this step; returns snapshots of
        the distinct old groups being merged: (size, root, type, colored).

        "Old groups" are the existing groups adjacent to the new nodes,
        plus the target's own group when the target was already seen.
        """
        new_nodes = [u for u in view.graph.nodes() if u not in self._known]
        touched_roots: Dict[NodeId, Tuple[int, Optional[Color], Set[NodeId]]] = {}

        def touch(old_node: NodeId) -> None:
            root, __ = self._uf.find(old_node)
            if root not in touched_roots:
                old = self._groups.get(root)
                touched_roots[root] = (
                    self._uf.size(old_node),
                    old.type_color if old else None,
                    set(old.colored) if old else set(),
                )

        for u in new_nodes:
            self._uf.add(u)
        if target in self._known:
            touch(target)
        for u in new_nodes:
            for v in view.graph.neighbors(u):
                if v in self._known:
                    touch(v)
        for u in new_nodes:
            self._known.add(u)
            for v in view.graph.neighbors(u):
                if v in self._known:
                    self._uf.union_opposite(u, v)
        return [
            (size, root, type_color, colored)
            for root, (size, type_color, colored) in touched_roots.items()
            if type_color is not None
        ]

    def _rebase(
        self, old_groups: List[Tuple[int, NodeId, Color, Set[NodeId]]]
    ) -> List[Tuple[int, Color, Set[NodeId]]]:
        """Express each old group's type in the merged parity frame.

        A witness node's committed color pins the type: in the old frame
        the witness's color followed the old type; whatever parity the
        witness now has, the rebased type is the color its parity class
        must take for the witness's color to stay consistent.  Witnesses
        colored 3 (flip barriers) are skipped — frontier nodes are never
        colored 3 when the budget is honored.
        """
        rebased: List[Tuple[int, Color, Set[NodeId]]] = []
        for size, old_root, type_color, colored in old_groups:
            witness = None
            for node in colored:
                if self._colors[node] in (1, 2):
                    witness = node
                    break
            if witness is None:
                # Degenerate: everything colored 3; keep the stored type.
                rebased.append((size, type_color, colored))
                continue
            __, parity = self._uf.find(witness)
            witness_color = self._colors[witness]
            new_type = witness_color if parity == 0 else 3 - witness_color
            rebased.append((size, new_type, colored))
        return rebased

    # ------------------------------------------------------------------
    # Physical operations
    # ------------------------------------------------------------------
    def _flip(
        self,
        view: AlgorithmView,
        core: Set[NodeId],
        assignment: Dict[NodeId, Color],
    ) -> None:
        """Flip a group's parity with three boundary layers (2, 3, 1).

        ``core`` is the group's colored set.  Each pass colors the
        currently uncolored seen neighbors of sources with the pass's
        source color.  Unseen neighbors cannot be colored — with an
        honest budget there are none; with a truncated budget this is
        where the algorithm starts losing.
        """
        current = set(core)
        for source_color, layer_color in _FLIP_SCHEDULE:
            layer: Set[NodeId] = set()
            for u in current:
                if self._color_of(u, assignment) != source_color:
                    continue
                for v in view.graph.neighbors(u):
                    if self._color_of(v, assignment) is None:
                        layer.add(v)
            for v in layer:
                self._commit(v, layer_color, assignment)
            current |= layer

    def _greedy_color(
        self,
        view: AlgorithmView,
        target: NodeId,
        assignment: Dict[NodeId, Color],
    ) -> None:
        """Fallback for odd components: first color unused by neighbors."""
        used = {
            self._color_of(v, assignment)
            for v in view.graph.neighbors(target)
        }
        for color in range(1, self.num_colors + 1):
            if color not in used:
                self._commit(target, color, assignment)
                return
        self._commit(target, 1, assignment)  # improper; the adversary won

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _color_of(
        self, node: NodeId, assignment: Dict[NodeId, Color]
    ) -> Optional[Color]:
        color = assignment.get(node)
        if color is not None:
            return color
        return self._colors.get(node)

    def _commit(
        self, node: NodeId, color: Color, assignment: Dict[NodeId, Color]
    ) -> None:
        if self._color_of(node, assignment) is not None:
            return
        assignment[node] = color
        self._colors[node] = color

    def _record(self, root: NodeId, assignment: Dict[NodeId, Color]) -> None:
        root, __ = self._uf.find(root)
        group = self._groups.setdefault(root, _Group())
        group.colored |= set(assignment)
        if group.type_color is None:
            group.type_color = 1
