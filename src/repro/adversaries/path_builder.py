"""The Lemma 3.6 adversary: forcing a row path with large b-value.

Recursive strategy, verbatim from the paper: to force b-value ≥ k, force
two disjoint fragments each carrying a directed row path of b-value
≥ k−1, then concatenate their discovered regions with a gap of ℓ ∈ {2, 3}
chosen — *after* seeing the colors — so that the parity of the middle
segment's b-value (pinned by Lemma 3.5) differs from k−1.  One of the
four directed paths ``P_{u,t}, P_{t,u}, P_{v,s}, P_{s,v}`` then has
b-value ≥ k.

The builder aborts as soon as the algorithm commits a monochromatic edge
(the adversary has already won; the b-value lemmas assume properness), so
against sloppy algorithms it terminates far before reaching level k.

Region accounting: our concatenation yields row extents
``R(k) = 2·R(k-1) + 3`` with ``R(0) = 2T + 1``, i.e.
``R(k) ≈ 2^k (2T + 4)`` — comfortably below the paper's loose
``5^{k+1} T`` bound; benchmarks report both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.bvalue import endpoint_indicator, path_b_value
from repro.models.adaptive import FloatingGridInstance
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER


@dataclass
class BuiltPath:
    """A forced directed path along row 0 of a fragment.

    ``interval`` is the contiguously colored x-range; ``path`` gives the
    directed path's (start x, end x); ``b`` is its b-value, at least the
    level it was built for.
    """

    fragment: int
    interval: Tuple[int, int]
    path: Tuple[int, int]
    b: int


class PathBuilder:
    """Drives a :class:`FloatingGridInstance` through Lemma 3.6.

    Parameters
    ----------
    gap_policy:
        ``"parity"`` (the paper's move: pick ℓ ∈ {2, 3} so the middle
        segment's b-value parity differs from k-1) or ``"fixed"``
        (ablation: always ℓ = 2, forfeiting the parity guarantee — the
        build can then stall below the target level, which
        ``build`` reports by returning the best path found with
        ``b < level``; see ``benchmarks/bench_ablations.py``).
    """

    def __init__(
        self, instance: FloatingGridInstance, gap_policy: str = "parity"
    ) -> None:
        if gap_policy not in ("parity", "fixed"):
            raise ValueError(f"unknown gap policy {gap_policy!r}")
        self.instance = instance
        self.gap_policy = gap_policy
        #: Set as soon as the algorithm commits a monochromatic edge.
        self.improper = False
        #: Reveals issued (instrumentation).
        self.reveals = 0
        #: Concatenations whose best path fell short of the target level
        #: (only possible under the "fixed" ablation policy).
        self.stalls = 0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def _reveal(self, fragment: int, x: int) -> None:
        self.instance.reveal(fragment, (x, 0))
        self.reveals += 1
        if self.instance.tracker.monochromatic_in_last_step():
            self.improper = True

    def _row_colors(self, fragment: int, x_from: int, x_to: int) -> List[int]:
        """Committed colors along row 0 from ``x_from`` to ``x_to``
        (inclusive, either direction).  Raises if any node is uncolored."""
        step = 1 if x_to >= x_from else -1
        colors = []
        for x in range(x_from, x_to + step, step):
            color = self.instance.fragment_color(fragment, (x, 0))
            if color is None:
                raise ValueError(f"row node x={x} is uncolored")
            colors.append(color)
        return colors

    def path_b(self, fragment: int, x_from: int, x_to: int) -> int:
        """The b-value of the directed row path from ``x_from`` to ``x_to``."""
        return path_b_value(self._row_colors(fragment, x_from, x_to))

    # ------------------------------------------------------------------
    # Lemma 3.6
    # ------------------------------------------------------------------
    def build(self, level: int) -> Optional[BuiltPath]:
        """Force a directed row path with b-value ≥ ``level``.

        Returns None if the algorithm went improper along the way (the
        adversary has already won and the caller should stop).
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        if self.improper:
            return None
        if level == 0:
            fragment = self.instance.new_fragment()
            self._reveal(fragment, 0)
            if self.improper:
                return None
            return BuiltPath(fragment, (0, 0), (0, 0), 0)

        first = self.build(level - 1)
        if first is None:
            return None
        if first.b >= level:
            return first
        second = self.build(level - 1)
        if second is None:
            return None
        if second.b >= level:
            return second
        return self._concatenate(first, second, level)

    def _concatenate(
        self, first: BuiltPath, second: BuiltPath, level: int
    ) -> Optional[BuiltPath]:
        """The inductive step: merge with gap ℓ ∈ {2, 3} and pick the
        directed path with b-value ≥ level."""
        instance = self.instance
        direction = _direction(first.path)
        second_dir = _direction(second.path)
        reflect = second_dir != direction

        a_lo, a_hi = instance.fragment_row_extent(first.fragment)
        b_lo, b_hi = instance.fragment_row_extent(second.fragment)

        def placement(gap: int) -> Tuple[int, Tuple[int, int]]:
            """The merge dx and the second path's merged (start, end)."""
            if direction > 0:
                # Attach the second region to the right of the first.
                dx = a_hi + gap + (b_hi if reflect else -b_lo)
            else:
                # Attach to the left.
                dx = a_lo - gap + (b_lo if reflect else -b_hi)
            sign = -1 if reflect else 1

            def transform(x: int) -> int:
                return dx + sign * x

            return dx, (transform(second.path[0]), transform(second.path[1]))

        # Choose ℓ by Lemma 3.5: the middle segment P_{v,s} runs from the
        # first path's end v to the second path's (merged) start s; its
        # b-value parity is i(c_v) + i(c_s) + |s - v|, which must differ
        # from (level-1) mod 2.
        v = first.path[1]
        color_v = instance.fragment_color(first.fragment, (v, 0))
        color_s = instance.fragment_color(second.fragment, (second.path[0], 0))
        if color_v is None or color_s is None:
            raise ValueError("path endpoints must be colored")
        if self.gap_policy == "fixed":
            gap = 2
        else:
            gap = None
            for candidate in (2, 3):
                __, (s_pos, __t) = placement(candidate)
                middle_len = abs(s_pos - v)
                parity = (
                    endpoint_indicator(color_v)
                    + endpoint_indicator(color_s)
                    + middle_len
                ) % 2
                if parity != (level - 1) % 2:
                    gap = candidate
                    break
            if gap is None:
                raise AssertionError("one of ℓ ∈ {2,3} always fixes the parity")

        dx, (s_pos, t_pos) = placement(gap)
        instance.merge(first.fragment, second.fragment, dx=dx, dy=0, reflect=reflect)
        fragment = first.fragment
        get_registry().inc("adversary_rounds")

        # Color every remaining node between the merged colored intervals.
        merged_second_interval = sorted(
            (dx - x if reflect else dx + x) for x in second.interval
        )
        lo = min(first.interval[0], merged_second_interval[0])
        hi = max(first.interval[1], merged_second_interval[1])
        for x in range(lo, hi + 1):
            if instance.fragment_color(fragment, (x, 0)) is None:
                self._reveal(fragment, x)
                if self.improper:
                    return None

        # Pick the candidate directed path with the largest b-value.
        u = first.path[0]
        candidates = [(u, t_pos), (t_pos, u), (v, s_pos), (s_pos, v)]
        best = max(candidates, key=lambda p: self.path_b(fragment, *p))
        best_b = self.path_b(fragment, *best)
        if TRACER.enabled:
            TRACER.event(
                "bvalue-round",
                level=level,
                gap=gap,
                reflect=reflect,
                b_first=first.b,
                b_second=second.b,
                b_best=best_b,
                reveals=self.reveals,
            )
        if best_b < level:
            if self.gap_policy == "fixed":
                # The ablation forfeited the parity guarantee; record the
                # stall and return the best path anyway.
                self.stalls += 1
            else:
                raise AssertionError(
                    f"Lemma 3.6 violated: best b-value {best_b} < level "
                    f"{level} with a proper coloring — simulator "
                    f"inconsistency"
                )
        return BuiltPath(fragment, (lo, hi), best, best_b)


def _direction(path: Tuple[int, int]) -> int:
    """+1 for rightward (or zero-length) paths, -1 for leftward."""
    return 1 if path[1] >= path[0] else -1
