"""a-values and b-values of 3-colorings (paper Section 3.1).

Given a proper 3-coloring :math:`c : V \\to \\{1, 2, 3\\}`:

* the *a-value* of a directed edge ``(u, v)`` is ``c(u) - c(v)`` when
  neither endpoint is colored 3, else 0 (Definition 3.1);
* the *b-value* of a directed path or cycle is the sum of the a-values
  of its directed edges (Definition 3.2).

The key facts proved in the paper and re-verified by this library's test
suite and benchmarks:

* every 4-node directed cycle has b-value 0 (Lemma 3.3, "cells cancel"),
* every simple directed cycle in a grid has b-value 0 (Lemma 3.4),
* the parity of a path's b-value is determined by its length and the
  colors of its endpoints: ``b(P) ≡ i(u) + i(v) + len (mod 2)`` where
  ``i(x) = 1`` iff ``c(x) = 3`` (Lemma 3.5).

The b-value measures how hard a partially colored path is to "close off":
an adversary that forces a large |b| forces an improper coloring
somewhere (Section 3.2).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

Node = Hashable
Color = int


def a_value(color_u: Color, color_v: Color) -> int:
    """The a-value of a directed edge with the given endpoint colors.

    Nonzero exactly when one endpoint has color 1 and the other color 2.
    """
    _check_color(color_u)
    _check_color(color_v)
    if color_u == 3 or color_v == 3:
        return 0
    return color_u - color_v


def _check_color(color: Color) -> None:
    if color not in (1, 2, 3):
        raise ValueError(f"b-value machinery needs colors in {{1,2,3}}, got {color}")


def path_b_value(colors: Sequence[Color]) -> int:
    """The b-value of a directed path given its node colors in order.

    A zero- or one-node path has b-value 0.
    """
    return sum(
        a_value(colors[i], colors[i + 1]) for i in range(len(colors) - 1)
    )


def cycle_b_value(colors: Sequence[Color]) -> int:
    """The b-value of a directed cycle given its node colors in cyclic order.

    The closing edge from the last node back to the first is included;
    the first node must not be repeated at the end of the sequence.
    """
    if len(colors) < 3:
        raise ValueError(f"a cycle needs at least 3 nodes, got {len(colors)}")
    return path_b_value(list(colors) + [colors[0]])


def b_value(
    nodes: Sequence[Node],
    coloring: Mapping[Node, Color],
    cycle: bool = False,
) -> int:
    """The b-value of a directed path (or cycle) of nodes under ``coloring``.

    Parameters
    ----------
    nodes:
        The nodes in traversal order.  For a cycle, do not repeat the
        first node.
    coloring:
        Node colors; every listed node must be colored.
    cycle:
        Whether to include the closing edge.
    """
    colors = [coloring[node] for node in nodes]
    if cycle:
        return cycle_b_value(colors)
    return path_b_value(colors)


def endpoint_indicator(color: Color) -> int:
    """The paper's ``i(u)``: 1 iff the color is 3."""
    _check_color(color)
    return 1 if color == 3 else 0


def b_value_parity(
    length: int, color_start: Color, color_end: Color
) -> int:
    """The parity Lemma 3.5 predicts for a path's b-value.

    ``b(P) ≡ i(u) + i(v) + length (mod 2)`` for a directed path of the
    given edge-``length`` from a node colored ``color_start`` to one
    colored ``color_end``.
    """
    if length < 0:
        raise ValueError(f"path length must be non-negative, got {length}")
    return (endpoint_indicator(color_start) + endpoint_indicator(color_end) + length) % 2


def cycle_b_value_parity(length: int) -> int:
    """The parity Lemma 3.5 predicts for a cycle's b-value: ``length mod 2``."""
    if length < 3:
        raise ValueError(f"a cycle has length at least 3, got {length}")
    return length % 2


def rectangle_cycle(
    row_low: int, row_high: int, col_left: int, col_right: int
) -> list:
    """The directed rectangle cycle used in the Theorem 1 contradiction.

    Traverses: rightward along the low row, upward along the right
    column, leftward along the high row, downward along the left column.
    Nodes are ``(row, col)`` grid labels; the first node is not repeated.
    """
    if row_low >= row_high or col_left >= col_right:
        raise ValueError("rectangle must have positive height and width")
    cycle = [(row_low, col) for col in range(col_left, col_right + 1)]
    cycle += [(row, col_right) for row in range(row_low + 1, row_high + 1)]
    cycle += [(row_high, col) for col in range(col_right - 1, col_left - 1, -1)]
    cycle += [(row, col_left) for row in range(row_high - 1, row_low, -1)]
    return cycle


def grid_cell_cycles(rows: int, cols: int):
    """All unit-cell 4-cycles of a ``rows x cols`` grid, oriented uniformly.

    Used to re-verify Lemma 3.4's summation argument: the b-value of any
    simple cycle equals the sum over enclosed cells.
    """
    for i in range(rows - 1):
        for j in range(cols - 1):
            yield [(i, j), (i, j + 1), (i + 1, j + 1), (i + 1, j)]
