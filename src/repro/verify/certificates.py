"""Machine-checkable win certificates for the lower-bound adversaries.

A certificate explains *why* the adversary's forced coloring cannot be
completed properly:

* :class:`CycleCertificate` (Theorem 1) — a directed rectangle cycle in
  a simple grid whose b-value, computed from the committed colors, is
  nonzero.  Lemma 3.4 says a proper 3-coloring gives every simple grid
  cycle b-value 0, so either the certificate's b-value recomputes to 0
  (certificate invalid) or the coloring is improper somewhere.
* :class:`TorusCertificate` (Theorem 2) — two row cycles of a toroidal
  or cylindrical grid, oriented oppositely, with
  ``b(C1) + b(C2) != 0``; Equation (1) says proper colorings make the
  sum 0.

``verify_*`` recomputes everything from scratch (graph + coloring), so a
passing verification plus a proper coloring would be a logical
contradiction — the tests assert the coloring is indeed improper whenever
a certificate verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

from repro.core.bvalue import b_value
from repro.graphs.graph import Graph

Node = Hashable
Color = int


@dataclass
class CycleCertificate:
    """A directed simple cycle with nonzero b-value in a grid coloring."""

    cycle: List[Node]  # traversal order, first node not repeated
    b_value: int


@dataclass
class TorusCertificate:
    """Two oppositely oriented row cycles with nonzero b-value sum."""

    cycle_one: List[Node]
    cycle_two: List[Node]
    b_sum: int


def _check_cycle_edges(graph: Graph, cycle: Sequence[Node]) -> None:
    for i, u in enumerate(cycle):
        v = cycle[(i + 1) % len(cycle)]
        if not graph.has_edge(u, v):
            raise ValueError(f"certificate cycle skips a non-edge {u!r} ~ {v!r}")
    if len(set(cycle)) != len(cycle):
        raise ValueError("certificate cycle repeats a node")


def verify_cycle_certificate(
    graph: Graph,
    coloring: Dict[Node, Color],
    certificate: CycleCertificate,
) -> bool:
    """Recompute the certificate against graph + coloring.

    Returns True iff the cycle is a genuine simple cycle of the graph,
    every cycle node is colored in {1,2,3}, and the recomputed b-value is
    nonzero and matches the certificate.
    """
    _check_cycle_edges(graph, certificate.cycle)
    recomputed = b_value(certificate.cycle, coloring, cycle=True)
    return recomputed == certificate.b_value and recomputed != 0


def verify_torus_certificate(
    graph: Graph,
    coloring: Dict[Node, Color],
    certificate: TorusCertificate,
) -> bool:
    """Recompute a Theorem 2 certificate.

    Returns True iff both cycles are genuine, colored, and their b-values
    sum to the certificate's nonzero value.
    """
    _check_cycle_edges(graph, certificate.cycle_one)
    _check_cycle_edges(graph, certificate.cycle_two)
    b_one = b_value(certificate.cycle_one, coloring, cycle=True)
    b_two = b_value(certificate.cycle_two, coloring, cycle=True)
    return (b_one + b_two) == certificate.b_sum and certificate.b_sum != 0
