"""Supervised campaign worker pool: leases, crash recovery, quarantine.

The PR-5 campaign scheduler fanned games out over bare ``ctx.Process``
workers sharing one task queue.  That survives the failures *games*
survive (victim crashes become forfeit rows inside the worker) but not
the failures *processes* suffer: a SIGKILLed, OOM'd, or natively hung
worker silently lost its in-flight game, and the parent's drain loop
only noticed once **every** worker was dead.  This module replaces the
fan-out with a supervised pool:

* **Leases** — the parent dispatches exactly one game to one worker at
  a time and records a :class:`Lease` (digest, pid, attempt, monotonic
  deadline derived from the spec's ``GamePolicy`` timeout × a grace
  factor).  Work-stealing is preserved: the next pending game goes to a
  worker the moment it reports its last one.
* **Crash recovery** — the drain loop detects dead workers via
  ``Process.is_alive()``/``exitcode`` and hung workers via expired
  leases, SIGKILLs and reaps the offender, respawns a replacement
  (while the restart budget lasts), and requeues the leased game with
  its retry count.
* **Isolated channels** — each worker talks to the parent over its own
  duplex pipe (tasks down, results up) instead of one shared result
  queue.  A ``multiprocessing.Queue`` ack travels through a feeder
  thread holding a lock shared by *every* worker, so a SIGKILL landing
  mid-write would deadlock or garble all the survivors' acks; with
  per-worker pipes a torn write poisons only the dead worker's channel,
  which the parent already treats as worker death (any receive failure
  marks the worker broken and its lease lost).
* **Poison quarantine** — a game that kills or hangs its worker
  ``poison_threshold`` times is quarantined: written to the
  :class:`~repro.analysis.store.ResultStore` as a structured forfeit
  row (``reason="forfeit:poison"``, ``cause="poison"``) so resume never
  replays it forever, and surfaced by ``campaign status``.
* **Graceful degradation** — when the restart budget is exhausted the
  pool stops, hands the un-played remainder back to the scheduler, and
  the scheduler finishes **in-process serially** instead of raising.

Observability: the drain runs inside a ``worker-pool`` trace span;
worker lifecycle transitions are trace events (``worker-spawned``,
``worker-died``, ``lease-expired``, ``game-requeued``,
``game-quarantined``, ``pool-degraded``) and the counters
``campaign_worker_restarts`` / ``campaign_lease_expirations`` /
``campaign_games_requeued`` / ``campaign_games_quarantined`` /
``campaign_pool_degradations`` fold through the ordinary registry.
Three channels added by the telemetry layer:

* **Heartbeats** — a worker acknowledges each lease pickup with a
  ``("heartbeat", digest, {pid, games}, None)`` message before running
  any chaos action or compute, so the parent can tell "busy on a long
  game" from "hung" (``campaign_worker_heartbeats``, per-worker
  ``last_seen`` ages in the live status).
* **Live status** — the drain loop atomically republishes ``live.json``
  under the store root about once a second (progress counts, queue
  depth/in-flight, per-worker heartbeat ages, phase split); ``repro
  campaign watch`` renders it.  ``campaign_queue_depth`` and
  ``campaign_in_flight`` gauges record the high-water marks.
* **Phase timers + flight recorder** — dispatch/drain/sweep/spawn run
  under :mod:`repro.observability.timers` phases (workers record theirs
  under the ``worker:`` scope), and every lifecycle transition also
  lands in the always-on :data:`~repro.observability.flightrec.FLIGHT`
  ring, dumped to ``flight-<pid>.jsonl`` next to the store on lease
  expiry, quarantine, and degradation.

Chaos: workers consult an optional
:class:`~repro.robustness.chaos.ChaosPolicy` (normally passed via the
``REPRO_CHAOS`` environment) before each game — kill-self, stall,
corrupt-result-row, slow-start — which is how the tests and the CI
chaos job inject process-level faults the way
:class:`~repro.robustness.faults.FaultyAlgorithm` injects game-level
ones.  The parent never applies chaos, so the degraded serial path
always completes.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.analysis.executor import GameSpec, _pool_context
from repro.analysis.store import (
    HASH_FIELD,
    QUARANTINE_CAUSE,
    QUARANTINE_REASON,
    ResultStore,
)
from repro.observability.export import write_live_status
from repro.observability.flightrec import FLIGHT, dump_on_fault
from repro.observability.metrics import get_registry, scoped_registry
from repro.observability.timers import (
    WORKER_SCOPE,
    phase_attribution,
    phase_timer,
    phase_timers_enabled,
    set_phase_scope,
    set_phase_timers,
)
from repro.observability.trace import TRACER
from repro.robustness.chaos import ChaosPolicy, inject_corrupt_row

# Parent-side phase handles (module-level so the per-event cost is one
# registry identity check; see repro.observability.timers).
_T_POOL_SPAWN = phase_timer("pool-spawn")
_T_PIPE_SEND = phase_timer("pipe-send")
_T_ACK_DRAIN = phase_timer("ack-drain")
_T_LEASE_SWEEP = phase_timer("lease-sweep")
# Worker-side handles pick up the "worker:" scope set in _pool_worker;
# store fsync is timed inside ResultStore.add itself, under whichever
# scope the writing process runs.
_T_W_RECV = phase_timer("pipe-recv")
_T_W_COMPUTE = phase_timer("compute")
_T_W_SEND = phase_timer("pipe-send")

#: One work item as the scheduler hands it over: (content hash, spec).
WorkItem = Tuple[str, GameSpec]


@dataclass
class Lease:
    """One dispatched game, tracked in the parent until acknowledged.

    ``deadline`` is a monotonic-clock instant derived from the spec's
    wall-clock timeout × the pool's grace factor (plus a constant slack
    for process startup); ``None`` when the policy has no timeout, in
    which case only worker death — not expiry — can end the lease.
    """

    digest: str
    spec: GameSpec
    attempt: int
    pid: Optional[int]
    started: float
    deadline: Optional[float]


@dataclass
class _Worker:
    """Parent-side handle on one worker process and its duplex pipe.

    ``broken`` is set when the parent fails to send to or receive from
    the pipe — a torn write from a mid-ack SIGKILL, an EOF, anything —
    and is treated exactly like process death by the health sweep.
    """

    index: int
    process: Any
    conn: Any
    lease: Optional[Lease] = None
    broken: bool = False
    #: Monotonic instant of the last message (heartbeat or ack) the
    #: parent read from this worker; spawn time until then.
    last_seen: float = 0.0
    #: Games this worker has acknowledged as done.
    games: int = 0


@dataclass
class PoolOutcome:
    """What one pool drain produced.

    ``leftover`` is non-empty exactly when the pool degraded: the
    restart budget ran out and these games must be finished in-process
    by the caller.  ``quarantined`` digests also appear in ``rows`` (as
    their structured forfeit rows), so callers count them as covered.
    """

    rows: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    errors: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    leftover: List[WorkItem] = field(default_factory=list)
    restarts: int = 0
    lease_expirations: int = 0
    requeues: int = 0
    degraded: bool = False


def quarantine_row(digest: str, spec: GameSpec, losses: int) -> Dict[str, Any]:
    """The structured forfeit row a poison game is stored under.

    Shaped like an ordinary tournament row (so tables, status, and
    dedupe treat it uniformly) plus ``cause="poison"`` — the marker
    :meth:`ResultStore.quarantined` and ``campaign status`` key on.
    """
    return {
        HASH_FIELD: digest,
        "adversary": spec.adversary,
        "victim": spec.victim,
        "locality": spec.locality,
        "won": True,
        "reason": QUARANTINE_REASON,
        "forfeit": True,
        "detail": (
            f"game killed or hung {losses} worker processes; "
            "quarantined by the supervised pool"
        ),
        "error_type": "PoisonGame",
        "failed_at_step": None,
        "n": None,
        "cause": QUARANTINE_CAUSE,
    }


def _error_entry(digest: str, spec: GameSpec, detail: str) -> Dict[str, Any]:
    return {
        HASH_FIELD: digest,
        "adversary": spec.adversary,
        "victim": spec.victim,
        "locality": spec.locality,
        "error": detail,
    }


def _pool_worker(
    index: int,
    conn,
    store_root: str,
    retries: int,
    backoff: float,
    chaos: Optional[ChaosPolicy],
    timers_on: bool = False,
) -> None:
    """Worker loop: serve one leased game per pipe round-trip until the
    ``None`` sentinel.

    Each finished row is fsynced into this worker's store shard
    *before* the result is acknowledged, so a kill — of the worker or
    the parent — never loses an acknowledged game.  Store write
    failures (disk full, chaos-injected torn writes) are reported as
    structured errors, never fatal: the game is simply not acknowledged
    and the next run retries it.  Pipe sends are synchronous (no feeder
    thread): once ``conn.send`` returns, the ack is in the kernel
    buffer and survives this process's death.
    """
    # Imported here (not at module top) because campaign.py imports this
    # module; the worker body only runs in child processes.
    from repro.analysis.campaign import _play_with_retry, _store_row

    # Phase timers: adopt the parent's setting explicitly (a spawn-start
    # child would not inherit the module global) and scope every phase
    # this process records under "worker:" so merged parent snapshots
    # keep worker-side time apart from parent-side time.  The fresh
    # scoped registry matters under fork: the child inherits a *copy* of
    # the parent's counters, and shipping that copy back would double
    # every pre-fork count.
    set_phase_timers(timers_on)
    set_phase_scope(WORKER_SCOPE)
    store = ResultStore(store_root)
    if chaos is not None:
        chaos.apply_slow_start(index)
    # Parent-death detection cannot rely on pipe EOF alone: under fork,
    # a worker inherits duplicate fds of earlier workers' parent-side
    # pipe ends, so a SIGKILLed parent leaves those pipes open and a
    # blocking recv would orphan the whole fleet forever.  A reparented
    # process sees its ppid change — poll for that instead.
    parent_pid = os.getppid()
    games_served = 0
    with scoped_registry() as worker_registry:
        while True:
            try:
                with _T_W_RECV:
                    while not conn.poll(1.0):
                        if os.getppid() != parent_pid:
                            return
                    item = conn.recv()
            except (EOFError, OSError):  # parent gone
                return
            if item is None:
                try:
                    conn.send(("exit", index, None, None))
                except OSError:  # pragma: no cover - parent gone
                    pass
                return
            digest, spec, attempt = item
            # Heartbeat: tell the parent the lease was picked up.  Sent
            # before any chaos action or compute so even a game that
            # kills this worker instantly leaves a liveness mark.
            try:
                conn.send(
                    (
                        "heartbeat",
                        digest,
                        {"pid": os.getpid(), "games": games_served},
                        None,
                    )
                )
            except OSError:  # pragma: no cover - parent gone
                return
            action = None
            if chaos is not None:
                action = chaos.action_for(digest, attempt)
                if action == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                elif action == "stall":
                    # The parent's lease expiry is expected to SIGKILL us
                    # long before this loop finishes; bail out if the
                    # parent itself dies so a stalled worker never
                    # outlives it as an orphan.
                    deadline = time.monotonic() + chaos.stall_seconds
                    while time.monotonic() < deadline:
                        if os.getppid() != parent_pid:
                            return
                        time.sleep(0.2)
            try:
                with _T_W_COMPUTE:
                    outcome = _play_with_retry(spec, retries, backoff)
            except Exception as exc:
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                try:
                    conn.send(("error", digest, detail, None))
                except OSError:  # pragma: no cover - parent gone
                    return
                continue
            row = _store_row(outcome, digest)
            try:
                if action == "corrupt":
                    inject_corrupt_row(store.root, os.getpid())
                store.add(row)
            except OSError as exc:
                try:
                    conn.send(
                        (
                            "error",
                            digest,
                            f"result store write failed: {exc}",
                            None,
                        )
                    )
                except OSError:  # pragma: no cover - parent gone
                    return
                continue
            games_served += 1
            # Ship the game's own snapshot folded with this worker's
            # between-game metrics (pipe waits, fsync phases), then
            # reset so the next ack carries only its own delta.
            if outcome.metrics:
                worker_registry.merge(outcome.metrics)
            metrics = worker_registry.snapshot()
            worker_registry.reset()
            try:
                with _T_W_SEND:
                    conn.send(("done", digest, row, metrics))
            except OSError:  # pragma: no cover - parent gone
                return


class SupervisedWorkerPool:
    """Drain campaign work through leased, supervised worker processes.

    Parameters
    ----------
    store:
        The :class:`ResultStore` workers write rows into and the parent
        writes quarantine rows into.
    workers:
        Worker process count (the pool spawns at most ``len(work)``).
    retries, backoff:
        Per-game in-worker retry budget and base backoff, as in
        :class:`~repro.analysis.campaign.CampaignScheduler`.
    max_worker_restarts:
        Total worker respawns across the drain before the pool degrades
        to the caller's serial path.  ``None`` means ``max(8, 2 ×
        workers)``.
    poison_threshold:
        Worker losses (deaths + lease expirations) one game may cause
        before it is quarantined.
    lease_grace, lease_slack:
        A lease expires ``timeout × lease_grace + lease_slack`` seconds
        after dispatch (no expiry when the spec has no timeout).
    heartbeat:
        The drain loop's poll interval — how often worker health and
        lease deadlines are checked while no results arrive.
    chaos:
        Fault-injection policy shipped to workers; defaults to
        :meth:`ChaosPolicy.from_env` (i.e. the ``REPRO_CHAOS``
        environment), which resolves to None in ordinary runs.
    live_interval:
        How often (seconds) the drain loop republishes ``live.json``
        under the store root for ``repro campaign watch``; ``None``
        disables live telemetry entirely.
    live_extra:
        Extra fields merged into every live status record (the
        scheduler passes campaign-level context such as the dedupe
        count, which the pool cannot know).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int,
        retries: int = 1,
        backoff: float = 0.05,
        max_worker_restarts: Optional[int] = None,
        poison_threshold: int = 3,
        lease_grace: float = 3.0,
        lease_slack: float = 1.0,
        heartbeat: float = 0.1,
        chaos: Optional[ChaosPolicy] = None,
        live_interval: Optional[float] = 1.0,
        live_extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {poison_threshold}"
            )
        self.store = store
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.max_worker_restarts = (
            max_worker_restarts
            if max_worker_restarts is not None
            else max(8, 2 * workers)
        )
        self.poison_threshold = poison_threshold
        self.lease_grace = lease_grace
        self.lease_slack = lease_slack
        self.heartbeat = heartbeat
        self.chaos = chaos if chaos is not None else ChaosPolicy.from_env()
        self.live_interval = live_interval
        self.live_extra = dict(live_extra) if live_extra else {}
        self._last_live = 0.0
        self._max_queue_depth = 0
        self._max_in_flight = 0

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def run(self, work: List[WorkItem]) -> PoolOutcome:
        """Play every work item; returns the :class:`PoolOutcome`.

        Never raises on worker failure: lost games are requeued or
        quarantined, and a exhausted restart budget surfaces as
        ``leftover`` work for the caller's serial path.
        """
        ctx = _pool_context()
        self._specs = dict(work)
        registry = get_registry()
        outcome = PoolOutcome()
        pending: Deque[WorkItem] = deque(work)
        attempts: Dict[str, int] = {}
        losses: Dict[str, int] = {}
        pool_size = min(self.workers, len(work))
        total = len(work)
        FLIGHT.record("pool-start", workers=pool_size, games=total)
        fleet: List[_Worker] = [
            self._spawn(ctx, index) for index in range(pool_size)
        ]

        with TRACER.span("worker-pool", workers=pool_size) as span:
            while True:
                for worker in fleet:
                    if worker.lease is None:
                        self._dispatch(worker, pending, outcome.rows, attempts)
                busy = any(worker.lease is not None for worker in fleet)
                remaining = any(d not in outcome.rows for d, _ in pending)
                if not busy and not remaining:
                    break
                if not fleet:
                    # Every worker slot is gone and the budget with it.
                    self._degrade(outcome, pending, fleet, registry)
                    break
                self._drain_one(fleet, outcome, registry)
                if not self._sweep_health(
                    ctx, fleet, pending, outcome, attempts, losses, registry
                ):
                    self._degrade(outcome, pending, fleet, registry)
                    break
                with _T_LEASE_SWEEP:
                    self._publish_live(
                        fleet, pending, outcome, total, registry, done=False
                    )
            with _T_LEASE_SWEEP:
                self._shutdown(fleet)
                registry.set("campaign_queue_depth", self._max_queue_depth)
                registry.set("campaign_in_flight", self._max_in_flight)
                self._publish_live(
                    fleet, pending, outcome, total, registry, done=True
                )
            FLIGHT.record(
                "pool-finished",
                games=len(outcome.rows),
                errors=len(outcome.errors),
                restarts=outcome.restarts,
                degraded=outcome.degraded,
            )
            span.note(
                restarts=outcome.restarts,
                lease_expirations=outcome.lease_expirations,
                requeues=outcome.requeues,
                quarantined=len(outcome.quarantined),
                degraded=outcome.degraded,
            )
        return outcome

    def _publish_live(
        self,
        fleet: List[_Worker],
        pending: Deque[WorkItem],
        outcome: PoolOutcome,
        total: int,
        registry,
        done: bool,
    ) -> None:
        """Track queue gauges and (rate-limited) rewrite ``live.json``.

        Telemetry, not bookkeeping: any failure here is swallowed by
        :func:`write_live_status` rather than surfacing in the drain.
        """
        queue_depth = sum(1 for d, _ in pending if d not in outcome.rows)
        in_flight = sum(1 for w in fleet if w.lease is not None)
        if queue_depth > self._max_queue_depth:
            self._max_queue_depth = queue_depth
        if in_flight > self._max_in_flight:
            self._max_in_flight = in_flight
        if self.live_interval is None:
            return
        now = time.monotonic()
        if not done and now - self._last_live < self.live_interval:
            return
        self._last_live = now
        status: Dict[str, Any] = dict(self.live_extra)
        status.update(
            {
                "done": done,
                "monotonic": now,
                "games_total": total,
                "games_played": len(outcome.rows),
                "games_errors": len(outcome.errors),
                "games_quarantined": len(outcome.quarantined),
                "games_requeued": outcome.requeues,
                "worker_restarts": outcome.restarts,
                "queue_depth": queue_depth,
                "in_flight": in_flight,
                "workers": [
                    {
                        "index": w.index,
                        "pid": w.process.pid,
                        "state": (
                            "broken"
                            if w.broken
                            else ("busy" if w.lease is not None else "idle")
                        ),
                        "last_seen": w.last_seen,
                        "games": w.games,
                    }
                    for w in fleet
                ],
                "phases": phase_attribution(registry.snapshot()),
            }
        )
        write_live_status(self.store.root, status)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, ctx, index: int) -> _Worker:
        with _T_POOL_SPAWN:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_pool_worker,
                args=(
                    index,
                    child_conn,
                    self.store.root,
                    self.retries,
                    self.backoff,
                    self.chaos,
                    phase_timers_enabled(),
                ),
                daemon=True,
            )
            process.start()
            # Drop the parent's copy of the child end so a dead worker
            # reads as EOF instead of a silent hang.
            child_conn.close()
        TRACER.event("worker-spawned", worker=index, pid=process.pid)
        FLIGHT.record("worker-spawned", worker=index, pid=process.pid)
        return _Worker(
            index=index,
            process=process,
            conn=parent_conn,
            last_seen=time.monotonic(),
        )

    def _dispatch(
        self,
        worker: _Worker,
        pending: Deque[WorkItem],
        rows: Dict[str, Dict[str, Any]],
        attempts: Dict[str, int],
    ) -> None:
        while pending:
            digest, spec = pending.popleft()
            if digest in rows:
                continue  # answered while waiting (stale-done race)
            attempt = attempts.get(digest, 0) + 1
            attempts[digest] = attempt
            timeout = spec.policy.timeout
            now = time.monotonic()
            deadline = (
                None
                if timeout is None
                else now + timeout * self.lease_grace + self.lease_slack
            )
            worker.lease = Lease(
                digest=digest,
                spec=spec,
                attempt=attempt,
                pid=worker.process.pid,
                started=now,
                deadline=deadline,
            )
            FLIGHT.record(
                "dispatch", worker=worker.index, digest=digest, attempt=attempt
            )
            try:
                with _T_PIPE_SEND:
                    worker.conn.send((digest, spec, attempt))
            except OSError:
                # Worker already dead: undo the dispatch (keeping the
                # attempt numbering aligned with actual plays) and let
                # the health sweep reap it.
                worker.lease = None
                worker.broken = True
                attempts[digest] = attempt - 1
                pending.appendleft((digest, spec))
            return

    def _drain_one(
        self, fleet: List[_Worker], outcome: PoolOutcome, registry
    ) -> None:
        by_conn = {
            worker.conn: worker
            for worker in fleet
            if worker.conn is not None and not worker.broken
        }
        if not by_conn:
            time.sleep(self.heartbeat)
            return
        with _T_ACK_DRAIN:
            ready = _connection_wait(list(by_conn), timeout=self.heartbeat)
            for conn in ready:
                worker = by_conn[conn]
                try:
                    message = conn.recv()
                except Exception:
                    # EOF (dead worker) or a torn/garbled ack: only this
                    # worker's channel is poisoned.  The sweep reaps it.
                    worker.broken = True
                    continue
                self._handle_message(worker, message, outcome, registry)

    def _handle_message(
        self, worker: _Worker, message, outcome: PoolOutcome, registry
    ) -> None:
        try:
            kind, digest, payload, metrics = message
        except (TypeError, ValueError):  # pragma: no cover - malformed
            worker.broken = True
            return
        worker.last_seen = time.monotonic()
        if kind == "exit":
            return
        if kind == "heartbeat":
            # Liveness only — the lease stays open until the real ack.
            registry.inc("campaign_worker_heartbeats")
            return
        if worker.lease is not None and worker.lease.digest == digest:
            worker.lease = None
        if kind == "error":
            outcome.errors.append(
                _error_entry(digest, self._specs[digest], payload)
            )
            FLIGHT.record(
                "game-error", worker=worker.index, digest=digest
            )
            return
        worker.games += 1
        if digest not in outcome.rows:
            outcome.rows[digest] = payload
        if metrics:
            registry.merge(metrics)

    def _salvage(
        self, worker: _Worker, outcome: PoolOutcome, registry
    ) -> None:
        """Recover intact acks buffered in a dead worker's pipe.

        A worker may finish (fsync + ack) and then die before the drain
        reads the ack; the bytes survive in the kernel buffer, so read
        until EOF or the first tear rather than discarding them.
        """
        if worker.conn is None:
            return
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except Exception:
                return
            self._handle_message(worker, message, outcome, registry)

    def _sweep_health(
        self,
        ctx,
        fleet: List[_Worker],
        pending: Deque[WorkItem],
        outcome: PoolOutcome,
        attempts: Dict[str, int],
        losses: Dict[str, int],
        registry,
    ) -> bool:
        """Reap dead workers and expired leases; respawn replacements.

        Returns False when a replacement is needed but the restart
        budget is exhausted — the signal to degrade.
        """
        now = time.monotonic()
        for worker in list(fleet):
            # The respawn below runs outside the lease-sweep timing so
            # its cost lands in the pool-spawn phase, not twice.
            with _T_LEASE_SWEEP:
                dead = worker.broken or not worker.process.is_alive()
                expired = (
                    not dead
                    and worker.lease is not None
                    and worker.lease.deadline is not None
                    and now > worker.lease.deadline
                )
                if not dead and not expired:
                    continue
                if expired:
                    outcome.lease_expirations += 1
                    registry.inc("campaign_lease_expirations")
                    TRACER.event(
                        "lease-expired",
                        worker=worker.index,
                        pid=worker.process.pid,
                        digest=worker.lease.digest,
                        attempt=worker.lease.attempt,
                    )
                    dump_on_fault(
                        self.store.root,
                        "lease-expired",
                        worker=worker.index,
                        pid=worker.process.pid,
                        digest=worker.lease.digest,
                        attempt=worker.lease.attempt,
                    )
                worker.process.kill()
                worker.process.join()
                TRACER.event(
                    "worker-died",
                    worker=worker.index,
                    pid=worker.process.pid,
                    exitcode=worker.process.exitcode,
                    cause="lease-expired" if expired else "worker-death",
                )
                FLIGHT.record(
                    "worker-died",
                    worker=worker.index,
                    pid=worker.process.pid,
                    exitcode=worker.process.exitcode,
                    cause="lease-expired" if expired else "worker-death",
                )
                self._salvage(worker, outcome, registry)
                self._close_conn(worker.conn)
                fleet.remove(worker)
            # Loss accounting may fsync a quarantine row — that time
            # belongs to store-fsync, a sibling top-level phase, so it
            # must not run nested inside the lease-sweep timing.
            if worker.lease is not None:
                self._account_loss(
                    worker.lease, pending, outcome, losses, registry
                )
            with _T_LEASE_SWEEP:
                if outcome.restarts >= self.max_worker_restarts:
                    return False
                outcome.restarts += 1
                registry.inc("campaign_worker_restarts")
            fleet.append(self._spawn(ctx, worker.index))
        return True

    def _account_loss(
        self,
        lease: Lease,
        pending: Deque[WorkItem],
        outcome: PoolOutcome,
        losses: Dict[str, int],
        registry,
    ) -> None:
        """Requeue a lost in-flight game, or quarantine a poison one."""
        digest = lease.digest
        if digest in outcome.rows:
            return  # acknowledged just before the worker was lost
        losses[digest] = losses.get(digest, 0) + 1
        if losses[digest] >= self.poison_threshold:
            # The store write self-times as store-fsync; the flight dump
            # and bookkeeping around it count as lease-sweep, kept in
            # separate blocks so the two top-level phases never nest.
            row = quarantine_row(digest, lease.spec, losses[digest])
            self.store.add(row)
            with _T_LEASE_SWEEP:
                outcome.rows[digest] = row
                outcome.quarantined.append(digest)
                registry.inc("campaign_games_quarantined")
                TRACER.event(
                    "game-quarantined",
                    digest=digest,
                    adversary=lease.spec.adversary,
                    victim=lease.spec.victim,
                    locality=lease.spec.locality,
                    losses=losses[digest],
                )
                dump_on_fault(
                    self.store.root,
                    "game-quarantined",
                    digest=digest,
                    adversary=lease.spec.adversary,
                    victim=lease.spec.victim,
                    losses=losses[digest],
                )
            return
        with _T_LEASE_SWEEP:
            pending.append((digest, lease.spec))
            outcome.requeues += 1
            registry.inc("campaign_games_requeued")
            TRACER.event(
                "game-requeued",
                digest=digest,
                attempt=lease.attempt,
                losses=losses[digest],
            )
            FLIGHT.record(
                "game-requeued",
                digest=digest,
                attempt=lease.attempt,
                losses=losses[digest],
            )

    # ------------------------------------------------------------------
    # Degradation and shutdown
    # ------------------------------------------------------------------
    def _degrade(
        self,
        outcome: PoolOutcome,
        pending: Deque[WorkItem],
        fleet: List[_Worker],
        registry,
    ) -> None:
        """Restart budget exhausted: stop the pool, hand work back."""
        outcome.degraded = True
        leftover: List[WorkItem] = []
        seen = set()
        for worker in fleet:
            worker.process.kill()
            worker.process.join()
            self._salvage(worker, outcome, registry)
            self._close_conn(worker.conn)
            if worker.lease is not None:
                lease = worker.lease
                if lease.digest not in outcome.rows:
                    leftover.append((lease.digest, lease.spec))
                    seen.add(lease.digest)
                worker.lease = None
        fleet.clear()
        for digest, spec in pending:
            if digest not in outcome.rows and digest not in seen:
                leftover.append((digest, spec))
                seen.add(digest)
        pending.clear()
        outcome.leftover = leftover
        registry.inc("campaign_pool_degradations")
        TRACER.event(
            "pool-degraded",
            remaining=len(leftover),
            restarts=outcome.restarts,
            budget=self.max_worker_restarts,
        )
        dump_on_fault(
            self.store.root,
            "pool-degraded",
            remaining=len(leftover),
            restarts=outcome.restarts,
            budget=self.max_worker_restarts,
        )

    def _shutdown(self, fleet: List[_Worker]) -> None:
        """Retire the surviving workers (sentinel, join, kill stragglers)."""
        for worker in fleet:
            if worker.process.is_alive() and not worker.broken:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):  # pragma: no cover - closed
                    pass
        deadline = time.monotonic() + 5.0
        for worker in fleet:
            remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(timeout=remaining)
            if worker.process.is_alive():  # pragma: no cover - straggler
                worker.process.kill()
                worker.process.join()
            self._close_conn(worker.conn)
        fleet.clear()

    @staticmethod
    def _close_conn(conn) -> None:
        try:
            conn.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
