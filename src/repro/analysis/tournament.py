"""The adversary tournament: every lower bound vs every victim, one call.

``run_tournament()`` plays the full cartesian product of

* adversaries — Theorem 1 (grids), Theorem 2 (torus + cylinder),
  Theorem 3 (gadgets, both the 2k−2 and the k+1 color budgets), and
  Theorem 5 (the reduction chain), and
* victims — greedy, the truncated Akbari algorithm, and the sandwiched
  LOCAL baseline,

returning structured rows for reporting.  Used by
``examples/tournament.py`` and ``benchmarks/bench_tournament.py``; the
paper's prediction is a clean sweep, which callers assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adversaries.gadget import GadgetAdversary
from repro.adversaries.grid import GridAdversary
from repro.adversaries.reduction import reduce_to_grid
from repro.adversaries.torus import TorusAdversary
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.core.unify import UnifyColoring
from repro.models.base import OnlineAlgorithm
from repro.models.simulation import LocalAsOnline
from repro.oracles import CliqueChainOracle


@dataclass
class TournamentRow:
    """One adversary-vs-victim game outcome."""

    adversary: str
    victim: str
    locality: int
    won: bool
    reason: str


def default_victims() -> Dict[str, Callable[[], OnlineAlgorithm]]:
    """The standard victim portfolio."""
    return {
        "greedy": GreedyOnlineColorer,
        "akbari": AkbariBipartiteColoring,
        "local-canonical": lambda: LocalAsOnline(CanonicalLocalColorer()),
    }


def default_adversaries(locality: int) -> Dict[str, Callable[[OnlineAlgorithm], object]]:
    """The standard adversary lineup at the given victim locality."""
    return {
        "theorem1-grid": lambda victim: GridAdversary(locality=locality).run(
            victim
        ),
        "theorem2-torus": lambda victim: TorusAdversary(
            locality=locality, topology="torus"
        ).run(victim),
        "theorem2-cylinder": lambda victim: TorusAdversary(
            locality=locality, topology="cylinder"
        ).run(victim),
        "theorem3-gadget(2k-2)": lambda victim: GadgetAdversary(
            k=3, locality=locality
        ).run(victim),
        "corollary13-gadget(k+1)": lambda victim: GadgetAdversary(
            k=3, locality=locality, colors=4
        ).run(victim),
        "theorem5-reduction": lambda victim: GridAdversary(
            locality=locality
        ).run(
            reduce_to_grid(UnifyColoring(CliqueChainOracle(3, 3)), k=3)
        ),
    }


def run_tournament(
    locality: int = 1,
    victims: Optional[Dict[str, Callable[[], OnlineAlgorithm]]] = None,
    adversaries: Optional[Dict[str, Callable]] = None,
) -> List[TournamentRow]:
    """Play every pairing; returns one row per game.

    Note the Theorem 5 entry ignores the supplied victim (its victim is
    the reduced hierarchy colorer by construction); it is played once
    per victim anyway so the sweep stays rectangular.
    """
    victims = victims if victims is not None else default_victims()
    adversaries = (
        adversaries if adversaries is not None else default_adversaries(locality)
    )
    rows: List[TournamentRow] = []
    for adversary_name, play in adversaries.items():
        for victim_name, factory in victims.items():
            result = play(factory())
            rows.append(
                TournamentRow(
                    adversary=adversary_name,
                    victim=victim_name,
                    locality=locality,
                    won=result.won,
                    reason=result.reason,
                )
            )
    return rows


def clean_sweep(rows: List[TournamentRow]) -> bool:
    """Whether the adversaries won every game — the paper's prediction."""
    return all(row.won for row in rows)
