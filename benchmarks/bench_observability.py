"""Experiment OBSERVABILITY: the instrumentation must be ~free when off.

The simulators' hot paths (every reveal, every ball query) now carry
metric increments and a tracing guard.  This benchmark quantifies what
that costs by timing the same adversary workload under three configs:

``suppressed``
    A :class:`~repro.observability.metrics.NullRegistry` is active and
    tracing is off — the no-op reference approximating the
    pre-instrumentation hot path.
``off``
    The shipped default: a live :class:`MetricsRegistry`, tracing off.
``traced``
    Full tracing to a JSON-lines file plus live metrics.

The acceptance bar (asserted here and in CI): the ``off`` config — what
every user pays whether or not they ever look at a metric — stays
within **3%** of ``suppressed``.  Tracing itself is allowed to cost
more; its price is reported, not bounded.

Run as a script to emit machine-readable results::

    PYTHONPATH=src python benchmarks/bench_observability.py \
        --out BENCH_observability.json
"""

import argparse
import json
import os
import tempfile
import time

from repro.adversaries.grid import GridAdversary
from repro.analysis.tables import render_table
from repro.core.baselines import GreedyOnlineColorer
from repro.observability.metrics import NullRegistry, scoped_registry
from repro.observability.trace import tracing

#: Overhead bound for the tracing-off configuration.
MAX_OFF_OVERHEAD = 0.03


def play_games(localities=(1, 2), rounds=2):
    """The fixed workload: Theorem 1 games against greedy (deterministic,
    reveal-heavy — the exact paths the instrumentation touches)."""
    for _ in range(rounds):
        for locality in localities:
            result = GridAdversary(locality=locality).run(
                GreedyOnlineColorer()
            )
            assert result.won, "workload game must be a win"


def _timed(workload) -> float:
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


def _run_once(mode: str, workload, trace_dir: str, attempt: int) -> float:
    if mode == "suppressed":
        with scoped_registry(NullRegistry()):
            return _timed(workload)
    if mode == "off":
        with scoped_registry():
            return _timed(workload)
    if mode == "traced":
        trace_file = os.path.join(trace_dir, f"trace-{attempt}.jsonl")
        with scoped_registry():
            with tracing(trace_file):
                return _timed(workload)
    raise ValueError(f"unknown mode {mode!r}")


def time_configs(modes, workload, trace_dir: str, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock per configuration.

    Repeats are **interleaved** round-robin over the configs (not run as
    consecutive blocks) so slow drift — thermal, page cache, a noisy
    neighbor — hits every config alike instead of biasing whichever
    block it landed on; the minimum then suppresses the remaining
    point noise.
    """
    best = {mode: None for mode in modes}
    for attempt in range(repeats):
        for mode in modes:
            seconds = _run_once(mode, workload, trace_dir, attempt)
            current = best[mode]
            best[mode] = seconds if current is None else min(current, seconds)
    return best


def run_bench(localities=(1, 2), rounds=2, repeats=9):
    workload = lambda: play_games(localities, rounds)  # noqa: E731
    workload()  # warm-up: imports, allocator, branch predictors

    with tempfile.TemporaryDirectory(prefix="bench-observability-") as tmp:
        timings = time_configs(
            ("suppressed", "off", "traced"), workload, tmp, repeats
        )

    def overhead(mode, reference):
        return timings[mode] / timings[reference] - 1.0

    return {
        "experiment": "observability-overhead",
        "localities": list(localities),
        "rounds": rounds,
        "repeats": repeats,
        "seconds": timings,
        "off_overhead_vs_suppressed": overhead("off", "suppressed"),
        "traced_overhead_vs_off": overhead("traced", "off"),
        "max_off_overhead": MAX_OFF_OVERHEAD,
        "off_within_bound": overhead("off", "suppressed") < MAX_OFF_OVERHEAD,
    }


def test_tracing_off_overhead_under_3_percent():
    report = run_bench(localities=(1, 2), rounds=2, repeats=9)
    assert report["off_within_bound"], (
        f"tracing-off overhead {report['off_overhead_vs_suppressed']:.2%} "
        f"exceeds the {MAX_OFF_OVERHEAD:.0%} budget"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--localities", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--out", default="BENCH_observability.json")
    args = parser.parse_args(argv)

    report = run_bench(
        localities=tuple(args.localities),
        rounds=args.rounds,
        repeats=args.repeats,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(render_table(
        ["config", "seconds"],
        [[mode, f"{seconds:.4f}"]
         for mode, seconds in sorted(report["seconds"].items())],
    ))
    print(f"tracing-off overhead: {report['off_overhead_vs_suppressed']:+.2%} "
          f"(budget {MAX_OFF_OVERHEAD:.0%})")
    print(f"tracing-on overhead:  {report['traced_overhead_vs_off']:+.2%}")
    print(f"wrote {args.out}")
    if not report["off_within_bound"]:
        print("FAIL: tracing-off overhead exceeds budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
