"""Shared types for the model simulators.

Colors are 1-based integers (the paper's ``{1, 2, 3}`` with color 3 playing
a special role in the b-value machinery).  Node identifiers in algorithm
views are opaque integers assigned by the adversary/simulator; algorithms
must not read anything into them beyond equality.

The central contract is :class:`OnlineAlgorithm`:

* ``reset(n, locality, num_colors)`` starts a fresh execution; the
  algorithm is told ``n`` (the paper assumes algorithms know ``n``), its
  locality budget, and the color budget.
* ``step(view, target)`` is called when the adversary reveals the node
  with id ``target``.  The view contains the abstract graph :math:`G_i`
  (the induced subgraph of the union of revealed balls), all previously
  committed colors, and the reveal sequence.  The algorithm returns a
  mapping ``id -> color`` that *must* color ``target`` and *may* color any
  other seen, currently uncolored node (the paper's algorithms commit
  whole boundary layers during parity flips).

The :class:`ViewTracker` enforces the rules: colors are final, only seen
nodes may be colored, colors lie in ``1..num_colors``.  Both the
fixed-host simulator and the adaptive adversarial instances delegate to
it, so every algorithm runs under identical legality checks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping as _MappingABC
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.graphs.graph import Graph
from repro.robustness.errors import (
    InvalidColorError,
    LocalityViolation,
    ProtocolViolation,
    RecoloringError,
)

Color = int
NodeId = int

#: Raised when an algorithm violates the model contract — coloring an
#: unseen node (exceeding its locality), recoloring a node, using a color
#: outside ``1..num_colors``, or failing to color the revealed node.
#: An alias of :class:`~repro.robustness.errors.ProtocolViolation`, so
#: ``except AlgorithmError`` catches every specific violation subclass
#: (:class:`InvalidColorError`, :class:`LocalityViolation`, ...).
AlgorithmError = ProtocolViolation


@dataclass
class AlgorithmView:
    """What an Online-LOCAL algorithm sees when a node is revealed.

    Attributes
    ----------
    graph:
        The abstract seen region :math:`G_i` — ids and edges only.
        Treat as read-only; it is shared with the simulator.
    colors:
        Colors committed so far, ``id -> color``.  Treat as read-only.
    reveal_sequence:
        Ids in the order the adversary revealed them (prefix of σ).
    n:
        Number of nodes of the host graph.
    locality:
        The locality budget ``T`` the view was generated with.
    """

    graph: Graph
    colors: Dict[NodeId, Color]
    reveal_sequence: List[NodeId]
    n: int
    locality: int

    def uncolored(self) -> List[NodeId]:
        """Seen ids with no committed color."""
        return [node for node in self.graph.nodes() if node not in self.colors]


class OnlineAlgorithm(ABC):
    """A deterministic Online-LOCAL algorithm.

    Subclasses may keep arbitrary global memory between steps — that is
    the defining power of the Online-LOCAL model.
    """

    #: Human-readable name used in benchmark tables.
    name: str = "online-algorithm"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        """Start a fresh execution.  Subclasses overriding this should call
        ``super().reset(...)``."""
        self.n = n
        self.locality = locality
        self.num_colors = num_colors

    @abstractmethod
    def step(self, view: AlgorithmView, target: NodeId) -> Mapping[NodeId, Color]:
        """Color the revealed node ``target`` (and optionally others)."""


class ViewTracker:
    """Maintains the abstract view and enforces algorithm legality.

    The tracker owns the view graph; simulators feed it ``(new nodes, new
    edges)`` increments as balls are revealed, then call :meth:`reveal` to
    run one algorithm step.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        n: int,
        locality: int,
        num_colors: int,
    ) -> None:
        if locality < 0:
            raise ValueError(f"locality must be non-negative, got {locality}")
        if num_colors < 1:
            raise ValueError(f"need at least one color, got {num_colors}")
        self.algorithm = algorithm
        self.n = n
        self.locality = locality
        self.num_colors = num_colors
        self.view_graph = Graph()
        self.colors: Dict[NodeId, Color] = {}
        self.reveal_sequence: List[NodeId] = []
        #: The assignment returned by the most recent step (adversaries
        #: use it to detect freshly created improper edges cheaply).
        self.last_assignment: Dict[NodeId, Color] = {}
        algorithm.reset(n=n, locality=locality, num_colors=num_colors)

    # ------------------------------------------------------------------
    # Growing the view
    # ------------------------------------------------------------------
    def extend(
        self,
        new_nodes: Iterable[NodeId],
        new_edges: Iterable[Tuple[NodeId, NodeId]],
    ) -> None:
        """Add nodes and edges to the seen region (idempotent)."""
        for node in new_nodes:
            self.view_graph.add_node(node)
        for u, v in new_edges:
            self.view_graph.add_edge(u, v)

    # ------------------------------------------------------------------
    # Stepping the algorithm
    # ------------------------------------------------------------------
    def reveal(self, target: NodeId) -> Color:
        """Run one algorithm step for the revealed id ``target``.

        The seen region must already contain ``target`` (the simulator
        extends the view with the ball before calling this).

        Returns the color assigned to ``target``.
        """
        if target not in self.view_graph:
            raise ValueError(
                f"simulator bug: revealed id {target} not added to view first"
            )
        self.reveal_sequence.append(target)
        view = AlgorithmView(
            graph=self.view_graph,
            colors=self.colors,
            reveal_sequence=self.reveal_sequence,
            n=self.n,
            locality=self.locality,
        )
        raw = self.algorithm.step(view, target)
        if not isinstance(raw, _MappingABC):
            raise ProtocolViolation(
                f"{self.algorithm.name}: step returned "
                f"{type(raw).__name__}, expected a node->color mapping"
            )
        assignment = dict(raw)
        self._apply(assignment, target)
        self.last_assignment = assignment
        return self.colors[target]

    def monochromatic_in_last_step(self) -> bool:
        """Whether the latest assignment created a monochromatic edge."""
        for node, color in self.last_assignment.items():
            for neighbor in self.view_graph.neighbors(node):
                if self.colors.get(neighbor) == color:
                    return True
        return False

    def _apply(self, assignment: Dict[NodeId, Color], target: NodeId) -> None:
        if target not in assignment and target not in self.colors:
            raise ProtocolViolation(
                f"{self.algorithm.name}: revealed node {target} was not colored"
            )
        for node, color in assignment.items():
            if node not in self.view_graph:
                raise LocalityViolation(
                    f"{self.algorithm.name}: colored unseen node {node} "
                    f"(locality violation)"
                )
            if node in self.colors:
                if self.colors[node] != color:
                    raise RecoloringError(
                        f"{self.algorithm.name}: recolored node {node} "
                        f"({self.colors[node]} -> {color})"
                    )
                continue
            if not isinstance(color, int) or not 1 <= color <= self.num_colors:
                raise InvalidColorError(
                    f"{self.algorithm.name}: color {color!r} outside "
                    f"1..{self.num_colors}"
                )
            self.colors[node] = color
