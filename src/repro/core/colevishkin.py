"""Cole–Vishkin 3-coloring of directed paths and cycles in O(log* n) rounds.

The paper's Section 2.2 gives the round-based view of the LOCAL model:
``T`` synchronous rounds = locality ``T``.  The classic Cole–Vishkin
color-reduction is *the* canonical algorithm of that model, and the
paper's surrounding literature (LCL problems on paths and cycles having
the same locality across all five models) leans on it.  This module
implements it as a faithful synchronous simulation:

1. every node starts with its unique identifier as its color;
2. each round, node ``v`` looks at its successor's color, finds the
   lowest bit position ``i`` where the two colors differ, and recolors
   itself ``2*i + bit_i(color_v)`` — after O(log* n) rounds all colors
   are below 6;
3. three final rounds eliminate colors 5, 4, 3 (each such node picks the
   smallest color in {0,1,2} unused by its neighbors).

The returned round count is the algorithm's locality; tests check it
against the log* bound.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def log_star(n: int) -> int:
    """The iterated logarithm: how many times log2 until ≤ 1."""
    if n < 1:
        raise ValueError(f"log* needs a positive argument, got {n}")
    count = 0
    value = float(n)
    while value > 1.0:
        value = __import__("math").log2(value)
        count += 1
    return count


def _cv_step(color: int, successor_color: int) -> int:
    """One Cole–Vishkin reduction for a single node."""
    differing = color ^ successor_color
    if differing == 0:
        raise ValueError("adjacent nodes share a color; ids must be unique")
    index = (differing & -differing).bit_length() - 1
    bit = (color >> index) & 1
    return 2 * index + bit


def three_color_directed_path(
    ids: Sequence[int], cyclic: bool = False
) -> Tuple[List[int], int]:
    """3-color a directed path (or cycle) of nodes carrying unique ids.

    Parameters
    ----------
    ids:
        Unique non-negative identifiers, in path order; ``ids[i+1]`` is
        the successor of ``ids[i]`` (and ``ids[0]`` succeeds ``ids[-1]``
        when ``cyclic``).
    cyclic:
        Whether the topology is a cycle.

    Returns
    -------
    (colors, rounds):
        Proper colors in ``{1, 2, 3}`` and the number of synchronous
        rounds used (the LOCAL locality).

    Raises
    ------
    ValueError
        On duplicate ids, negative ids, or a too-short cycle.
    """
    n = len(ids)
    if n == 0:
        return [], 0
    if len(set(ids)) != n:
        raise ValueError("identifiers must be unique")
    if any(i < 0 for i in ids):
        raise ValueError("identifiers must be non-negative")
    if cyclic and n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    if n == 1:
        return [1], 0

    colors = list(ids)
    rounds = 0

    def successor(index: int) -> int:
        if index + 1 < n:
            return index + 1
        return 0 if cyclic else -1

    # Phase 1: iterated reduction to colors < 6.
    while max(colors) >= 6:
        new_colors = []
        for index in range(n):
            succ = successor(index)
            if succ == -1:
                # Tail of a path: reduce against a virtual successor that
                # differs in bit 0, so the standard proof still applies.
                virtual = colors[index] ^ 1
                new_colors.append(_cv_step(colors[index], virtual))
            else:
                new_colors.append(_cv_step(colors[index], colors[succ]))
        colors = new_colors
        rounds += 1

    # Phase 2: three shift rounds remove colors 5, 4, 3.
    for retired in (5, 4, 3):
        new_colors = list(colors)
        for index in range(n):
            if colors[index] != retired:
                continue
            neighbors = set()
            if index > 0:
                neighbors.add(colors[index - 1])
            elif cyclic:
                neighbors.add(colors[-1])
            if index + 1 < n:
                neighbors.add(colors[index + 1])
            elif cyclic:
                neighbors.add(colors[0])
            new_colors[index] = min(c for c in (0, 1, 2) if c not in neighbors)
        colors = new_colors
        rounds += 1

    return [c + 1 for c in colors], rounds


def round_bound(max_id: int) -> int:
    """A safe upper bound on the rounds Cole–Vishkin uses.

    log*(max_id) + constant slack for the 6-to-3 shifts and the last
    slow reduction steps (2·ceil(log K)+... stabilizes at 6 within a few
    extra iterations).
    """
    return log_star(max(2, max_id)) + 8
