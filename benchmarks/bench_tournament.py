"""Experiment TOURNAMENT: all adversaries vs all victims, clean sweep.

Also a useful regression net: any change weakening an adversary or
super-powering a victim breaks the sweep assertion immediately.

Run as a script to benchmark the parallel executor and the
neighborhood-ball cache, emitting machine-readable results::

    PYTHONPATH=src python benchmarks/bench_tournament.py \
        --localities 1 2 3 --workers 1 2 4 --out BENCH_tournament.json

The benchmark fans the full default portfolio at every requested
locality through one :class:`~repro.analysis.executor.ParallelSweep`
(48 games for three localities), so worker pools have enough
independent games to balance.  The JSON records serial wall-clock,
per-worker-count wall-clock and speedup, ball-cache hit rates — both
the cold first pass (with per-reveal query/hit breakdowns) and the warm
whole-session aggregate — and whether every parallel sweep returned
byte-identical rows to the serial one (it must).  Reported speedup is bounded by the host's core count —
on a single-core container the parallel columns measure pure pool
overhead.

The ``campaign_scaling`` section exercises the supervised worker pool
(chunked leases, warm forkserver workers, shared ball segment) at each
worker count, recording per-leg wall-clock, speedup over the serial
leg, store-index equality, a degenerate ``chunk_size=1`` leg, and the
scheduling configuration the numbers were taken under.  ``--check``
turns the report into a gate: rows must match serial, phase coverage
must clear :data:`MIN_PHASE_COVERAGE`, the parent's ack-drain share
must stay under :data:`MAX_ACK_DRAIN_SHARE`, and — only on hosts with
at least two cores, where parallelism is physically possible — the
2-worker leg must beat serial.
"""

import argparse
import json
import os
import tempfile
import time

import pytest

from repro.analysis.executor import GameSpec, ParallelSweep
from repro.analysis.tables import render_table
from repro.analysis.tournament import (
    FIXED_VICTIM,
    FixedVictimGame,
    clean_sweep,
    default_adversaries,
    default_victims,
    run_tournament,
)
from repro.analysis.worker_pool import (
    DEFAULT_MAX_CHUNK,
    pool_start_context,
    shutdown_warm_pool,
    warm_pool_enabled,
)
from repro.graphs.csr import get_graph_backend, set_graph_backend
from repro.graphs.shared_pool import shared_balls_enabled
from repro.graphs.traversal import BallCache
from repro.observability.metrics import get_registry
from repro.robustness.supervisor import GamePolicy


@pytest.mark.parametrize("locality", (1, 2))
def test_clean_sweep(locality):
    rows = run_tournament(locality=locality)
    print()
    print(f"Tournament at T={locality}:")
    print(render_table(
        ["adversary", "victim", "verdict"],
        [[r.adversary, r.victim, "defeated" if r.won else "SURVIVED"]
         for r in rows],
    ))
    assert clean_sweep(rows), [r for r in rows if not r.won]
    # 5 sweeping adversaries x 3 victims + 1 fixed-victim reduction game.
    assert len(rows) == 16


def test_parallel_sweep_matches_serial():
    serial = run_tournament(locality=1, workers=1)
    parallel = run_tournament(locality=1, workers=2)
    assert parallel == serial


def test_bench_tournament(benchmark):
    rows = benchmark(lambda: run_tournament(locality=1))
    assert clean_sweep(rows)


def sweep_specs(localities, policy=None):
    """The full default portfolio at every locality, as picklable specs."""
    policy = policy if policy is not None else GamePolicy(timeout=30.0)
    specs = []
    for locality in localities:
        for name, entry in default_adversaries(locality).items():
            if isinstance(entry, FixedVictimGame):
                victims = [FIXED_VICTIM]
            else:
                victims = list(default_victims())
            for victim in victims:
                specs.append(GameSpec(name, victim, locality, policy))
    return specs


def _timed_sweep(specs, workers):
    start = time.perf_counter()
    rows = ParallelSweep(workers).run(specs)
    return rows, time.perf_counter() - start


def run_backend_comparison(specs, repeats=3):
    """Cold serial sweep wall-clock per traversal backend.

    The ball pool is cleared before every pass so each one pays the full
    miss-path extraction cost — the component the ``dict``/``csr``
    backends actually differ on (warm passes are ~all hits and
    backend-independent).  Rows must be byte-identical across backends.
    """
    timings = {}
    baseline_rows = None
    identical = True
    for backend in ("dict", "csr"):
        previous = set_graph_backend(backend)
        try:
            best = None
            rows = None
            for _ in range(repeats):
                BallCache.reset()
                rows, seconds = _timed_sweep(specs, 1)
                best = seconds if best is None else min(best, seconds)
        finally:
            set_graph_backend(previous)
        if baseline_rows is None:
            baseline_rows = rows
        else:
            identical = identical and rows == baseline_rows
        timings[backend] = best
    return {
        "cold_serial_seconds": timings,
        "speedup": timings["dict"] / timings["csr"] if timings["csr"] else None,
        "rows_identical_across_backends": identical,
    }


#: Phase-attribution coverage gate: timed top-level phases must explain
#: at least this share of a 2-worker campaign's wall-clock.
MIN_PHASE_COVERAGE = 0.90

#: Ack-drain gate: with chunked acks, the parent's time spent *parsing*
#: worker results (not waiting for them — that is ``ack-wait``) must be
#: a small slice of the campaign's wall-clock.
MAX_ACK_DRAIN_SHARE = 0.25


def scheduling_settings(chunk_size=None):
    """The pool configuration a benchmark run executed under — recorded
    in the JSON so a regression is attributable to a setting change."""
    return {
        "chunk_size": "adaptive" if chunk_size is None else chunk_size,
        "max_chunk": DEFAULT_MAX_CHUNK,
        "warm_pool": warm_pool_enabled(),
        "shared_balls": shared_balls_enabled(),
        "start_method": pool_start_context().get_start_method(),
        "cpu_count": os.cpu_count(),
    }


def run_campaign_scaling(worker_counts=(1, 2, 4), chunk_size=None,
                         repeats=1):
    """Supervised-pool scaling: the T=1 tournament campaign per worker
    count, plus the degenerate ``chunk_size=1`` leg at 2 workers.

    A throwaway warm-up leg boots the forkserver and parks a warm fleet
    first, so the timed legs measure scheduling rather than process
    bring-up (exactly what a long campaign session sees).  Every leg
    runs against a fresh store; ``rows_identical_to_serial`` compares
    full store indices, so a single divergent field fails it.
    """
    from repro.analysis.campaign import CampaignSpec, run_campaign
    from repro.analysis.store import ResultStore

    spec = CampaignSpec.tournament(locality=1)
    counts = sorted(set(worker_counts) | {1})

    def leg(workers, leg_chunk_size):
        best = None
        index = None
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="bench-scaling-") as tmp:
                start = time.perf_counter()
                outcome = run_campaign(
                    spec, tmp, workers=workers, chunk_size=leg_chunk_size
                )
                seconds = time.perf_counter() - start
                if outcome.errors:
                    raise RuntimeError(
                        f"scaling leg ({workers} workers) errored: "
                        f"{outcome.errors}"
                    )
                index = ResultStore(tmp).index()
            best = seconds if best is None else min(best, seconds)
        return best, index

    with tempfile.TemporaryDirectory(prefix="bench-warmup-") as tmp:
        run_campaign(spec, tmp, workers=max(counts), chunk_size=chunk_size)

    serial_seconds, serial_index = leg(1, chunk_size)
    legs = {1: {"seconds": serial_seconds, "speedup": 1.0}}
    identical = True
    for workers in counts[1:]:
        seconds, index = leg(workers, chunk_size)
        identical = identical and index == serial_index
        legs[workers] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds else None,
        }
    degenerate_seconds, degenerate_index = leg(2, 1)
    return {
        "games": len(serial_index),
        "scheduling": scheduling_settings(chunk_size),
        "workers": {str(w): v for w, v in sorted(legs.items())},
        "chunk_size_1": {
            "workers": 2,
            "seconds": degenerate_seconds,
            "speedup": (
                serial_seconds / degenerate_seconds
                if degenerate_seconds
                else None
            ),
            "rows_identical_to_serial": degenerate_index == serial_index,
        },
        "rows_identical_to_serial": identical,
    }


def run_phase_attribution(workers=2, chunk_size=None):
    """Phase-attribution profile of the example tournament campaign.

    Runs the pre-baked T=1 tournament campaign through the supervised
    worker pool with phase timers on against a throwaway store, then
    reads back the run-ledger entry the scheduler recorded.  The
    interesting number is ``phase_coverage``: the share of wall-clock
    the timed top-level phases explain (worker-scoped phases overlap
    the parent's clock and are reported but never counted).
    """
    from repro.analysis.campaign import CampaignSpec, run_campaign
    from repro.analysis.store import ResultStore

    with tempfile.TemporaryDirectory(prefix="bench-phases-") as tmp:
        outcome = run_campaign(
            CampaignSpec.tournament(locality=1), tmp,
            workers=workers, timers=True, chunk_size=chunk_size,
        )
        entry = ResultStore(tmp).runs()[-1]
    coverage = entry.get("phase_coverage")
    phases = entry.get("phases", {})
    wall = entry.get("wall_seconds")
    games = outcome.played
    # The parent-side IPC bill: chunk pickling + result parsing.  With
    # per-game acks this was the dominant campaign phase; chunked acks
    # amortize it across the lease.
    ipc_seconds = phases.get("pipe-send", 0.0) + phases.get("ack-drain", 0.0)
    ack_drain_share = (phases.get("ack-drain", 0.0) / wall) if wall else None
    return {
        "workers": workers,
        "games": games,
        "errors": len(outcome.errors),
        "wall_seconds": wall,
        "phases": phases,
        "scheduling": scheduling_settings(chunk_size),
        "ipc_per_game": ipc_seconds / games if games else None,
        "ack_drain_share": ack_drain_share,
        "max_ack_drain_share": MAX_ACK_DRAIN_SHARE,
        "ack_drain_ok": (
            ack_drain_share is not None
            and ack_drain_share < MAX_ACK_DRAIN_SHARE
        ),
        "phase_coverage": coverage,
        "min_phase_coverage": MIN_PHASE_COVERAGE,
        "coverage_ok": (
            coverage is not None and coverage >= MIN_PHASE_COVERAGE
        ),
    }


def run_bench(localities=(1, 2, 3), worker_counts=(1, 2, 4), repeats=3,
              chunk_size=None):
    """Measure serial vs parallel wall-clock and cache hit rates.

    Each configuration is run ``repeats`` times and the best (minimum)
    wall-clock kept, the usual way to suppress scheduler noise.
    """
    specs = sweep_specs(localities)
    BallCache.reset()
    reveals_before = get_registry().counter("reveals_total").value
    serial_rows, _ = _timed_sweep(specs, 1)  # warm-up + cache profile
    cache = BallCache.global_stats()
    reveals = get_registry().counter("reveals_total").value - reveals_before
    queries = cache["hits"] + cache["misses"]
    cache["per_reveal"] = {
        "reveals": reveals,
        "queries_per_reveal": queries / reveals if reveals else 0.0,
        "hits_per_reveal": cache["hits"] / reveals if reveals else 0.0,
        "misses_per_reveal": cache["misses"] / reveals if reveals else 0.0,
    }

    results = {}
    identical = True
    for workers in worker_counts:
        best = None
        for _ in range(repeats):
            rows, seconds = _timed_sweep(specs, workers)
            identical = identical and rows == serial_rows
            best = seconds if best is None else min(best, seconds)
        results[workers] = best
    if 1 not in results:
        results[1] = min(_timed_sweep(specs, 1)[1] for _ in range(repeats))
    session_cache = BallCache.global_stats()
    backends = run_backend_comparison(specs, repeats=repeats)
    scaling = run_campaign_scaling(
        worker_counts=worker_counts, chunk_size=chunk_size, repeats=repeats
    )
    phases = run_phase_attribution(workers=2, chunk_size=chunk_size)

    report = {
        "experiment": "tournament-parallel-executor",
        "localities": list(localities),
        "games": len(serial_rows),
        "repeats": repeats,
        "graph_backend": get_graph_backend(),
        "backends": backends,
        "serial_seconds": results[1],
        "workers": {
            str(workers): {
                "seconds": seconds,
                "speedup": results[1] / seconds if seconds else None,
            }
            for workers, seconds in sorted(results.items())
        },
        "rows_identical_to_serial": identical,
        "clean_sweep": clean_sweep(serial_rows),
        "ball_cache": cache,
        "ball_cache_session": session_cache,
        "campaign_scaling": scaling,
        "phase_attribution": phases,
    }
    return report


def check_report(report):
    """The ``--check`` gates; returns a list of failure strings.

    Row identity, phase coverage, and the ack-drain share are absolute;
    the 2-worker speedup gate applies only where parallel speedup is
    physically possible (``os.cpu_count() >= 2``).
    """
    failures = []
    if not report["rows_identical_to_serial"]:
        failures.append("executor parallel rows diverged from serial")
    scaling = report["campaign_scaling"]
    if not scaling["rows_identical_to_serial"]:
        failures.append("campaign pool rows diverged from serial")
    if not scaling["chunk_size_1"]["rows_identical_to_serial"]:
        failures.append("chunk_size=1 degenerate leg diverged from serial")
    phases = report["phase_attribution"]
    if not phases["coverage_ok"]:
        failures.append(
            f"phase coverage {phases['phase_coverage']} below "
            f"{MIN_PHASE_COVERAGE:.0%}"
        )
    if not phases["ack_drain_ok"]:
        failures.append(
            f"ack-drain share {phases['ack_drain_share']} not under "
            f"{MAX_ACK_DRAIN_SHARE:.0%}"
        )
    cpu_count = os.cpu_count() or 1
    two = scaling["workers"].get("2")
    if cpu_count >= 2 and two is not None:
        if two["speedup"] is None or two["speedup"] <= 1.0:
            failures.append(
                f"2-worker campaign speedup {two['speedup']} <= 1.0 on a "
                f"{cpu_count}-core host"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--localities", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to benchmark (1 = the serial baseline)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="pin the campaign pool's games-per-lease "
             "(default: adaptive; 1 = per-game acks)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless rows match serial, phase coverage and "
             "ack-drain clear their gates, and (on multi-core hosts) "
             "2 workers beat serial",
    )
    parser.add_argument("--out", default="BENCH_tournament.json")
    args = parser.parse_args(argv)

    report = run_bench(
        localities=tuple(args.localities),
        worker_counts=tuple(args.workers),
        repeats=args.repeats,
        chunk_size=args.chunk_size,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(render_table(
        ["workers", "seconds", "speedup"],
        [[w, f"{v['seconds']:.3f}", f"{v['speedup']:.2f}x"]
         for w, v in sorted(report["workers"].items(), key=lambda kv: int(kv[0]))],
    ))
    hit = report["ball_cache"]
    print(f"ball cache (cold pass): {hit['hits']}/{hit['hits'] + hit['misses']} "
          f"hits ({hit['hit_rate']:.0%}), "
          f"{hit['per_reveal']['queries_per_reveal']:.2f} queries/reveal "
          f"over {hit['per_reveal']['reveals']} reveals")
    session = report["ball_cache_session"]
    print(f"ball cache (whole session): {session['hit_rate']:.0%} hit rate, "
          f"{session['evictions']} evictions, "
          f"{session['full_flushes']} full flushes")
    print(f"rows identical to serial: {report['rows_identical_to_serial']}")
    backends = report["backends"]
    cold = backends["cold_serial_seconds"]
    print(f"cold serial sweep by backend: dict={cold['dict']:.3f}s "
          f"csr={cold['csr']:.3f}s ({backends['speedup']:.2f}x), "
          f"rows identical across backends: "
          f"{backends['rows_identical_across_backends']}")
    scaling = report["campaign_scaling"]
    print("\ncampaign pool scaling "
          f"(chunk={scaling['scheduling']['chunk_size']}, "
          f"start={scaling['scheduling']['start_method']}, "
          f"warm={scaling['scheduling']['warm_pool']}, "
          f"cpus={scaling['scheduling']['cpu_count']}):")
    scaling_rows = [
        [w, f"{v['seconds']:.3f}", f"{v['speedup']:.2f}x"]
        for w, v in sorted(
            scaling["workers"].items(), key=lambda kv: int(kv[0])
        )
    ]
    degenerate = scaling["chunk_size_1"]
    scaling_rows.append(
        ["2 (chunk=1)", f"{degenerate['seconds']:.3f}",
         f"{degenerate['speedup']:.2f}x"]
    )
    print(render_table(["workers", "seconds", "speedup"], scaling_rows))
    print("campaign rows identical to serial: "
          f"{scaling['rows_identical_to_serial']} "
          f"(chunk=1 leg: {degenerate['rows_identical_to_serial']})")

    phases = report["phase_attribution"]
    from repro.observability.stats import render_phase_table

    print(f"\nphase attribution ({phases['workers']}-worker campaign, "
          f"{phases['games']} games):")
    print(render_phase_table(phases["phases"], phases["wall_seconds"]))
    print(f"ack-drain share: {phases['ack_drain_share']:.1%} "
          f"(gate < {MAX_ACK_DRAIN_SHARE:.0%}), "
          f"ipc per game: {phases['ipc_per_game'] * 1000:.2f} ms")
    if not phases["coverage_ok"]:
        print(f"WARN: phase coverage {phases['phase_coverage']} below "
              f"{MIN_PHASE_COVERAGE:.0%} target")
    print(f"wrote {args.out}")
    if args.check:
        failures = check_report(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if failures:
            return 1
        print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
