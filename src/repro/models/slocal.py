"""The SLOCAL model simulator (Ghaffari–Kuhn–Maus, Section 2.2).

Nodes are processed in an adversarial sequential order.  The output of a
node may depend on its ``T``-radius neighborhood view *and* the outputs
already assigned to nodes inside that view — but, unlike Online-LOCAL,
there is no global memory carried between steps.

The simulator enforces the no-global-memory restriction structurally: the
algorithm object is handed only the view (graph + prior outputs inside
it), and the simulator calls ``reset`` once per run, not per step, so a
misbehaving stateful algorithm is *possible* to write but the provided
algorithms and tests treat state as forbidden.  The point of the model
here is the sandwich demonstration (LOCAL ⊆ SLOCAL ⊆ Online-LOCAL).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional

from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache
from repro.models.base import Color, NodeId
from repro.observability.metrics import BoundCounter
from repro.observability.trace import TRACER

HostNode = Hashable

_SLOCAL_STEPS = BoundCounter("slocal_steps_total")


@dataclass
class SLocalView:
    """A node's view in the SLOCAL model: the ball plus prior outputs."""

    graph: Graph
    center: NodeId
    colors: Dict[NodeId, Color]
    n: int
    locality: int


class SLocalAlgorithm(ABC):
    """A deterministic SLOCAL algorithm."""

    name: str = "slocal-algorithm"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        self.n = n
        self.locality = locality
        self.num_colors = num_colors

    @abstractmethod
    def color(self, view: SLocalView) -> Color:
        """The output color of the view's center node."""


class SLocalSimulator:
    """Run an SLOCAL algorithm on a host graph with a given order."""

    def __init__(
        self,
        host: Graph,
        algorithm: SLocalAlgorithm,
        locality: int,
        num_colors: int,
        id_map: Optional[Dict[HostNode, NodeId]] = None,
    ) -> None:
        self.host = host
        self.algorithm = algorithm
        self.locality = locality
        self.num_colors = num_colors
        if id_map is None:
            ordered = sorted(host.nodes(), key=repr)
            id_map = {node: index for index, node in enumerate(ordered)}
        if len(set(id_map.values())) != host.num_nodes:
            raise ValueError("id_map must assign distinct ids to all host nodes")
        self.id_map = id_map
        self._balls = BallCache(host)

    def run(self, order: Iterable[HostNode]) -> Dict[HostNode, Color]:
        """Process nodes in ``order`` (must cover every node once)."""
        self.algorithm.reset(
            n=self.host.num_nodes,
            locality=self.locality,
            num_colors=self.num_colors,
        )
        coloring: Dict[HostNode, Color] = {}
        processed = 0
        for node in order:
            if node in coloring:
                raise ValueError(f"node {node!r} appears twice in the order")
            region = self._balls.ball(node, self.locality)
            sub = self.host.induced_subgraph(region).relabel(self.id_map)
            visible_colors = {
                self.id_map[other]: coloring[other]
                for other in region
                if other in coloring
            }
            view = SLocalView(
                graph=sub,
                center=self.id_map[node],
                colors=visible_colors,
                n=self.host.num_nodes,
                locality=self.locality,
            )
            color = self.algorithm.color(view)
            if not 1 <= color <= self.num_colors:
                raise ValueError(
                    f"{self.algorithm.name}: color {color} outside "
                    f"1..{self.num_colors}"
                )
            coloring[node] = color
            processed += 1
            _SLOCAL_STEPS.inc()
            if TRACER.enabled:
                TRACER.event(
                    "slocal-step",
                    model="slocal",
                    node=node,
                    color=color,
                    visible=len(visible_colors),
                )
        if processed != self.host.num_nodes:
            raise ValueError(
                f"order covered {processed} of {self.host.num_nodes} nodes"
            )
        return coloring
