"""Tests for the content-addressed result store."""

import json
import os

import pytest

from repro.analysis.store import (
    HASH_FIELD,
    ResultStore,
    canonical_json,
    spec_hash,
)


def test_canonical_json_is_key_order_independent():
    a = {"victim": "greedy", "adversary": "theorem1-grid", "locality": 1}
    b = {"locality": 1, "adversary": "theorem1-grid", "victim": "greedy"}
    assert canonical_json(a) == canonical_json(b)
    assert spec_hash(a) == spec_hash(b)


def test_spec_hash_distinguishes_values():
    base = {"adversary": "theorem1-grid", "locality": 1}
    assert spec_hash(base) != spec_hash({**base, "locality": 2})
    assert spec_hash(base) != spec_hash({**base, "params": [["k", 3]]})


def test_add_requires_hash_field(tmp_path):
    store = ResultStore(tmp_path / "store")
    with pytest.raises(ValueError, match=HASH_FIELD):
        store.add({"won": True})


def test_add_and_index_round_trip(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.add({HASH_FIELD: "aaa", "won": True})
    store.add({HASH_FIELD: "bbb", "won": False})
    assert "aaa" in store and "bbb" in store and "ccc" not in store
    assert len(store) == 2
    index = store.index()
    assert index["aaa"]["won"] is True
    assert index["bbb"]["won"] is False


def test_later_writes_win(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.add({HASH_FIELD: "aaa", "won": False})
    store.add({HASH_FIELD: "aaa", "won": True})
    assert store.index()["aaa"]["won"] is True
    assert len(store) == 1


def test_add_many_lands_batch_in_append_order(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.add_many(
        [
            {HASH_FIELD: "aaa", "won": True},
            {HASH_FIELD: "bbb", "won": False},
            {HASH_FIELD: "ccc", "won": True},
        ]
    )
    assert [row[HASH_FIELD] for row in store.rows()] == ["aaa", "bbb", "ccc"]
    assert len(store.row_files()) == 1  # one writer shard, one append


def test_add_many_empty_batch_is_a_no_op(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.add_many([])
    assert store.row_files() == []
    assert not os.path.exists(store.root)


def test_add_many_validates_every_row_before_writing(tmp_path):
    """A bad row anywhere in the batch rejects the whole batch — no
    partial write precedes the ValueError."""
    store = ResultStore(tmp_path / "store")
    with pytest.raises(ValueError, match=HASH_FIELD):
        store.add_many([{HASH_FIELD: "aaa", "won": True}, {"won": False}])
    assert store.index() == {}


def test_add_many_repairs_torn_tail(tmp_path):
    """A batch append after a kill-torn trailing line repairs the shard,
    exactly like the single-row path."""
    store = ResultStore(tmp_path / "store")
    store.add({HASH_FIELD: "aaa", "won": True})
    shard = store.row_files()[0]
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"spec_hash": "bbb", "wo')  # killed mid-write
    store.add_many(
        [{HASH_FIELD: "ccc", "won": False}, {HASH_FIELD: "ddd", "won": True}]
    )
    assert set(store.index()) == {"aaa", "ccc", "ddd"}


def test_multiple_writer_shards_merge(tmp_path):
    store = ResultStore(tmp_path / "store")
    os.makedirs(store.root, exist_ok=True)
    store.writer(writer_id=111).append({HASH_FIELD: "aaa", "won": True})
    store.writer(writer_id=222).append({HASH_FIELD: "bbb", "won": True})
    assert len(store.row_files()) == 2
    assert set(store.index()) == {"aaa", "bbb"}


def test_partial_trailing_line_tolerated(tmp_path):
    """A kill mid-write leaves a partial last line; loading skips it and
    the next append repairs the file."""
    store = ResultStore(tmp_path / "store")
    store.add({HASH_FIELD: "aaa", "won": True})
    shard = store.row_files()[0]
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"spec_hash": "bbb", "wo')  # killed mid-write
    assert set(store.index()) == {"aaa"}
    store.add({HASH_FIELD: "ccc", "won": False})
    assert set(store.index()) == {"aaa", "ccc"}


def test_manifest_idempotent(tmp_path):
    store = ResultStore(tmp_path / "store")
    payload = {"kind": "sweep", "name": "m", "localities": [1, 2]}
    digest_one = store.record_manifest(payload)
    digest_two = store.record_manifest(dict(reversed(list(payload.items()))))
    assert digest_one == digest_two
    assert store.manifests() == [payload]
    path = os.path.join(store.root, f"manifest-{digest_one}.json")
    assert json.load(open(path)) == payload


def test_run_ledger_sequences(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.record_run({"campaign": "a", "played": 3})
    store.record_run({"campaign": "a", "played": 0})
    runs = store.runs()
    assert [run["seq"] for run in runs] == [0, 1]
    assert [run["played"] for run in runs] == [3, 0]


def test_add_failure_leaves_store_usable(tmp_path, monkeypatch):
    """A disk-full style OSError mid-append surfaces to the caller, and
    the shard stays parseable for both reads and later appends."""
    import repro.robustness.journal as journal_mod

    store = ResultStore(tmp_path)
    store.add({HASH_FIELD: "aaa", "won": True})

    real_fsync = journal_mod.os.fsync
    fail = {"on": True}

    def flaky_fsync(fd):
        if fail["on"]:
            raise OSError(28, "No space left on device")
        real_fsync(fd)

    monkeypatch.setattr(journal_mod.os, "fsync", flaky_fsync)
    with pytest.raises(OSError, match="No space left"):
        store.add({HASH_FIELD: "bbb", "won": False})

    fail["on"] = False
    # Reads skip over whatever state the failed append left behind.
    assert "aaa" in store.index()
    store.add({HASH_FIELD: "ccc", "won": True})
    index = store.index()
    assert {"aaa", "ccc"} <= set(index)
    assert all(isinstance(row, dict) for row in index.values())


def test_rows_tolerate_concurrent_writer_thread(tmp_path):
    """Regression for the serving tier: ``rows()``/``quarantined()``
    must stay well-formed while another thread is appending — the shard
    list is snapshotted before iteration, so a scan sees each row at
    most once and never crashes on files appearing mid-scan."""
    import threading

    store = ResultStore(tmp_path / "store")
    store.add({HASH_FIELD: "seed", "won": True})
    stop = threading.Event()
    wrote = {"n": 1}  # the seed row

    def writer():
        i = 0
        while not stop.is_set() and i < 400:
            # Rotate writer ids so new shard files keep appearing
            # underneath the readers.
            shard = store.writer(writer_id=20000 + (i % 5))
            shard.append({HASH_FIELD: f"h{i:04d}", "won": True})
            wrote["n"] += 1
            i += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(60):
            rows = store.rows()
            hashes = [row[HASH_FIELD] for row in rows]
            # Each hash is written exactly once: a scan may be behind
            # the writer but must never double-count a row.
            assert len(hashes) == len(set(hashes))
            assert store.quarantined() == []
    finally:
        stop.set()
        thread.join()
    final = store.rows()
    assert len(final) == wrote["n"]
    assert len({row[HASH_FIELD] for row in final}) == wrote["n"]


def test_rows_skip_shard_that_vanishes_mid_scan(tmp_path, monkeypatch):
    """A shard unlinked between the file-list snapshot and its open
    contributes nothing instead of raising (the concurrent-reader
    contract documented on ``rows()``)."""
    import repro.analysis.store as store_mod

    store = ResultStore(tmp_path / "store")
    store.writer(writer_id=1).append({HASH_FIELD: "aaa", "won": True})
    store.writer(writer_id=2).append({HASH_FIELD: "bbb", "won": False})

    real_load = store_mod.SweepJournal.load

    def flaky_load(self):
        if self.path.endswith("rows-1.jsonl"):
            raise OSError(2, "No such file or directory")
        return real_load(self)

    monkeypatch.setattr(store_mod.SweepJournal, "load", flaky_load)
    assert [row[HASH_FIELD] for row in store.rows()] == ["bbb"]


def test_quarantined_reuses_precomputed_index(tmp_path):
    """Passing an index means no second scan: derived views built from
    one ``index()`` agree with each other even if the store has since
    changed on disk."""
    store = ResultStore(tmp_path / "store")
    store.add({HASH_FIELD: "aaa", "won": True})
    store.add({HASH_FIELD: "bbb", "won": True, "cause": "poison"})
    index = store.index()
    store.add({HASH_FIELD: "ccc", "won": True, "cause": "poison"})
    assert [row[HASH_FIELD] for row in store.quarantined(index)] == ["bbb"]
    assert [row[HASH_FIELD] for row in store.quarantined()] == ["bbb", "ccc"]
