"""The Theorem 1 adversary: defeating o(log n)-locality 3-coloring on grids.

Strategy (Section 3.2):

1. Use the Lemma 3.6 path builder to force a directed path ``P_{u,v}``
   along a row with b-value ≥ k, where ``k = 4T + 5``.
2. Reveal a second, independent row fragment at vertical distance
   ``2T + 2`` spanning the same columns; because its discovered region is
   disconnected from the first, the adversary may still *reflect* it, and
   does so to make the return traversal's b-value ≥ 0.
3. Commit the geometry and reveal the whole rectangle between the rows.
   The rectangle's boundary cycle now has
   ``b(C) ≥ k - 2(2T+2) > 0``, impossible for a proper 3-coloring
   (Lemma 3.4) — so the committed coloring contains a monochromatic
   edge, which the adversary locates explicitly.

Every run ends with a machine-checked audit (all views shown were
induced subgraphs of the committed host grid) and, when the algorithm
stayed proper long enough, a :class:`CycleCertificate`.
"""

from __future__ import annotations

from typing import Optional

from repro.adversaries.path_builder import PathBuilder
from repro.adversaries.result import AdversaryError, AdversaryResult
from repro.core.bvalue import b_value
from repro.models.adaptive import FloatingGridInstance
from repro.models.base import AlgorithmError, OnlineAlgorithm
from repro.observability.trace import TRACER
from repro.verify.certificates import CycleCertificate
from repro.verify.coloring import find_monochromatic_edge


class GridAdversary:
    """Defeats any 3-coloring Online-LOCAL algorithm with small locality.

    Parameters
    ----------
    locality:
        The locality budget ``T`` the victim algorithm runs with.
    level:
        The b-value ``k`` to force; defaults to the smallest sufficient
        value ``4T + 5``.
    """

    def __init__(self, locality: int, level: Optional[int] = None) -> None:
        if locality < 0:
            raise ValueError(f"locality must be non-negative, got {locality}")
        self.locality = locality
        self.level = level if level is not None else 4 * locality + 5
        if self.level < 1:
            raise ValueError(f"level must be at least 1, got {self.level}")

    def declared_n(self) -> int:
        """The grid size announced to the algorithm: the paper's
        :math:`(\\sqrt{n} \\times \\sqrt{n})` grid with
        ``5^(k+1) T < sqrt(n)``."""
        side = 5 ** (self.level + 1) * max(1, self.locality)
        return side * side

    # ------------------------------------------------------------------
    def run(self, algorithm: OnlineAlgorithm) -> AdversaryResult:
        """Play the full game against ``algorithm``."""
        instance = FloatingGridInstance(
            algorithm,
            locality=self.locality,
            num_colors=3,
            declared_n=self.declared_n(),
        )
        builder = PathBuilder(instance)
        stats = {
            "locality": self.locality,
            "level": self.level,
            "declared_n": self.declared_n(),
        }
        try:
            return self._play(instance, builder, stats)
        except AlgorithmError as error:
            stats["reveals"] = builder.reveals
            return AdversaryResult(
                won=True,
                reason="model-violation",
                stats={**stats, "violation": str(error)},
            )

    def _play(
        self,
        instance: FloatingGridInstance,
        builder: PathBuilder,
        stats: dict,
    ) -> AdversaryResult:
        T = self.locality
        path = builder.build(self.level)
        if path is None:
            return self._finish_improper(instance, builder, stats, None)
        if TRACER.enabled:
            TRACER.event(
                "path-built",
                level=self.level,
                b=path.b,
                reveals=builder.reveals,
            )
        stats["b_forced"] = path.b
        stats["region_length"] = (
            instance.fragment_row_extent(path.fragment)[1]
            - instance.fragment_row_extent(path.fragment)[0]
            + 1
        )

        # Second row fragment, spanning the same number of columns.
        u, v = path.path
        span = abs(v - u)
        second = instance.new_fragment()
        for x in range(span + 1):
            builder._reveal(second, x)
            if builder.improper:
                return self._finish_improper(instance, builder, stats, None)

        # Orient the second fragment so the return traversal s -> t
        # (from above v to above u) has b-value ≥ 0.
        beta = builder.path_b(second, 0, span)
        col_lo, col_hi = min(u, v), max(u, v)
        direction = 1 if v >= u else -1
        # Without reflection the s->t traversal reads the second row in
        # the direction opposite to `direction`; compute its b-value for
        # both placements and keep the non-negative one.
        #   identity: fragment coord x lands at col_lo + x
        #   reflect:  fragment coord x lands at col_hi - x
        # s sits above v, t above u; traversal runs v-column -> u-column.
        if direction > 0:
            b_identity, b_reflect = -beta, beta
        else:
            b_identity, b_reflect = beta, -beta
        reflect = b_reflect >= b_identity
        dx = col_hi if reflect else col_lo
        instance.merge(path.fragment, second, dx=dx, dy=2 * T + 2, reflect=reflect)

        host = instance.commit(reference=path.fragment)
        # Reveal the full rectangle between the two rows.
        for y in range(0, 2 * T + 3):
            for x in range(col_lo, col_hi + 1):
                if instance.color_at((x, y)) is None:
                    instance.reveal_committed((x, y))
                    builder.reveals += 1
                    if instance.tracker.monochromatic_in_last_step():
                        builder.improper = True
        certificate = self._certificate(instance, u, v, 2 * T + 2)
        stats["cycle_b"] = certificate.b_value if certificate else None
        if TRACER.enabled:
            TRACER.event(
                "certificate",
                theorem="theorem1",
                cycle_b=certificate.b_value if certificate else None,
                reveals=builder.reveals,
            )
        return self._finish_improper(instance, builder, stats, certificate)

    # ------------------------------------------------------------------
    def _certificate(
        self,
        instance: FloatingGridInstance,
        u: int,
        v: int,
        height: int,
    ) -> Optional[CycleCertificate]:
        """The rectangle cycle u -> v -> above-v -> above-u -> u, in host
        coordinates, if fully colored."""
        coloring = instance.coloring()
        to_host = instance._to_host
        step = 1 if v >= u else -1
        cycle = [to_host((x, 0)) for x in range(u, v + step, step)]
        cycle += [to_host((v, y)) for y in range(1, height + 1)]
        cycle += [to_host((x, height)) for x in range(v, u - step, -step)][1:]
        cycle += [to_host((u, y)) for y in range(height - 1, 0, -1)]
        if any(node not in coloring for node in cycle):
            return None
        b = b_value(cycle, coloring, cycle=True)
        if b == 0:
            return None
        return CycleCertificate(cycle=cycle, b_value=b)

    def required_rows(self) -> int:
        """Rows of grid the construction needs: the two path rows at
        vertical distance 2T+2, their T-balls, and the commit margin —
        O(T) in total.  This is the executable content of the paper's
        remark that a general (a x b) grid yields an
        Ω(min{log max(a,b), min(a,b)}) bound: only min(a,b) ≥ O(T) is
        needed vertically."""
        return 6 * self.locality + 3

    def _finish_improper(
        self,
        instance: FloatingGridInstance,
        builder: PathBuilder,
        stats: dict,
        certificate: Optional[CycleCertificate],
    ) -> AdversaryResult:
        """Commit (if needed), audit, and locate the improper edge."""
        if instance.host is None:
            instance.commit()
        instance.audit()
        stats["reveals"] = builder.reveals
        stats["host_rows"] = instance.host.rows
        stats["host_cols"] = instance.host.cols
        coloring = instance.coloring()
        edge = find_monochromatic_edge(instance.host.graph, coloring)
        if edge is not None:
            return AdversaryResult(
                won=True,
                reason="monochromatic-edge",
                improper_edge=edge,
                certificate=certificate,
                stats=stats,
            )
        if certificate is not None:
            raise AdversaryError(
                "b-value certificate holds but no monochromatic edge exists "
                "— contradicts Lemma 3.4; simulator inconsistency"
            )
        return AdversaryResult(won=False, reason="survived", stats=stats)
