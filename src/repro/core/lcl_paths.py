"""LCL problems on paths and cycles (the paper's introduction).

Akbari et al. showed that all locally checkable labeling problems on
paths, cycles, and rooted regular trees have nearly the same locality in
every model of the sandwich.  The canonical nontrivial LCLs there are
maximal independent set and maximal matching, both solvable in
O(log* n) rounds by color-reduction (Cole–Vishkin) followed by a
constant number of selection rounds.  This module implements that
pipeline; tests validate the LCL conditions and the round counts.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.colevishkin import three_color_directed_path


def _neighbors(index: int, n: int, cyclic: bool) -> List[int]:
    result = []
    if index > 0:
        result.append(index - 1)
    elif cyclic:
        result.append(n - 1)
    if index + 1 < n:
        result.append(index + 1)
    elif cyclic:
        result.append(0)
    return [i for i in result if i != index]


def maximal_independent_set(
    ids: Sequence[int], cyclic: bool = False
) -> Tuple[Set[int], int]:
    """A maximal independent set of a path/cycle, in O(log* n) rounds.

    Pipeline: 3-color with Cole–Vishkin, then for each color class in
    order (1, 2, 3) — one round each — every node of that color joins
    the MIS unless a neighbor already joined.

    Returns
    -------
    (member indices, rounds used).
    """
    n = len(ids)
    if n == 0:
        return set(), 0
    colors, rounds = three_color_directed_path(ids, cyclic=cyclic)
    in_mis: Set[int] = set()
    for color_class in (1, 2, 3):
        joining = {
            index
            for index in range(n)
            if colors[index] == color_class
            and not any(
                nbr in in_mis for nbr in _neighbors(index, n, cyclic)
            )
        }
        in_mis |= joining
        rounds += 1
    return in_mis, rounds


def maximal_matching(
    ids: Sequence[int], cyclic: bool = False
) -> Tuple[Set[Tuple[int, int]], int]:
    """A maximal matching of a path/cycle, in O(log* n) rounds.

    Pipeline: 3-color the nodes; then for each color class in order,
    every unmatched node of that color proposes to its successor edge
    (the edge toward index+1) if both endpoints are unmatched; a final
    symmetric pass proposes the predecessor edge.  Each pass is O(1)
    rounds and maximality follows because an unmatched edge would have
    been proposable by its smaller-colored endpoint.

    Returns
    -------
    (set of matched index pairs ``(i, i+1 mod n)``, rounds used).
    """
    n = len(ids)
    if n <= 1:
        return set(), 0
    colors, rounds = three_color_directed_path(ids, cyclic=cyclic)
    matched: Set[int] = set()
    matching: Set[Tuple[int, int]] = set()
    edge_count = n if cyclic else n - 1

    def try_edge(left: int) -> None:
        right = (left + 1) % n
        if left not in matched and right not in matched:
            matching.add((left, right))
            matched.add(left)
            matched.add(right)

    for color_class in (1, 2, 3):
        for index in range(n):
            if colors[index] != color_class or index in matched:
                continue
            if index + 1 < n or cyclic:
                try_edge(index)
        rounds += 1
    # Final pass: an unmatched node with an unmatched predecessor grabs
    # that edge (covers the tail direction on paths).
    for index in range(n):
        prev = index - 1 if index > 0 else (n - 1 if cyclic else None)
        if prev is not None and index not in matched and prev not in matched:
            try_edge(prev)
    rounds += 1
    assert len(matching) <= edge_count
    return matching, rounds


def is_maximal_independent_set(
    members: Set[int], n: int, cyclic: bool
) -> bool:
    """LCL check: independent, and every non-member has a member neighbor."""
    for index in members:
        if any(nbr in members for nbr in _neighbors(index, n, cyclic)):
            return False
    for index in range(n):
        if index in members:
            continue
        if not any(nbr in members for nbr in _neighbors(index, n, cyclic)):
            return False
    return True


def is_maximal_matching(
    matching: Set[Tuple[int, int]], n: int, cyclic: bool
) -> bool:
    """LCL check: a matching, and no edge has both endpoints unmatched."""
    matched: Set[int] = set()
    for left, right in matching:
        if right != (left + 1) % n:
            return False
        if left in matched or right in matched:
            return False
        matched.add(left)
        matched.add(right)
    edges = [(i, i + 1) for i in range(n - 1)]
    if cyclic and n >= 3:
        edges.append((n - 1, 0))
    for left, right in edges:
        if left not in matched and right not in matched:
            return False
    return True
