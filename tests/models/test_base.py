"""Tests for the ViewTracker contract enforcement."""

import pytest

from repro.models.base import AlgorithmError, AlgorithmView, OnlineAlgorithm, ViewTracker


class Scripted(OnlineAlgorithm):
    """Returns pre-programmed assignments, one per step."""

    name = "scripted"

    def __init__(self, script):
        self.script = list(script)

    def step(self, view, target):
        return self.script.pop(0)


def make_tracker(script, num_colors=3):
    tracker = ViewTracker(Scripted(script), n=10, locality=1, num_colors=num_colors)
    tracker.extend([0, 1, 2], [(0, 1), (1, 2)])
    return tracker


def test_basic_reveal():
    tracker = make_tracker([{0: 1}])
    assert tracker.reveal(0) == 1
    assert tracker.colors == {0: 1}
    assert tracker.reveal_sequence == [0]


def test_multi_node_assignment():
    tracker = make_tracker([{0: 1, 1: 2, 2: 1}])
    tracker.reveal(0)
    assert tracker.colors == {0: 1, 1: 2, 2: 1}


def test_target_must_be_colored():
    tracker = make_tracker([{1: 2}])
    with pytest.raises(AlgorithmError, match="was not colored"):
        tracker.reveal(0)


def test_already_colored_target_is_fine():
    tracker = make_tracker([{0: 1, 1: 2}, {}])
    tracker.reveal(0)
    assert tracker.reveal(1) == 2  # colored earlier; empty step is legal


def test_unseen_node_rejected():
    tracker = make_tracker([{0: 1, 99: 2}])
    with pytest.raises(AlgorithmError, match="unseen"):
        tracker.reveal(0)


def test_recoloring_rejected():
    tracker = make_tracker([{0: 1}, {1: 2, 0: 3}])
    tracker.reveal(0)
    with pytest.raises(AlgorithmError, match="recolored"):
        tracker.reveal(1)


def test_same_color_recommit_tolerated():
    tracker = make_tracker([{0: 1}, {1: 2, 0: 1}])
    tracker.reveal(0)
    tracker.reveal(1)
    assert tracker.colors[0] == 1


def test_color_range_enforced():
    tracker = make_tracker([{0: 4}])
    with pytest.raises(AlgorithmError, match="outside"):
        tracker.reveal(0)
    tracker2 = make_tracker([{0: 0}])
    with pytest.raises(AlgorithmError, match="outside"):
        tracker2.reveal(0)


def test_reveal_requires_prior_extend():
    tracker = make_tracker([{5: 1}])
    with pytest.raises(ValueError, match="not added to view"):
        tracker.reveal(5)


def test_monochromatic_detection():
    tracker = make_tracker([{0: 1}, {1: 1}])
    tracker.reveal(0)
    assert not tracker.monochromatic_in_last_step()
    tracker.reveal(1)
    assert tracker.monochromatic_in_last_step()


def test_view_contents():
    captured = {}

    class Inspecting(OnlineAlgorithm):
        name = "inspecting"

        def step(self, view: AlgorithmView, target):
            captured["n"] = view.n
            captured["locality"] = view.locality
            captured["uncolored"] = sorted(view.uncolored())
            captured["sequence"] = list(view.reveal_sequence)
            return {target: 1}

    tracker = ViewTracker(Inspecting(), n=42, locality=7, num_colors=3)
    tracker.extend([0, 1], [(0, 1)])
    tracker.reveal(0)
    assert captured["n"] == 42
    assert captured["locality"] == 7
    assert captured["uncolored"] == [0, 1]
    assert captured["sequence"] == [0]


def test_constructor_validation():
    with pytest.raises(ValueError):
        ViewTracker(Scripted([]), n=5, locality=-1, num_colors=3)
    with pytest.raises(ValueError):
        ViewTracker(Scripted([]), n=5, locality=1, num_colors=0)
