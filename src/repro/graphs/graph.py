"""A minimal undirected simple graph with hashable node labels.

The class stores an adjacency map ``node -> set(neighbors)``.  It supports
exactly the operations the rest of the library needs: incremental
construction, neighborhood queries, induced subgraphs, and edge iteration.
Nodes may be any hashable value; the graph families in
:mod:`repro.families` use structured tuples such as ``(row, col)`` for grid
nodes or ``(layer, base)`` for hierarchy nodes, which keeps the geometry
readable in tests and adversary code.

Beyond the adjacency map the graph maintains derived bookkeeping that the
hot paths rely on (see ``docs/performance.md``):

* a monotone :attr:`~Graph.generation` counter, bumped once per structural
  change (or once per :meth:`~Graph.batch` block);
* a bounded **structural change log** so caches can invalidate *scoped* to
  the nodes a mutation touched instead of flushing wholesale
  (:meth:`~Graph.changes_since`);
* an order-independent **structural fingerprint** so caches can recognize
  independently built but identical graphs (:attr:`~Graph.fingerprint`);
* an O(1) edge counter and memoized per-node neighbor frozensets.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

Node = Hashable
Edge = Tuple[Node, Node]

#: Change-log records kept before the log overflows and consumers must
#: fall back to a full flush.  Sized to cover any realistic burst of
#: single mutations between two cache queries (bulk construction goes
#: through ``batch()`` and costs one record regardless of size).
LOG_CAPACITY = 4096

#: Touched-node sets larger than this are recorded as an opaque ``bulk``
#: record (consumers full-flush) instead of an explicit node list —
#: scanning a huge touched set per cached ball would cost more than the
#: recompute it avoids.
BATCH_TOUCH_LIMIT = 512

_FP_MASK = (1 << 64) - 1


def _node_token(node: Node) -> int:
    return hash(("repro.graph.node", node))


def _edge_token(u: Node, v: Node) -> int:
    hu, hv = hash(u), hash(v)
    if hu > hv:
        hu, hv = hv, hu
    return hash(("repro.graph.edge", hu, hv))


class Graph:
    """An undirected simple graph.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes (may be empty; isolated nodes
        are preserved).
    edges:
        Optional iterable of 2-tuples.  Endpoints are added as nodes
        automatically.

    Bulk construction through the constructor (or :meth:`add_edges`) is
    coalesced via :meth:`batch`, so a freshly built graph sits at
    generation 1 (0 if empty) instead of one generation per element.
    """

    __slots__ = (
        "_adj",
        "_generation",
        "_num_edges",
        "_nbr_cache",
        "_log",
        "_log_floor",
        "_fp_xor",
        "_fp_add",
        "_batch_depth",
        "_batch_mutated",
        "_batch_removal",
        "_batch_touched",
        "_csr",
    )

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[Edge] = ()) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._generation = 0
        self._num_edges = 0
        self._nbr_cache: Dict[Node, FrozenSet[Node]] = {}
        self._log: List[Tuple[int, str, Tuple[Node, ...]]] = []
        self._log_floor = 0
        self._fp_xor = 0
        self._fp_add = 0
        self._batch_depth = 0
        self._batch_mutated = False
        self._batch_removal = False
        self._batch_touched: Optional[Set[Node]] = None
        self._csr = None  # lazily compiled CSRView (see repro.graphs.csr)
        with self.batch():
            for node in nodes:
                self.add_node(node)
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Change accounting
    # ------------------------------------------------------------------
    def _record(self, kind: str, nodes: Tuple[Node, ...]) -> None:
        """Account for one structural change: bump the generation and log
        it, or fold it into the enclosing :meth:`batch` block."""
        if self._batch_depth:
            self._batch_mutated = True
            if kind != "add":
                self._batch_removal = True
            elif self._batch_touched is not None:
                self._batch_touched.update(nodes)
                if len(self._batch_touched) > BATCH_TOUCH_LIMIT:
                    self._batch_touched = None  # too big: degrade to bulk
            return
        self._generation += 1
        self._append_log(kind, nodes)

    def _append_log(self, kind: str, nodes: Tuple[Node, ...]) -> None:
        if len(self._log) >= LOG_CAPACITY:
            # Overflow: drop history (including this record) and advance
            # the floor so changes_since() reports "unknowable".
            self._log.clear()
            self._log_floor = self._generation
            return
        self._log.append((self._generation, kind, nodes))

    @contextmanager
    def batch(self):
        """Coalesce a block of mutations into one generation bump.

        Family builders wrap their construction loops in
        ``with graph.batch():`` so building an n-node grid costs one
        generation (and one change-log record) instead of O(n).  Blocks
        nest; only the outermost exit commits.  A block that performed no
        structural change commits nothing.

        A block that raises after mutating still bumps the generation
        (the mutations *did* apply — adjacency and fingerprint already
        reflect them), but commits a conservative ``"remove"``/``"bulk"``
        record instead of the scoped touched set: the caller aborted
        mid-way, so consumers must treat the partial state as an opaque
        change and flush wholesale.  The exception is re-raised.
        """
        self._batch_depth += 1
        if self._batch_depth == 1:
            self._batch_mutated = False
            self._batch_removal = False
            self._batch_touched = set()
        try:
            yield self
        except BaseException:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batch_mutated:
                self._generation += 1
                self._append_log("remove" if self._batch_removal else "bulk", ())
                self._batch_touched = None
            raise
        self._batch_depth -= 1
        if self._batch_depth == 0 and self._batch_mutated:
            self._generation += 1
            if self._batch_removal:
                self._append_log("remove", ())
            elif self._batch_touched is None:
                self._append_log("bulk", ())
            else:
                self._append_log("add", tuple(self._batch_touched))
            self._batch_touched = None

    def changes_since(self, generation: int) -> Optional[List[Tuple[str, Tuple[Node, ...]]]]:
        """The ``(kind, nodes)`` records after ``generation``, oldest first.

        Returns ``None`` when the history is unknowable — ``generation``
        predates the log floor (records were dropped on overflow) or does
        not correspond to a state this graph has been in.  Consumers must
        then invalidate wholesale.  ``kind`` is ``"add"`` (nodes/edges
        added; ``nodes`` lists every touched endpoint), ``"remove"`` (at
        least one removal; balls may shrink), or ``"bulk"`` (an oversized
        batch recorded without a node list).
        """
        if generation == self._generation:
            return []
        if generation < self._log_floor or generation > self._generation:
            return None
        return [
            (kind, nodes)
            for gen, kind, nodes in self._log
            if gen > generation
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()
            self._fp_xor ^= _node_token(node)
            self._fp_add = (self._fp_add + _node_token(node)) & _FP_MASK
            self._record("add", (node,))

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loops are not allowed in simple graphs).
        """
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        adj = self._adj
        created = None
        for node in (u, v):
            if node not in adj:
                adj[node] = set()
                token = _node_token(node)
                self._fp_xor ^= token
                self._fp_add = (self._fp_add + token) & _FP_MASK
                created = True
        if v not in adj[u]:
            adj[u].add(v)
            adj[v].add(u)
            self._num_edges += 1
            self._nbr_cache.pop(u, None)
            self._nbr_cache.pop(v, None)
            token = _edge_token(u, v)
            self._fp_xor ^= token
            self._fp_add = (self._fp_add + token) & _FP_MASK
            # One atomic change (and one record) even when the edge also
            # created its endpoints — they are covered by (u, v).
            self._record("add", (u, v))
        elif created:  # unreachable for a simple graph, kept for safety
            self._record("add", (u, v))

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges`` (one generation bump total)."""
        with self.batch():
            for u, v in edges:
                self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        KeyError
            If ``node`` is not in the graph.
        """
        neighbors = self._adj.pop(node)
        for neighbor in neighbors:
            self._adj[neighbor].discard(node)
            self._nbr_cache.pop(neighbor, None)
            token = _edge_token(node, neighbor)
            self._fp_xor ^= token
            self._fp_add = (self._fp_add - token) & _FP_MASK
        self._num_edges -= len(neighbors)
        self._nbr_cache.pop(node, None)
        self._fp_xor ^= _node_token(node)
        self._fp_add = (self._fp_add - _node_token(node)) & _FP_MASK
        self._record("remove", (node,))

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        if v not in self._adj.get(u, ()):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)
        token = _edge_token(u, v)
        self._fp_xor ^= token
        self._fp_add = (self._fp_add - token) & _FP_MASK
        self._record("remove", (u, v))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone mutation counter; bumps once per structural change
        (or once per :meth:`batch` block).

        Derived-data caches (e.g. :class:`repro.graphs.traversal.BallCache`)
        key their validity on this: a cache built at generation ``g`` is
        stale exactly when ``graph.generation != g``, and can consult
        :meth:`changes_since` to invalidate only what the change touched.
        """
        return self._generation

    @property
    def fingerprint(self) -> Tuple[int, int]:
        """An order-independent structural fingerprint of the labeled graph.

        XOR and sum (mod 2^64) of per-node and per-edge hash tokens,
        updated incrementally in O(1) per mutation.  Two graphs built in
        different orders from the same nodes and edges fingerprint
        identically; collisions between *different* labeled graphs require
        simultaneous 64-bit XOR and sum collisions at equal node and edge
        counts (see :meth:`structural_key`) and are vanishingly unlikely.
        """
        return (self._fp_xor, self._fp_add)

    def structural_key(self) -> Tuple[int, int, int, int]:
        """``(num_nodes, num_edges, *fingerprint)`` — the key under which
        shared caches pool structurally identical graphs."""
        return (len(self._adj), self._num_edges, self._fp_xor, self._fp_add)

    @property
    def num_nodes(self) -> int:
        """Number of nodes, the paper's ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (O(1); maintained incrementally)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def adjacency(self) -> Dict[Node, Set[Node]]:
        """The raw adjacency mapping ``node -> set(neighbors)``.

        The backend-neutral accessor traversal hot loops read instead of
        reaching into ``_adj``: the dict BFS kernel walks this mapping
        directly, and :func:`repro.graphs.csr.csr_view` compiles it into
        flat arrays.  Treat the returned mapping (and its sets) as
        **read-only** — mutating it bypasses the generation counter,
        change log, and fingerprint that every cache keys on.
        """
        return self._adj

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The neighbor set of ``node`` (memoized frozenset).

        The frozenset is cached per node and invalidated only when one of
        the node's incident edges changes, so BFS inner loops stop paying
        an O(deg) allocation per visit.

        Raises
        ------
        KeyError
            If ``node`` is not in the graph.
        """
        cached = self._nbr_cache.get(node)
        if cached is None:
            cached = frozenset(self._adj[node])
            self._nbr_cache[node] = cached
        return cached

    def degree(self, node: Node) -> int:
        """The degree of ``node``."""
        return len(self._adj[node])

    def max_degree(self) -> int:
        """The maximum degree Δ, or 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return v in self._adj.get(u, ())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The subgraph induced by ``nodes`` (the paper's ``G[U]``).

        Nodes not present in the graph are ignored silently; this matches
        the common idiom of inducing on a ball that was computed on the
        same graph.

        Kept nodes are inserted in the parent graph's insertion order, so
        derived structures keyed on node order (e.g. CSR label interning)
        are deterministic functions of the parent, not of set iteration.
        """
        requested = set(nodes)
        keep = [node for node in self._adj if node in requested]
        keepset = set(keep)
        edge_list: List[Edge] = []
        seen: Set[Node] = set()
        for u in keep:
            for v in self._adj[u]:
                if v in keepset and v not in seen:
                    edge_list.append((u, v))
            seen.add(u)
        return Graph(nodes=keep, edges=edge_list)

    def copy(self) -> "Graph":
        """A deep copy (adjacency sets are duplicated).

        The copy carries the source's generation and fingerprint — caches
        keyed on either keep working — but starts a fresh change log, so
        ``changes_since`` on the copy only answers for post-copy history.
        """
        clone = Graph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        clone._generation = self._generation
        clone._num_edges = self._num_edges
        clone._fp_xor = self._fp_xor
        clone._fp_add = self._fp_add
        clone._log_floor = self._generation
        return clone

    def relabel(self, mapping: Dict[Node, Node]) -> "Graph":
        """A new graph with every node ``u`` renamed to ``mapping[u]``.

        The mapping must be injective on the node set; nodes missing from
        the mapping keep their labels.

        Raises
        ------
        ValueError
            If the mapping collapses two nodes onto the same label.
        """
        new_labels = {node: mapping.get(node, node) for node in self._adj}
        if len(set(new_labels.values())) != len(new_labels):
            raise ValueError("relabel mapping is not injective on the node set")
        return Graph(
            nodes=new_labels.values(),
            edges=(
                (new_labels[u], new_labels[v]) for u, v in self.edges()
            ),
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
