"""Experiment SANDWICH: the five-model landscape of the introduction.

(Δ+1)-coloring is solvable in every model at locality ≤ 1 plus LOCAL's
full view; 3-coloring separates Online-LOCAL (O(log n), Corollary 1.1)
from LOCAL (Θ(√n), [BHK+17]).  Also exercises Cole–Vishkin, the classic
LOCAL algorithm, at its O(log* n) round count.
"""

import math
import random


from repro.analysis.tables import render_table
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import CanonicalLocalColorer, GreedyOnlineColorer
from repro.core.colevishkin import round_bound, three_color_directed_path
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import random_reveal_order
from repro.models.dynamic_local import DynamicGreedy, DynamicLocalSimulator
from repro.models.local import LocalSimulator
from repro.models.online_local import OnlineLocalSimulator
from repro.models.simulation import LocalAsOnline
from repro.models.slocal import SLocalAlgorithm, SLocalSimulator, SLocalView
from repro.verify.coloring import is_proper


class GreedySLocal(SLocalAlgorithm):
    name = "greedy"

    def color(self, view: SLocalView) -> int:
        used = {view.colors.get(v) for v in view.graph.neighbors(view.center)}
        return min(c for c in range(1, self.num_colors + 1) if c not in used)


def test_delta_plus_one_everywhere():
    grid = SimpleGrid(10, 10)
    order = random_reveal_order(sorted(grid.graph.nodes()), seed=1)
    outcomes = []

    slocal = SLocalSimulator(grid.graph, GreedySLocal(), locality=1, num_colors=5)
    outcomes.append(["SLOCAL", is_proper(grid.graph, slocal.run(list(order)))])

    dynamic = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
    present = set()
    for node in order:
        dynamic.insert(
            node, [v for v in grid.graph.neighbors(node) if v in present]
        )
        present.add(node)
    outcomes.append(["Dynamic-LOCAL", is_proper(grid.graph, dynamic.colors)])

    online = OnlineLocalSimulator(
        grid.graph, GreedyOnlineColorer(), locality=1, num_colors=5
    )
    outcomes.append(["Online-LOCAL", is_proper(grid.graph, online.run(list(order)))])

    print()
    print("(Δ+1)-coloring across the sandwich (all must be proper):")
    print(render_table(["model", "proper"], outcomes))
    assert all(row[1] for row in outcomes)


def test_three_coloring_separates_local_from_online():
    """Akbari is proper at the log budget on EVERY order; the LOCAL
    baseline — whose guess anchors on the earliest id in each view —
    goes improper on SOME order (it provably cannot work for all orders
    below ~sqrt(n) locality, but a lucky order can save it)."""
    grid = SimpleGrid(40, 40)
    budget = 3 * math.ceil(math.log2(grid.num_nodes))
    local_failed = False
    for seed in range(4):
        order = random_reveal_order(sorted(grid.graph.nodes()), seed=seed)
        akbari = OnlineLocalSimulator(
            grid.graph, AkbariBipartiteColoring(), locality=budget, num_colors=3
        ).run(list(order))
        assert is_proper(grid.graph, akbari)
        if not local_failed:
            local = OnlineLocalSimulator(
                grid.graph,
                LocalAsOnline(CanonicalLocalColorer()),
                locality=budget,
                num_colors=3,
            ).run(list(order))
            local_failed = not is_proper(grid.graph, local)
    assert local_failed, "LOCAL baseline survived every tested order"
    print(f"\n3-coloring 40x40 at T={budget}: Online-LOCAL proper on all "
          f"orders, LOCAL baseline improper on some (needs ~sqrt(n))")


def test_cole_vishkin_round_scale():
    rows = []
    for bits in (16, 32, 64):
        rng = random.Random(bits)
        pool = set()
        while len(pool) < 200:
            pool.add(rng.randrange(2 ** bits))
        ids = sorted(pool, key=lambda __: rng.random())
        colors, rounds = three_color_directed_path(ids, cyclic=False)
        assert len(set(colors)) <= 3
        assert rounds <= round_bound(max(ids))
        rows.append([f"2^{bits}", rounds])
    print()
    print("Cole-Vishkin rounds vs id magnitude (log* growth):")
    print(render_table(["id bound", "rounds"], rows))
    # Quadrupling the bit width adds at most a couple of rounds.
    assert rows[-1][1] <= rows[0][1] + 2


def test_bench_slocal_greedy(benchmark):
    grid = SimpleGrid(12, 12)
    order = random_reveal_order(sorted(grid.graph.nodes()), seed=0)

    def run():
        sim = SLocalSimulator(grid.graph, GreedySLocal(), locality=1, num_colors=5)
        return sim.run(list(order))

    coloring = benchmark(run)
    assert is_proper(grid.graph, coloring)


def test_bench_dynamic_growth(benchmark):
    grid = SimpleGrid(12, 12)
    nodes = sorted(grid.graph.nodes())

    def run():
        sim = DynamicLocalSimulator(DynamicGreedy(), locality=1, num_colors=5)
        present = set()
        for node in nodes:
            sim.insert(node, [v for v in grid.graph.neighbors(node) if v in present])
            present.add(node)
        return sim.colors

    colors = benchmark(run)
    assert is_proper(grid.graph, colors)


def test_bench_cole_vishkin(benchmark):
    ids = random.Random(9).sample(range(2 ** 40), 2000)
    colors, rounds = benchmark(lambda: three_color_directed_path(ids))
    assert set(colors) <= {1, 2, 3}
