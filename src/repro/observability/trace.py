"""Structured game traces: kill-safe JSON-lines event/span recording.

The paper's lower bounds are adaptive *processes* — to understand why
an adversary defeats a victim you need the reveal sequence, the b-value
evolution, and the commitment decisions, not just the final verdict.
This module records exactly that:

* :func:`event` records — one JSON object per line — carry a ``kind``
  (``"reveal"``, ``"bvalue-round"``, ``"orientation-committed"``, …)
  plus arbitrary fields.
* :func:`span` records bracket a stretch of work (``"game"``) with a
  start line, an end line carrying the measured ``seconds``, and a
  per-process ``span`` id; events emitted inside a span are stamped
  with the innermost open span id (``in_span``), which is how the
  ``stats`` reporting groups reveals per game.
* A final ``metrics`` record holding a
  :meth:`~repro.observability.metrics.MetricsRegistry.snapshot` is
  appended when tracing deactivates, so one trace file carries both the
  event stream and the aggregate counters.

**The hot path pays one attribute check when tracing is off.**  Call
sites guard with ``if TRACER.enabled: TRACER.event(...)``; the module
singleton :data:`TRACER` defaults to disabled and
``benchmarks/bench_observability.py`` holds the overhead under 3%.

Files are written append-only, one self-contained JSON object per line,
flushed per record — the same kill-safety discipline as
:class:`~repro.robustness.journal.SweepJournal`, whose tolerant loader
and shard/merge machinery this module reuses: a kill mid-write loses at
most the in-flight record, a partial trailing line is skipped on load
and repaired before the next append, and parallel workers write
``<trace>.shard-<pid>`` files that :func:`merge_trace_shards` folds into
the main trace.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.robustness.journal import SweepJournal

#: Fields identifying one trace record across shard merges: the writing
#: process plus its per-process sequence number.
TRACE_KEY_FIELDS = ("src", "seq")

#: Per-process sequence numbers, shared by every recorder the process
#: opens, so ``(src, seq)`` stays unique even when one worker records
#: many games through separate recorder instances.
_SEQUENCE = itertools.count()


class JsonlTraceRecorder:
    """Appends trace records to a JSON-lines file, one flush per record.

    Open recorders keep their file handle; records are stamped with the
    writing process id (``src``) and a process-unique sequence number
    (``seq``).  Appending to a file whose previous writer was killed
    mid-line first repairs the missing newline, exactly like
    :meth:`SweepJournal.append`.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._src = os.getpid()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        repair = ""
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    repair = "\n"
        self._handle = open(self.path, "a", encoding="utf-8")
        if repair:
            self._handle.write(repair)
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        record = dict(record)
        record["src"] = self._src
        record["seq"] = next(_SEQUENCE)
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class SpanHandle:
    """Yielded by :meth:`Tracer.span`; lets the body annotate the end
    record (outcome fields known only after the work ran)."""

    __slots__ = ("fields",)

    def __init__(self) -> None:
        self.fields: Dict[str, Any] = {}

    def note(self, **fields: Any) -> None:
        self.fields.update(fields)


#: Shared no-op handle served while tracing is disabled.
_NULL_SPAN = SpanHandle()


class Tracer:
    """The process-local tracing facade.

    Disabled by default; :meth:`activate` attaches a recorder and flips
    :attr:`enabled`, which is the single attribute the hot paths check.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._recorder: Optional[JsonlTraceRecorder] = None
        self._spans = itertools.count()
        self._open_spans: List[int] = []

    def activate(self, recorder: JsonlTraceRecorder) -> None:
        if self.enabled:
            raise RuntimeError(
                f"tracing already active on {self._recorder.path!r}"
            )
        self._recorder = recorder
        self._open_spans = []
        self.enabled = True

    def deactivate(self) -> Optional[JsonlTraceRecorder]:
        """Detach and close the recorder; returns it (already closed)."""
        recorder = self._recorder
        self.enabled = False
        self._recorder = None
        self._open_spans = []
        if recorder is not None:
            recorder.close()
        return recorder

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        record = {"type": "event", "kind": kind, **fields}
        if self._open_spans:
            record["in_span"] = self._open_spans[-1]
        self._recorder.write(record)

    @contextmanager
    def span(self, kind: str, **fields: Any) -> Iterator[SpanHandle]:
        """Bracket a stretch of work with start/end records.

        The end record carries the wall-clock ``seconds`` and any fields
        the body attached via :meth:`SpanHandle.note`.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        span_id = next(self._spans)
        self._recorder.write(
            {"type": "span-start", "kind": kind, "span": span_id, **fields}
        )
        self._open_spans.append(span_id)
        handle = SpanHandle()
        started = time.perf_counter()
        try:
            yield handle
        except BaseException as exc:
            # A span whose body raises must still close in the trace —
            # a vanished end record is indistinguishable from a kill.
            # Explicit notes win over the inferred error status.
            handle.fields.setdefault("status", "error")
            handle.fields.setdefault("error_type", type(exc).__name__)
            raise
        finally:
            seconds = time.perf_counter() - started
            if self._open_spans and self._open_spans[-1] == span_id:
                self._open_spans.pop()
            if self.enabled:
                self._recorder.write(
                    {
                        "type": "span-end",
                        "kind": kind,
                        "span": span_id,
                        "seconds": round(seconds, 6),
                        **handle.fields,
                    }
                )

    def metrics(self, snapshot: Dict[str, Any]) -> None:
        """Record a metrics-registry snapshot (no-op when disabled)."""
        if not self.enabled:
            return
        self._recorder.write({"type": "metrics", "snapshot": snapshot})


#: The module singleton every instrumented call site checks.
TRACER = Tracer()


@contextmanager
def tracing(path, append: bool = False) -> Iterator[JsonlTraceRecorder]:
    """Activate tracing to ``path`` for the dynamic extent.

    On exit, the active metrics registry's snapshot is appended as a
    final ``metrics`` record (so ``repro.cli stats`` can report cache
    hit rates from the trace alone) and the recorder is closed.  Unless
    ``append`` is set, an existing file at ``path`` is removed first —
    a trace file describes one run.
    """
    from repro.observability.metrics import get_registry

    path = os.fspath(path)
    if not append and os.path.exists(path):
        os.remove(path)
    recorder = JsonlTraceRecorder(path)
    TRACER.activate(recorder)
    try:
        yield recorder
    finally:
        TRACER.metrics(get_registry().snapshot())
        TRACER.deactivate()


def read_trace(path) -> List[Dict[str, Any]]:
    """Every complete record of a trace file, in write order.

    Reuses the journal's tolerant loader: partial trailing lines (a kill
    landed mid-write) are skipped, not fatal.
    """
    return SweepJournal(path, TRACE_KEY_FIELDS).load()


def merge_trace_shards(path) -> int:
    """Fold worker shard files (``<path>.shard-*``) into the main trace.

    Returns the number of records merged.  Deduplication is by
    ``(src, seq)``, so re-merging after a kill mid-merge is safe.
    """
    return SweepJournal(path, TRACE_KEY_FIELDS).merge_shards()


def shard_path(path, worker_id) -> str:
    """The shard file a worker process should record to."""
    return f"{os.fspath(path)}.shard-{worker_id}"
