"""Tests for the small-graph isomorphism search."""

from repro.families.grids import SimpleGrid
from repro.graphs.graph import Graph
from repro.graphs.isomorphism import find_isomorphism, is_isomorphic


def test_identical_graphs():
    g = Graph(edges=[(1, 2), (2, 3)])
    assert is_isomorphic(g, g)


def test_relabeled_graphs():
    g1 = Graph(edges=[(1, 2), (2, 3), (3, 1)])
    g2 = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
    mapping = find_isomorphism(g1, g2)
    assert mapping is not None
    for u, v in g1.edges():
        assert g2.has_edge(mapping[u], mapping[v])


def test_different_sizes():
    assert not is_isomorphic(Graph(edges=[(1, 2)]), Graph(edges=[(1, 2), (2, 3)]))


def test_same_counts_different_structure():
    # Path P4 vs star K1,3: both 4 nodes, 3 edges.
    path = Graph(edges=[(0, 1), (1, 2), (2, 3)])
    star = Graph(edges=[(0, 1), (0, 2), (0, 3)])
    assert not is_isomorphic(path, star)


def test_cycle_vs_path_plus_edge():
    c4 = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    other = Graph(edges=[(0, 1), (1, 2), (2, 3), (1, 3)])
    assert not is_isomorphic(c4, other)


def test_grid_reflection_is_isomorphic():
    grid = SimpleGrid(3, 4)
    mirrored = grid.graph.relabel(grid.reflect_horizontal())
    assert is_isomorphic(grid.graph, mirrored)


def test_mapping_preserves_non_edges():
    g1 = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])  # C5
    g2 = Graph(edges=[(10, 11), (11, 12), (12, 13), (13, 14), (14, 10)])
    mapping = find_isomorphism(g1, g2)
    assert mapping is not None
    for u in g1.nodes():
        for v in g1.nodes():
            if u != v:
                assert g1.has_edge(u, v) == g2.has_edge(mapping[u], mapping[v])


def test_disconnected_isomorphism():
    g1 = Graph(edges=[(0, 1), (2, 3)])
    g2 = Graph(edges=[(10, 20), (30, 40)])
    assert is_isomorphic(g1, g2)
