"""Experiment T4 (Theorem 4): O(log n) for (k+1)-coloring graphs with
locally inferable unique colorings.

Runs the generalized algorithm at the paper's 3(k-1)log2(n)+ℓ budget on
triangular grids (k=3), k-trees (k=3 parts... tree_k+1), and the
hierarchy G_3, under adversarial reveal orders, asserting survival; and
records the swap counts (the analogue of Akbari's flips).
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.unify import UnifyColoring, recommended_locality
from repro.families.hierarchy import Hierarchy
from repro.families.ktree import random_ktree
from repro.families.random_graphs import random_reveal_order, scattered_reveal_order
from repro.families.triangular import TriangularGrid
from repro.models.online_local import OnlineLocalSimulator
from repro.oracles import CliqueChainOracle, KTreeOracle, TriangularOracle
from repro.verify.coloring import is_proper

CASES = {
    "triangular-grid": lambda: (TriangularGrid(16).graph, TriangularOracle(), 4),
    "ktree-k2": lambda: (random_ktree(2, 120, seed=3).graph, KTreeOracle(2), 4),
    "ktree-k3": lambda: (random_ktree(3, 90, seed=5).graph, KTreeOracle(3), 5),
    "hierarchy-g3": lambda: (Hierarchy(3, 7, 7).graph, CliqueChainOracle(3, 3), 4),
}


def run_case(name, seeds=range(2)):
    graph, oracle, colors = CASES[name]()
    n = graph.num_nodes
    budget = recommended_locality(oracle.num_parts, oracle.radius, n)
    swap_counts = []
    for seed in seeds:
        algorithm = UnifyColoring(oracle)
        sim = OnlineLocalSimulator(graph, algorithm, locality=budget, num_colors=colors)
        order = scattered_reveal_order(sorted(graph.nodes(), key=repr), seed=seed)
        coloring = sim.run(order)
        assert is_proper(graph, coloring), f"{name} improper at budget (seed {seed})"
        swap_counts.append(algorithm.swap_count)
    return [name, n, budget, colors, max(swap_counts)]


def test_theorem4_survival_at_budget():
    rows = [run_case(name) for name in sorted(CASES)]
    print()
    print("Theorem 4: generalized algorithm at the 3(k-1)log2(n)+l budget")
    print(render_table(["family", "n", "budget T", "colors", "max swaps"], rows))


@pytest.mark.parametrize("name", sorted(CASES))
def test_bench_theorem4(benchmark, name):
    graph, oracle, colors = CASES[name]()
    budget = recommended_locality(oracle.num_parts, oracle.radius, graph.num_nodes)
    order = random_reveal_order(sorted(graph.nodes(), key=repr), seed=1)

    def run():
        sim = OnlineLocalSimulator(
            graph, UnifyColoring(oracle), locality=budget, num_colors=colors
        )
        return sim.run(list(order))

    coloring = benchmark(run)
    assert is_proper(graph, coloring)


def test_theorem4_swaps_exercised_at_tight_budget():
    """An anchored order on a large triangular grid at tight (but
    sufficient) locality forces real Algorithm 1 swaps — the generalized
    analogue of Akbari's parity flips — while staying proper."""
    from repro.families.triangular import TriangularGrid
    from repro.verify.coloring import assert_proper

    tri = TriangularGrid(40)
    anchors = [(2, 2), (2, 30), (30, 2), (12, 12)]
    rest = [v for v in sorted(tri.graph.nodes()) if v not in set(anchors)]
    algorithm = UnifyColoring(TriangularOracle())
    sim = OnlineLocalSimulator(tri.graph, algorithm, locality=10, num_colors=4)
    for node in anchors + rest:
        sim.reveal(node)
    assert_proper(tri.graph, sim.coloring(), max_colors=4)
    assert algorithm.swap_count > 0
    print(f"\nswaps under anchored order at T=10: {algorithm.swap_count}")
