"""Checker for Definition 1.4: locally inferable unique colorings.

``has_locally_inferable_unique_coloring(G, k, ell)`` verifies, by
exhaustive enumeration, that for every connected subgraph ``G'`` of ``G``
(or a supplied/sampled family of them) all proper k-colorings of
:math:`G[\\mathcal{B}(V', \\ell)]` restrict to the same partition of
``V'`` up to permutation.

Enumerating *all* connected subgraphs is exponential, so the checker
takes either an explicit list of node sets or samples connected subsets
of bounded size; tests use small graphs where meaningful coverage is
feasible.  A negative answer is always a definitive counterexample.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import ball
from repro.oracles.brute import proper_colorings, _partition_signature

Node = Hashable


def partition_of_fragment(
    graph: Graph, fragment: Set[Node], k: int, ell: int
) -> Optional[List[int]]:
    """The common partition signature of the fragment, or None if the
    neighborhood colorings disagree (Definition 1.4 fails).

    Raises
    ------
    ValueError
        If the neighborhood admits no proper k-coloring at all.
    """
    neighborhood = ball(graph, fragment, ell)
    sub = graph.induced_subgraph(neighborhood)
    ordered = sorted(fragment, key=repr)
    reference: Optional[List[int]] = None
    for coloring in proper_colorings(sub, k):
        signature = _partition_signature([coloring[node] for node in ordered])
        if reference is None:
            reference = signature
        elif signature != reference:
            return None
    if reference is None:
        raise ValueError("the neighborhood admits no proper k-coloring")
    return reference


def connected_subsets_up_to(graph: Graph, max_size: int) -> Iterable[Set[Node]]:
    """Every connected node subset of size ≤ ``max_size``, exactly once.

    Standard branch-and-exclude enumeration: each subset is rooted at its
    minimum-rank node; when extending, choosing the i-th frontier node
    permanently excludes the earlier frontier nodes in that branch, which
    makes the enumeration duplicate-free.
    """
    nodes = sorted(graph.nodes(), key=repr)
    rank = {node: index for index, node in enumerate(nodes)}

    def grow(current: Set[Node], frontier: List[Node], excluded: Set[Node]):
        yield set(current)
        if len(current) == max_size:
            return
        for index, candidate in enumerate(frontier):
            branch_excluded = excluded | set(frontier[:index]) | {candidate}
            branch_frontier = list(frontier[index + 1:])
            in_frontier = set(branch_frontier)
            root_rank = min(rank[node] for node in current)
            for nbr in sorted(graph.neighbors(candidate), key=repr):
                if (
                    rank[nbr] > root_rank
                    and nbr not in current
                    and nbr not in branch_excluded
                    and nbr not in in_frontier
                ):
                    branch_frontier.append(nbr)
                    in_frontier.add(nbr)
            current.add(candidate)
            yield from grow(current, branch_frontier, branch_excluded)
            current.remove(candidate)

    for node in nodes:
        frontier = [
            nbr
            for nbr in sorted(graph.neighbors(node), key=repr)
            if rank[nbr] > rank[node]
        ]
        yield from grow({node}, frontier, {node})


def sample_connected_subsets(
    graph: Graph, count: int, max_size: int, seed: int = 0
) -> List[Set[Node]]:
    """Seeded random connected subsets (BFS-style growth)."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    samples: List[Set[Node]] = []
    for __ in range(count):
        start = rng.choice(nodes)
        size = rng.randint(1, max_size)
        current = {start}
        frontier = list(graph.neighbors(start))
        while frontier and len(current) < size:
            pick = rng.choice(frontier)
            frontier.remove(pick)
            if pick in current:
                continue
            current.add(pick)
            frontier.extend(
                nbr for nbr in graph.neighbors(pick) if nbr not in current
            )
        samples.append(current)
    return samples


def has_locally_inferable_unique_coloring(
    graph: Graph,
    k: int,
    ell: int,
    fragments: Optional[Sequence[Set[Node]]] = None,
    exhaustive_max_size: int = 0,
) -> Tuple[bool, Optional[Set[Node]]]:
    """Check Definition 1.4 on the given (or enumerated) fragments.

    Returns ``(True, None)`` if every checked fragment's partition is
    forced, else ``(False, fragment)`` with a counterexample fragment.

    Parameters
    ----------
    fragments:
        Explicit connected node sets to check.  If None,
        ``exhaustive_max_size`` must be positive and all connected
        subsets up to that size are enumerated.
    """
    if fragments is None:
        if exhaustive_max_size < 1:
            raise ValueError("provide fragments or a positive exhaustive_max_size")
        fragments = list(connected_subsets_up_to(graph, exhaustive_max_size))
    for fragment in fragments:
        if partition_of_fragment(graph, set(fragment), k, ell) is None:
            return False, set(fragment)
    return True, None
