"""Simulator-level protocol enforcement: σ legality and side-effect safety."""

import pytest

from repro.families.grids import SimpleGrid
from repro.models.base import AlgorithmView, OnlineAlgorithm
from repro.models.online_local import OnlineLocalSimulator
from repro.robustness.errors import InvalidColorError, RevealOrderError


class Greedyish(OnlineAlgorithm):
    name = "greedyish"

    def step(self, view: AlgorithmView, target):
        used = {view.colors.get(v) for v in view.graph.neighbors(target)}
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return {target: color}
        return {target: 1}


def make_sim(num_colors=3):
    grid = SimpleGrid(3, 3)
    return grid, OnlineLocalSimulator(
        grid.graph, Greedyish(), locality=1, num_colors=num_colors
    )


def test_double_reveal_raises_reveal_order_error():
    _grid, sim = make_sim()
    sim.reveal((1, 1))
    with pytest.raises(RevealOrderError):
        sim.reveal((1, 1))


def test_double_reveal_has_no_side_effects():
    """The violation must fire *before* the view is extended: the seen
    region, tracker state, and reveal log must be untouched."""
    _grid, sim = make_sim()
    sim.reveal((0, 0))
    seen_before = set(sim._seen)
    view_nodes_before = set(sim.tracker.view_graph.nodes())
    sequence_before = list(sim.tracker.reveal_sequence)
    colors_before = dict(sim.tracker.colors)
    with pytest.raises(RevealOrderError):
        sim.reveal((0, 0))
    assert set(sim._seen) == seen_before
    assert set(sim.tracker.view_graph.nodes()) == view_nodes_before
    assert list(sim.tracker.reveal_sequence) == sequence_before
    assert dict(sim.tracker.colors) == colors_before


def test_incomplete_reveal_order_raises():
    _grid, sim = make_sim()
    with pytest.raises(RevealOrderError, match="covered 2 of 9"):
        sim.run([(0, 0), (0, 1)])


def test_out_of_range_color_is_invalid_color_error():
    class BigColor(OnlineAlgorithm):
        name = "big-color"

        def step(self, view, target):
            return {target: 9000}

    grid = SimpleGrid(3, 3)
    sim = OnlineLocalSimulator(grid.graph, BigColor(), locality=1, num_colors=3)
    with pytest.raises(InvalidColorError):
        sim.reveal((0, 0))


def test_legal_game_is_unaffected_by_validation():
    grid, sim = make_sim(num_colors=4)
    coloring = sim.run(sorted(grid.graph.nodes()))
    assert set(coloring) == set(grid.graph.nodes())
