"""Seeded random instances for tests and benchmarks.

All generators take an explicit ``seed`` and are deterministic given it,
so test failures reproduce exactly.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Sequence

from repro.graphs.graph import Graph

Node = Hashable


def random_tree(num_nodes: int, seed: int = 0) -> Graph:
    """A uniform-ish random tree on nodes ``0 .. num_nodes-1``.

    Built by attaching node ``i`` to a uniformly random earlier node;
    trees are bipartite, making them useful inputs for the Akbari
    3-coloring algorithm tests.
    """
    if num_nodes < 1:
        raise ValueError(f"a tree needs at least one node, got {num_nodes}")
    rng = random.Random(seed)
    tree = Graph(nodes=[0])
    for node in range(1, num_nodes):
        tree.add_edge(node, rng.randrange(node))
    return tree


def random_connected_bipartite(
    left: int, right: int, extra_edges: int, seed: int = 0
) -> Graph:
    """A connected bipartite graph with parts ``L0..`` and ``R0..``.

    A random spanning tree alternating between sides guarantees
    connectivity; ``extra_edges`` random cross edges are added on top
    (duplicates are skipped, so the result may have fewer extras).
    """
    if left < 1 or right < 1:
        raise ValueError("both sides must be non-empty")
    rng = random.Random(seed)
    left_nodes = [f"L{i}" for i in range(left)]
    right_nodes = [f"R{i}" for i in range(right)]
    graph = Graph(nodes=left_nodes + right_nodes)
    # Spanning structure: connect each right node to a random left node,
    # and each left node (beyond the first) to a random right node.
    for r_node in right_nodes:
        graph.add_edge(r_node, rng.choice(left_nodes))
    for l_node in left_nodes[1:]:
        graph.add_edge(l_node, rng.choice(right_nodes))
    for __ in range(extra_edges):
        graph.add_edge(rng.choice(left_nodes), rng.choice(right_nodes))
    return graph


def random_reveal_order(nodes: Sequence[Node], seed: int = 0) -> List[Node]:
    """A seeded random permutation of ``nodes`` (adversarial reveal order)."""
    order = list(nodes)
    random.Random(seed).shuffle(order)
    return order


def scattered_reveal_order(nodes: Sequence[Node], seed: int = 0) -> List[Node]:
    """A reveal order designed to maximize group merges.

    Shuffles, then interleaves the first and second halves so that widely
    separated nodes are revealed early and the gaps are filled late — the
    regime where group-merging algorithms pay their worst-case cost.
    """
    order = random_reveal_order(nodes, seed)
    half = len(order) // 2
    first, second = order[:half], order[half:]
    interleaved: List[Node] = []
    for idx in range(len(second)):
        interleaved.append(second[idx])
        if idx < len(first):
            interleaved.append(first[idx])
    return interleaved
