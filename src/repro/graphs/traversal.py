"""Breadth-first traversal utilities: distances, balls, components.

These implement the paper's neighborhood notation: ``ball(G, U, T)`` is
:math:`\\mathcal{B}(U, T)`, the set of all nodes within distance ``T`` of
some node of ``U`` (Section 2).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Union

from repro.graphs.csr import (  # noqa: F401  (re-exported for callers)
    csr_view,
    get_graph_backend,
    set_graph_backend,
)
from repro.graphs.graph import Graph
from repro.graphs import shared_pool as _shared_pool
from repro.observability.metrics import BoundCounter, get_registry
from repro.observability.timers import phase_timer

Node = Hashable

_BALL_HITS = BoundCounter("ball_cache_hits")
_BALL_MISSES = BoundCounter("ball_cache_misses")
_BALL_EVICTIONS = BoundCounter("ball_cache_evictions")
_SCOPED_FLUSHES = BoundCounter("ball_cache_scoped_flushes")
_FULL_FLUSHES = BoundCounter("ball_cache_full_flushes")
_BUCKET_REATTACHES = BoundCounter("ball_cache_bucket_reattach")
_SHM_HITS = BoundCounter("ball_cache_shm_hits")
_SHM_PUTS = BoundCounter("ball_cache_shm_puts")

# Phase-attribution handles (repro.observability.timers): miss-path ball
# extraction and cache re-sync are the graph layer's rows in the phase
# table (nested inside compute, so informational — not coverage).
_T_BALL_EXTRACT = phase_timer("ball-extract")
_T_CACHE_SYNC = phase_timer("cache-sync")

#: Names of the registry counters the cache maintains, in reporting order.
_CACHE_COUNTERS = (
    "ball_cache_hits",
    "ball_cache_misses",
    "ball_cache_evictions",
    "ball_cache_scoped_flushes",
    "ball_cache_full_flushes",
    "ball_cache_bucket_reattach",
    "ball_cache_shm_hits",
    "ball_cache_shm_puts",
)

_invalidation_policy = "scoped"


def set_invalidation_policy(policy: str) -> str:
    """Select how new :class:`BallCache` instances invalidate.

    ``"scoped"`` (the default) drains the graph's structural change log,
    evicts only balls a mutation touched, and pools balls across caches
    whose graphs share a structural fingerprint.  ``"wholesale"`` is the
    historical baseline: per-instance storage cleared on any generation
    bump — kept so ``benchmarks/bench_ballcache.py`` can measure the
    difference.  Returns the previous policy (for restore).
    """
    global _invalidation_policy
    if policy not in ("scoped", "wholesale"):
        raise ValueError(f"unknown invalidation policy {policy!r}")
    previous = _invalidation_policy
    _invalidation_policy = policy
    return previous


def get_invalidation_policy() -> str:
    """The policy new :class:`BallCache` instances are built with."""
    return _invalidation_policy


def _as_sources(sources: Union[Node, Iterable[Node]], graph: Graph) -> List[Node]:
    """Normalize a single node or an iterable of nodes into a list.

    Node labels may themselves be iterable (grid nodes are tuples), so a
    value that is a node of the graph is always treated as a single
    source.  A tuple or string that is *not* a node is a mistyped label,
    never a source collection — expanding ``(50, 50)`` element-wise
    either raises a baffling ``KeyError: 50`` or, on int-labeled
    families, silently computes the wrong multi-source ball — so those
    raise a :class:`KeyError` naming the missing node.  Only genuine
    collections (lists, sets, generators, ...) are expanded.
    """
    try:
        if sources in graph:
            return [sources]
        hashable = True
    except TypeError:
        hashable = False
    if isinstance(sources, (str, bytes, tuple)):
        raise KeyError(f"source node {sources!r} not in graph")
    if not isinstance(sources, Iterable):
        if hashable:
            raise KeyError(f"source node {sources!r} not in graph")
        raise TypeError(
            f"sources must be a node or an iterable of nodes, got {sources!r}"
        )
    candidates = list(sources)
    for node in candidates:
        if node not in graph:
            raise KeyError(f"source node {node!r} not in graph")
    return candidates


def bfs_distances(
    graph: Graph,
    sources: Union[Node, Iterable[Node]],
    max_dist: Optional[int] = None,
) -> Dict[Node, int]:
    """Multi-source BFS distances from ``sources``.

    Parameters
    ----------
    graph:
        The graph to traverse.
    sources:
        A node or iterable of nodes; distances are measured to the nearest
        source.
    max_dist:
        If given, traversal stops at this radius (nodes farther away are
        absent from the result).

    Returns
    -------
    dict
        ``node -> distance`` for every reached node (sources map to 0).
        Key iteration order is unspecified (the two backends reach nodes
        in different orders); no caller may rely on it.
    """
    srcs = _as_sources(sources, graph)
    if _graph_backend_is_csr():
        return csr_view(graph).distances(srcs, max_dist)
    return _dict_bfs(graph, srcs, max_dist)


def _graph_backend_is_csr() -> bool:
    return get_graph_backend() == "csr"


def _dict_bfs(
    graph: Graph, srcs: List[Node], max_dist: Optional[int]
) -> Dict[Node, int]:
    """The baseline kernel: BFS over the dict-of-sets adjacency map."""
    frontier = deque()
    dist: Dict[Node, int] = {}
    for source in srcs:
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    # Hot path: walk the adjacency map through the backend-neutral
    # accessor rather than per-node neighbors() calls — this loop
    # dominates every simulator reveal.
    adj = graph.adjacency()
    while frontier:
        u = frontier.popleft()
        d = dist[u]
        if max_dist is not None and d >= max_dist:
            continue
        for v in adj[u]:
            if v not in dist:
                dist[v] = d + 1
                frontier.append(v)
    return dist


def ball(graph: Graph, sources: Union[Node, Iterable[Node]], radius: int) -> Set[Node]:
    """The paper's :math:`\\mathcal{B}(U, T)`: all nodes within ``radius``.

    ``radius`` must be non-negative; ``ball(G, U, 0)`` is ``set(U)``.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    srcs = _as_sources(sources, graph)
    with _T_BALL_EXTRACT:
        if _graph_backend_is_csr():
            return csr_view(graph).ball_labels(srcs, radius)
        return set(_dict_bfs(graph, srcs, max_dist=radius))


class BallCache:
    """Memoized :func:`ball` queries over one (mostly static) graph.

    The simulators and adversaries recompute the same radius-T balls for
    every reveal and again during audits; on a fixed host that BFS work
    is identical each time.  Each ball is stored as a frozenset keyed by
    ``(source, radius)``.

    Invalidation (under the default ``"scoped"`` policy) is *incremental*:
    when :attr:`~repro.graphs.graph.Graph.generation` moves, the cache
    drains the graph's structural change log and evicts a cached ball only
    when a touched endpoint lies **inside** the cached frozenset.  This is
    sound for node/edge additions: a new edge can only shorten a distance
    into B(s, r) via a path whose first new-edge endpoint already lies
    strictly inside the old ball, so a ball disjoint from the touched set
    is unchanged.  Removals can shrink balls from anywhere, so any removal
    (and a log overflow or oversized batch) triggers a full flush.

    Storage is pooled process-wide by the graph's structural key
    (``(n, m, fingerprint)``): independently built but identical hosts —
    e.g. the same torus constructed by consecutive tournament games —
    share one ball table, so the second game's reveals hit immediately.
    The pool is LRU-bounded; :meth:`reset` clears it.

    Cached balls are **frozensets shared between callers** — treat them
    as immutable (every set-algebra reader in the codebase already does).
    Unhashable source specs (lists/sets of nodes) fall through to an
    uncached BFS.

    Instances count ``hits``/``misses``/``evictions``/flushes; the
    process-wide aggregates live in the active metrics registry
    (``ball_cache_hits``, ``ball_cache_misses``, ``ball_cache_evictions``,
    ``ball_cache_scoped_flushes``, ``ball_cache_full_flushes``), so
    benchmarks can report hit rates without threading every simulator's
    cache out, and parallel sweeps ship worker counts back to the parent
    as registry snapshots.
    """

    #: Process-wide pool: structural key -> {(source, radius): frozenset}.
    _shared_store: "OrderedDict[tuple, Dict[tuple, FrozenSet[Node]]]" = OrderedDict()
    #: Distinct graph structures kept before LRU eviction.
    SHARED_STORE_CAPACITY = 128

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._generation = graph.generation
        self._policy = _invalidation_policy
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.scoped_flushes = 0
        self.full_flushes = 0
        self.bucket_reattaches = 0
        if self._policy == "scoped":
            self._key = graph.structural_key()
            self._balls = self._bucket_for(self._key)
        else:
            self._key = None
            self._balls: Dict[tuple, FrozenSet[Node]] = {}

    @classmethod
    def _bucket_for(cls, key: tuple) -> Dict[tuple, FrozenSet[Node]]:
        """The shared ball table for one graph structure (LRU-tracked)."""
        store = cls._shared_store
        bucket = store.get(key)
        if bucket is None:
            bucket = {}
            store[key] = bucket
            if len(store) > cls.SHARED_STORE_CAPACITY:
                store.popitem(last=False)
        else:
            store.move_to_end(key)
        return bucket

    def _reattach_bucket(self) -> None:
        """Repair a bucket orphaned by the pool's LRU eviction.

        :meth:`_bucket_for` can evict a bucket a live cache still holds
        as ``self._balls``; the orphan keeps serving *this* cache
        correctly but new caches for the same structural key start
        empty, silently losing cross-game sharing.  Called on every sync
        and on every miss (one dict lookup, dwarfed by the BFS the miss
        already pays): re-inserts the orphan — or, when another cache
        already re-created the bucket, merges into and adopts the pooled
        one — and counts the repair in ``ball_cache_bucket_reattach``.
        """
        store = type(self)._shared_store
        pooled = store.get(self._key)
        if pooled is self._balls:
            return
        if pooled is None:
            store[self._key] = self._balls
            if len(store) > self.SHARED_STORE_CAPACITY:
                store.popitem(last=False)
        else:
            # Both tables hold sound balls for the same structure; fold
            # the orphan's entries in and share the pooled dict from now on.
            pooled.update(self._balls)
            self._balls = pooled
        self.bucket_reattaches += 1
        _BUCKET_REATTACHES.inc()

    def _sync(self) -> None:
        """Catch up with the graph after a generation change."""
        with _T_CACHE_SYNC:
            self._sync_inner()

    def _sync_inner(self) -> None:
        generation = self.graph.generation
        if self._policy == "wholesale":
            self._balls.clear()
            self.full_flushes += 1
            _FULL_FLUSHES.inc()
            self._generation = generation
            return
        self._reattach_bucket()
        changes = self.graph.changes_since(self._generation)
        new_key = self.graph.structural_key()
        new_bucket = self._bucket_for(new_key)
        if changes is None or any(kind != "add" for kind, _ in changes):
            # Unknowable history, a removal, or an opaque bulk batch:
            # nothing from the old table can be trusted.  (The old bucket
            # stays in the pool under the old key — it is still valid for
            # graphs *at* that structure.)
            self.full_flushes += 1
            _FULL_FLUSHES.inc()
        else:
            touched: Set[Node] = set()
            for _, nodes in changes:
                touched.update(nodes)
            evicted = 0
            for key, ballset in self._balls.items():
                if key in new_bucket:
                    continue
                if ballset.isdisjoint(touched):
                    # Additions only grow balls, and none touched this
                    # one: it is byte-identical on the new structure.
                    new_bucket[key] = ballset
                else:
                    evicted += 1
            self.evictions += evicted
            self.scoped_flushes += 1
            _BALL_EVICTIONS.inc(evicted)
            _SCOPED_FLUSHES.inc()
        self._balls = new_bucket
        self._key = new_key
        self._generation = generation

    def ball(
        self, sources: Union[Node, Iterable[Node]], radius: int
    ) -> FrozenSet[Node]:
        """A (possibly cached) :func:`ball`; same semantics, frozen result."""
        if self.graph.generation != self._generation:
            self._sync()
        try:
            key = (sources, radius)
            cached = self._balls.get(key)
        except TypeError:  # unhashable source collection: compute uncached
            return frozenset(ball(self.graph, sources, radius))
        if cached is not None:
            self.hits += 1
            _BALL_HITS.inc()
            return cached
        self.misses += 1
        _BALL_MISSES.inc()
        shared = None
        if self._policy == "scoped":
            self._reattach_bucket()
            # Local miss: probe the cross-process shared segment (when a
            # worker pool installed one) before paying the BFS.  Keys
            # carry the structural fingerprint, so a pooled ball from a
            # sibling worker's identical host is exactly this ball.
            shared = _shared_pool.active_pool()
            if shared is not None:
                pooled = shared.get((self._key, key))
                if pooled is not None:
                    self._balls[key] = pooled
                    _SHM_HITS.inc()
                    return pooled
        result = frozenset(ball(self.graph, sources, radius))
        self._balls[key] = result
        if shared is not None and shared.put((self._key, key), result):
            _SHM_PUTS.inc()
        return result

    def stats(self) -> Dict[str, float]:
        """This cache's counters and hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": self.evictions,
            "scoped_flushes": self.scoped_flushes,
            "full_flushes": self.full_flushes,
            "bucket_reattaches": self.bucket_reattaches,
        }

    def __len__(self) -> int:
        return len(self._balls)

    @classmethod
    def global_stats(cls) -> Dict[str, float]:
        """Aggregate counters across every cache recorded in the active
        metrics registry."""
        registry = get_registry()
        hits = registry.counter("ball_cache_hits").value
        misses = registry.counter("ball_cache_misses").value
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "evictions": registry.counter("ball_cache_evictions").value,
            "scoped_flushes": registry.counter("ball_cache_scoped_flushes").value,
            "full_flushes": registry.counter("ball_cache_full_flushes").value,
            "bucket_reattaches": registry.counter("ball_cache_bucket_reattach").value,
            "shm_hits": registry.counter("ball_cache_shm_hits").value,
            "shm_puts": registry.counter("ball_cache_shm_puts").value,
        }

    @classmethod
    def clear_shared_store(cls) -> None:
        """Drop every pooled ball table (counters are left alone)."""
        cls._shared_store.clear()

    @classmethod
    def reset(cls) -> None:
        """Zero the registry-held aggregate counters and drop the shared
        ball pool.

        Benchmarks call this between configurations so repeated runs in
        one process never accumulate stale counts or pre-warmed balls.
        """
        registry = get_registry()
        for name in _CACHE_COUNTERS:
            registry.counter(name).value = 0
        cls.clear_shared_store()

    #: Backwards-compatible alias for the pre-registry name.
    reset_global_stats = reset


def connected_components(graph: Graph) -> List[Set[Node]]:
    """All connected components, each as a set of nodes."""
    remaining: Set[Node] = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        start = next(iter(remaining))
        component = set(bfs_distances(graph, start))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_nodes == 0:
        return True
    start = next(iter(graph.nodes()))
    return len(bfs_distances(graph, start)) == graph.num_nodes


def shortest_path(graph: Graph, source: Node, target: Node) -> Optional[List[Node]]:
    """A shortest path from ``source`` to ``target`` (inclusive), or None.

    Returns ``[source]`` when ``source == target``.
    """
    if source not in graph or target not in graph:
        raise KeyError("source and target must be nodes of the graph")
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {source: source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in graph.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(v)
    return None


def eccentricity(graph: Graph, node: Node) -> int:
    """Maximum distance from ``node`` to any reachable node."""
    return max(bfs_distances(graph, node).values())


def diameter(graph: Graph) -> int:
    """Exact diameter of a connected graph (O(n·m); intended for tests).

    Raises
    ------
    ValueError
        If the graph is empty or disconnected.
    """
    if graph.num_nodes == 0:
        raise ValueError("diameter of the empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("diameter is undefined for a disconnected graph")
    return max(eccentricity(graph, node) for node in graph.nodes())
