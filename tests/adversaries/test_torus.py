"""Tests for the Theorem 2 toroidal/cylindrical adversary."""

import pytest

from repro.adversaries.torus import TorusAdversary
from repro.core.akbari import AkbariBipartiteColoring
from repro.core.baselines import GreedyOnlineColorer


@pytest.mark.parametrize("topology", ["torus", "cylinder"])
@pytest.mark.parametrize(
    "victim_factory",
    [GreedyOnlineColorer, AkbariBipartiteColoring],
    ids=["greedy", "akbari"],
)
def test_defeats_portfolio(topology, victim_factory):
    result = TorusAdversary(locality=1, topology=topology).run(victim_factory())
    assert result.won
    assert result.reason in ("monochromatic-edge", "model-violation")


def test_higher_locality_still_defeated():
    """Theorem 2 holds for any T with side >= 4T+4 — test T = 3."""
    result = TorusAdversary(locality=3).run(AkbariBipartiteColoring())
    assert result.won


def test_certificate_when_available():
    result = TorusAdversary(locality=1).run(AkbariBipartiteColoring())
    if result.certificate is not None:
        assert result.certificate.b_sum != 0
        assert result.certificate.b_sum % 2 == 0  # odd + odd


def test_b_sum_recorded():
    result = TorusAdversary(locality=1).run(AkbariBipartiteColoring())
    if "b_sum" in result.stats:
        assert result.stats["b_sum"] != 0


def test_default_side_is_smallest_valid_odd():
    adversary = TorusAdversary(locality=2)
    assert adversary.side % 2 == 1
    assert adversary.side >= 4 * 2 + 4


def test_side_validation():
    with pytest.raises(ValueError, match="odd"):
        TorusAdversary(locality=1, side=10)
    with pytest.raises(ValueError, match="too small"):
        TorusAdversary(locality=3, side=15)
    with pytest.raises(ValueError, match="topology"):
        TorusAdversary(locality=1, topology="klein-bottle")


def test_larger_side_works():
    result = TorusAdversary(locality=1, side=13).run(GreedyOnlineColorer())
    assert result.won


def test_determinism():
    r1 = TorusAdversary(locality=1).run(AkbariBipartiteColoring())
    r2 = TorusAdversary(locality=1).run(AkbariBipartiteColoring())
    assert r1.stats == r2.stats
