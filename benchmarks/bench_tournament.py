"""Experiment TOURNAMENT: all adversaries vs all victims, clean sweep.

Also a useful regression net: any change weakening an adversary or
super-powering a victim breaks the sweep assertion immediately.

Run as a script to benchmark the parallel executor and the
neighborhood-ball cache, emitting machine-readable results::

    PYTHONPATH=src python benchmarks/bench_tournament.py \
        --localities 1 2 3 --workers 1 2 4 --out BENCH_tournament.json

The benchmark fans the full default portfolio at every requested
locality through one :class:`~repro.analysis.executor.ParallelSweep`
(48 games for three localities), so worker pools have enough
independent games to balance.  The JSON records serial wall-clock,
per-worker-count wall-clock and speedup, ball-cache hit rates — both
the cold first pass (with per-reveal query/hit breakdowns) and the warm
whole-session aggregate — and whether every parallel sweep returned
byte-identical rows to the serial one (it must).  Reported speedup is bounded by the host's core count —
on a single-core container the parallel columns measure pure pool
overhead.
"""

import argparse
import json
import tempfile
import time

import pytest

from repro.analysis.executor import GameSpec, ParallelSweep
from repro.analysis.tables import render_table
from repro.analysis.tournament import (
    FIXED_VICTIM,
    FixedVictimGame,
    clean_sweep,
    default_adversaries,
    default_victims,
    run_tournament,
)
from repro.graphs.csr import get_graph_backend, set_graph_backend
from repro.graphs.traversal import BallCache
from repro.observability.metrics import get_registry
from repro.robustness.supervisor import GamePolicy


@pytest.mark.parametrize("locality", (1, 2))
def test_clean_sweep(locality):
    rows = run_tournament(locality=locality)
    print()
    print(f"Tournament at T={locality}:")
    print(render_table(
        ["adversary", "victim", "verdict"],
        [[r.adversary, r.victim, "defeated" if r.won else "SURVIVED"]
         for r in rows],
    ))
    assert clean_sweep(rows), [r for r in rows if not r.won]
    # 5 sweeping adversaries x 3 victims + 1 fixed-victim reduction game.
    assert len(rows) == 16


def test_parallel_sweep_matches_serial():
    serial = run_tournament(locality=1, workers=1)
    parallel = run_tournament(locality=1, workers=2)
    assert parallel == serial


def test_bench_tournament(benchmark):
    rows = benchmark(lambda: run_tournament(locality=1))
    assert clean_sweep(rows)


def sweep_specs(localities, policy=None):
    """The full default portfolio at every locality, as picklable specs."""
    policy = policy if policy is not None else GamePolicy(timeout=30.0)
    specs = []
    for locality in localities:
        for name, entry in default_adversaries(locality).items():
            if isinstance(entry, FixedVictimGame):
                victims = [FIXED_VICTIM]
            else:
                victims = list(default_victims())
            for victim in victims:
                specs.append(GameSpec(name, victim, locality, policy))
    return specs


def _timed_sweep(specs, workers):
    start = time.perf_counter()
    rows = ParallelSweep(workers).run(specs)
    return rows, time.perf_counter() - start


def run_backend_comparison(specs, repeats=3):
    """Cold serial sweep wall-clock per traversal backend.

    The ball pool is cleared before every pass so each one pays the full
    miss-path extraction cost — the component the ``dict``/``csr``
    backends actually differ on (warm passes are ~all hits and
    backend-independent).  Rows must be byte-identical across backends.
    """
    timings = {}
    baseline_rows = None
    identical = True
    for backend in ("dict", "csr"):
        previous = set_graph_backend(backend)
        try:
            best = None
            rows = None
            for _ in range(repeats):
                BallCache.reset()
                rows, seconds = _timed_sweep(specs, 1)
                best = seconds if best is None else min(best, seconds)
        finally:
            set_graph_backend(previous)
        if baseline_rows is None:
            baseline_rows = rows
        else:
            identical = identical and rows == baseline_rows
        timings[backend] = best
    return {
        "cold_serial_seconds": timings,
        "speedup": timings["dict"] / timings["csr"] if timings["csr"] else None,
        "rows_identical_across_backends": identical,
    }


#: Phase-attribution coverage gate: timed top-level phases must explain
#: at least this share of a 2-worker campaign's wall-clock.
MIN_PHASE_COVERAGE = 0.90


def run_phase_attribution(workers=2):
    """Phase-attribution profile of the example tournament campaign.

    Runs the pre-baked T=1 tournament campaign through the supervised
    worker pool with phase timers on against a throwaway store, then
    reads back the run-ledger entry the scheduler recorded.  The
    interesting number is ``phase_coverage``: the share of wall-clock
    the timed top-level phases explain (worker-scoped phases overlap
    the parent's clock and are reported but never counted).
    """
    from repro.analysis.campaign import CampaignSpec, run_campaign
    from repro.analysis.store import ResultStore

    with tempfile.TemporaryDirectory(prefix="bench-phases-") as tmp:
        outcome = run_campaign(
            CampaignSpec.tournament(locality=1), tmp,
            workers=workers, timers=True,
        )
        entry = ResultStore(tmp).runs()[-1]
    coverage = entry.get("phase_coverage")
    return {
        "workers": workers,
        "games": outcome.played,
        "errors": len(outcome.errors),
        "wall_seconds": entry.get("wall_seconds"),
        "phases": entry.get("phases", {}),
        "phase_coverage": coverage,
        "min_phase_coverage": MIN_PHASE_COVERAGE,
        "coverage_ok": (
            coverage is not None and coverage >= MIN_PHASE_COVERAGE
        ),
    }


def run_bench(localities=(1, 2, 3), worker_counts=(1, 2, 4), repeats=3):
    """Measure serial vs parallel wall-clock and cache hit rates.

    Each configuration is run ``repeats`` times and the best (minimum)
    wall-clock kept, the usual way to suppress scheduler noise.
    """
    specs = sweep_specs(localities)
    BallCache.reset()
    reveals_before = get_registry().counter("reveals_total").value
    serial_rows, _ = _timed_sweep(specs, 1)  # warm-up + cache profile
    cache = BallCache.global_stats()
    reveals = get_registry().counter("reveals_total").value - reveals_before
    queries = cache["hits"] + cache["misses"]
    cache["per_reveal"] = {
        "reveals": reveals,
        "queries_per_reveal": queries / reveals if reveals else 0.0,
        "hits_per_reveal": cache["hits"] / reveals if reveals else 0.0,
        "misses_per_reveal": cache["misses"] / reveals if reveals else 0.0,
    }

    results = {}
    identical = True
    for workers in worker_counts:
        best = None
        for _ in range(repeats):
            rows, seconds = _timed_sweep(specs, workers)
            identical = identical and rows == serial_rows
            best = seconds if best is None else min(best, seconds)
        results[workers] = best
    if 1 not in results:
        results[1] = min(_timed_sweep(specs, 1)[1] for _ in range(repeats))
    session_cache = BallCache.global_stats()
    backends = run_backend_comparison(specs, repeats=repeats)
    phases = run_phase_attribution(workers=2)

    report = {
        "experiment": "tournament-parallel-executor",
        "localities": list(localities),
        "games": len(serial_rows),
        "repeats": repeats,
        "graph_backend": get_graph_backend(),
        "backends": backends,
        "serial_seconds": results[1],
        "workers": {
            str(workers): {
                "seconds": seconds,
                "speedup": results[1] / seconds if seconds else None,
            }
            for workers, seconds in sorted(results.items())
        },
        "rows_identical_to_serial": identical,
        "clean_sweep": clean_sweep(serial_rows),
        "ball_cache": cache,
        "ball_cache_session": session_cache,
        "phase_attribution": phases,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--localities", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to benchmark (1 = the serial baseline)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_tournament.json")
    args = parser.parse_args(argv)

    report = run_bench(
        localities=tuple(args.localities),
        worker_counts=tuple(args.workers),
        repeats=args.repeats,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(render_table(
        ["workers", "seconds", "speedup"],
        [[w, f"{v['seconds']:.3f}", f"{v['speedup']:.2f}x"]
         for w, v in sorted(report["workers"].items(), key=lambda kv: int(kv[0]))],
    ))
    hit = report["ball_cache"]
    print(f"ball cache (cold pass): {hit['hits']}/{hit['hits'] + hit['misses']} "
          f"hits ({hit['hit_rate']:.0%}), "
          f"{hit['per_reveal']['queries_per_reveal']:.2f} queries/reveal "
          f"over {hit['per_reveal']['reveals']} reveals")
    session = report["ball_cache_session"]
    print(f"ball cache (whole session): {session['hit_rate']:.0%} hit rate, "
          f"{session['evictions']} evictions, "
          f"{session['full_flushes']} full flushes")
    print(f"rows identical to serial: {report['rows_identical_to_serial']}")
    backends = report["backends"]
    cold = backends["cold_serial_seconds"]
    print(f"cold serial sweep by backend: dict={cold['dict']:.3f}s "
          f"csr={cold['csr']:.3f}s ({backends['speedup']:.2f}x), "
          f"rows identical across backends: "
          f"{backends['rows_identical_across_backends']}")
    phases = report["phase_attribution"]
    from repro.observability.stats import render_phase_table

    print(f"\nphase attribution ({phases['workers']}-worker campaign, "
          f"{phases['games']} games):")
    print(render_phase_table(phases["phases"], phases["wall_seconds"]))
    if not phases["coverage_ok"]:
        print(f"WARN: phase coverage {phases['phase_coverage']} below "
              f"{MIN_PHASE_COVERAGE:.0%} target")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
