"""A minimal undirected simple graph with hashable node labels.

The class stores an adjacency map ``node -> set(neighbors)``.  It supports
exactly the operations the rest of the library needs: incremental
construction, neighborhood queries, induced subgraphs, and edge iteration.
Nodes may be any hashable value; the graph families in
:mod:`repro.families` use structured tuples such as ``(row, col)`` for grid
nodes or ``(layer, base)`` for hierarchy nodes, which keeps the geometry
readable in tests and adversary code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """An undirected simple graph.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes (may be empty; isolated nodes
        are preserved).
    edges:
        Optional iterable of 2-tuples.  Endpoints are added as nodes
        automatically.
    """

    __slots__ = ("_adj", "_generation")

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[Edge] = ()) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._generation = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()
            self._generation += 1

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loops are not allowed in simple graphs).
        """
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._generation += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        KeyError
            If ``node`` is not in the graph.
        """
        for neighbor in self._adj.pop(node):
            self._adj[neighbor].discard(node)
        self._generation += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        if v not in self._adj.get(u, ()):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._generation += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone mutation counter; bumps on every structural change.

        Derived-data caches (e.g. :class:`repro.graphs.traversal.BallCache`)
        key their validity on this: a cache built at generation ``g`` is
        stale exactly when ``graph.generation != g``.
        """
        return self._generation

    @property
    def num_nodes(self) -> int:
        """Number of nodes, the paper's ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The neighbor set of ``node``.

        Raises
        ------
        KeyError
            If ``node`` is not in the graph.
        """
        return frozenset(self._adj[node])

    def degree(self, node: Node) -> int:
        """The degree of ``node``."""
        return len(self._adj[node])

    def max_degree(self) -> int:
        """The maximum degree Δ, or 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return v in self._adj.get(u, ())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The subgraph induced by ``nodes`` (the paper's ``G[U]``).

        Nodes not present in the graph are ignored silently; this matches
        the common idiom of inducing on a ball that was computed on the
        same graph.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub._adj[u].add(v)
                    sub._adj[v].add(u)
        return sub

    def copy(self) -> "Graph":
        """A deep copy (adjacency sets are duplicated)."""
        clone = Graph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    def relabel(self, mapping: Dict[Node, Node]) -> "Graph":
        """A new graph with every node ``u`` renamed to ``mapping[u]``.

        The mapping must be injective on the node set; nodes missing from
        the mapping keep their labels.

        Raises
        ------
        ValueError
            If the mapping collapses two nodes onto the same label.
        """
        new_labels = {node: mapping.get(node, node) for node in self._adj}
        if len(set(new_labels.values())) != len(new_labels):
            raise ValueError("relabel mapping is not injective on the node set")
        clone = Graph(nodes=new_labels.values())
        for u, v in self.edges():
            clone.add_edge(new_labels[u], new_labels[v])
        return clone

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
