#!/usr/bin/env python3
"""All lower bounds vs all victims — the full tournament.

The paper predicts a clean sweep: every adversary defeats every
deterministic algorithm whose locality is below its theorem's threshold.
"""

from repro.analysis.tables import render_table
from repro.analysis.tournament import clean_sweep, run_tournament


def main() -> None:
    rows = run_tournament(locality=1)
    print(render_table(
        ["adversary", "victim", "T", "verdict", "how"],
        [
            [row.adversary, row.victim, row.locality,
             "DEFEATED" if row.won else "survived", row.reason]
            for row in rows
        ],
    ))
    print()
    if clean_sweep(rows):
        print(f"Clean sweep: {len(rows)}/{len(rows)} games won by the "
              f"adversaries, as the theorems demand.")
    else:
        losses = [row for row in rows if not row.won]
        print(f"UNEXPECTED: {len(losses)} game(s) survived: {losses}")


if __name__ == "__main__":
    main()
