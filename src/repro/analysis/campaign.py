"""Campaign engine: declarative experiment campaigns over a sharded
work-queue scheduler with content-addressed, resumable progress.

``run_tournament()`` plays one hardcoded cartesian product.  A
*campaign* is the open-ended generalization the ROADMAP's scale goal
needs: a declarative spec — adversaries (with instance-size parameters),
victims, locality ranges, step policies — loadable from JSON/TOML or
built in code, expanded deterministically into
:class:`~repro.analysis.executor.GameSpec` work items and drained by a
pool of worker processes pulling from a shared queue (work-stealing: a
worker takes the next pending game the moment it finishes its last one,
so stragglers never idle the rest of the pool, unlike a static
pre-partition).

Progress is kill-safe and machine-shardable because every finished game
lands in a :class:`~repro.analysis.store.ResultStore` keyed by the
game's content hash (:func:`~repro.analysis.store.spec_hash`):

* kill the run anywhere and re-run it — only the missing games play;
* run overlapping campaigns into one store — shared games play once;
* point two machines at two stores and merge by copying row shards.

Two campaign kinds ship:

* :class:`CampaignSpec` — a grid sweep (the tournament is the pre-baked
  special case, see :meth:`CampaignSpec.tournament`), and
* :class:`ThresholdSearchSpec` — an *adaptive* workload that
  binary-searches, per (adversary, victim), the smallest locality at
  which the victim survives (None if the adversary wins through the top
  of the range — the paper's prediction), issuing probes in waves
  through the same scheduler/store so a killed search resumes without
  replaying a single probe.

Failure handling is layered.  *Game*-level failures run inside the
existing :class:`~repro.robustness.supervisor.SupervisedGame` boundary,
so victim crashes/timeouts surface as forfeit *rows*, not errors.
Exceptions that escape the boundary (harness/adversary bugs, transient
OS failures) are retried with capped, fully-jittered exponential
backoff (``retries``); a game that still fails is reported in
:attr:`CampaignOutcome.errors` and — deliberately — *not* stored, so
the next run retries it.  *Process*-level failures (a SIGKILLed, OOM'd,
or natively hung worker) are recovered by the supervised worker pool
(:mod:`repro.analysis.worker_pool`): the lost in-flight game is
requeued, a replacement worker is respawned under a restart budget,
games that repeatedly kill workers are quarantined as structured
``forfeit:poison`` rows, and an exhausted budget degrades the run to
in-process serial execution instead of raising.

Observability: the run is wrapped in a ``campaign`` trace span and
counts ``campaign_games_played`` / ``campaign_games_deduped`` /
``campaign_game_retries`` / ``campaign_game_errors`` (plus the pool's
``campaign_worker_restarts`` / ``campaign_lease_expirations`` /
``campaign_games_requeued`` / ``campaign_games_quarantined`` /
``campaign_pool_degradations``) in the metrics registry; worker metric
snapshots fold into the parent exactly as in
:class:`~repro.analysis.executor.ParallelSweep`.
"""

from __future__ import annotations

import json
import os
import random
import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.executor import (
    GameSpec,
    WorkerResult,
    play_spec,
    resolve_workers,
)
from repro.analysis.store import (
    HASH_FIELD,
    QUARANTINE_CAUSE,
    ResultStore,
    spec_hash,
)
from repro.analysis.tables import render_table
from repro.analysis.worker_pool import (
    SupervisedWorkerPool,
    _error_entry,
)
from repro.observability.export import write_live_status
from repro.observability.flightrec import dump_on_fault
from repro.observability.metrics import get_registry
from repro.observability.timers import (
    attribution_coverage,
    phase_attribution,
    phase_delta,
    phase_timer,
    set_phase_timers,
)
from repro.observability.trace import (
    TRACER,
    JsonlTraceRecorder,
    merge_trace_shards,
)
from repro.registry import (
    DEFAULT_ADVERSARIES,
    DEFAULT_VICTIMS,
    FAULTY_VICTIM_NAMES,
    FIXED_VICTIM,
    adversary_is_fixed,
    get_adversary,
    get_victim,
)
from repro.robustness.chaos import ChaosPolicy
from repro.robustness.errors import ReproError
from repro.robustness.supervisor import GamePolicy

# Phase-attribution handles (repro.observability.timers).  "compute" is
# the serial scheduler's play time; the pool workers record theirs as
# "worker:compute" and the parent's wait shows up as "ack-drain".
_T_SPEC_EXPAND = phase_timer("spec-expand")
_T_COMPUTE = phase_timer("compute")


class CampaignError(ReproError):
    """A campaign-level failure (bad spec file, malformed manifest).

    Worker-process failures are *not* campaign errors any more: the
    supervised pool (:mod:`repro.analysis.worker_pool`) requeues,
    quarantines, or degrades to serial execution instead of raising.
    """


class SpecVersionError(CampaignError):
    """The spec declares a schema version this build does not speak.

    Kept distinct from plain :class:`CampaignError` so callers can map
    it to a precise machine-readable error (the HTTP server's
    ``unsupported-version`` :class:`~repro.api.ErrorBody` code); the CLI
    treats both as usage errors (exit 2).
    """


#: The campaign spec schema version this build reads and writes.
#: Versionless spec files are accepted as version 1 with a warning;
#: any other version is rejected with :class:`SpecVersionError`.
SPEC_VERSION = 1


def check_spec_version(payload: Mapping[str, Any]) -> None:
    """Validate ``payload``'s declared schema version.

    * no ``version`` field — accepted as version :data:`SPEC_VERSION`,
      with a :class:`FutureWarning` nudging the spec author to declare
      it (a future version 2 would otherwise silently misparse);
    * ``version: 1`` — accepted silently;
    * anything else — :class:`SpecVersionError`.
    """
    if "version" not in payload:
        warnings.warn(
            f"campaign spec declares no 'version' field; assuming "
            f'version {SPEC_VERSION} (add "version": {SPEC_VERSION} '
            f"to the spec to silence this warning)",
            FutureWarning,
            stacklevel=3,
        )
        return
    version = payload["version"]
    if version != SPEC_VERSION:
        raise SpecVersionError(
            f"unsupported campaign spec version {version!r}; this build "
            f"speaks version {SPEC_VERSION}"
        )


# ----------------------------------------------------------------------
# Spec payloads and hashing
# ----------------------------------------------------------------------

Params = Tuple[Tuple[str, Any], ...]


def freeze_params(params: Optional[Mapping[str, Any]]) -> Params:
    """A mapping as the sorted, hashable tuple form ``GameSpec.params``
    carries across process boundaries."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class AdversaryRef:
    """One adversary dimension entry: a registry name plus factory
    parameters (instance-size knobs like ``k``/``side``/``length``).

    Spec files write either a bare string (``"theorem1-grid"``) or an
    object (``{"name": "theorem3-gadget(2k-2)", "params": {"k": 4}}``).
    """

    name: str
    params: Params = ()

    @classmethod
    def of(cls, config: Union[str, Mapping[str, Any], "AdversaryRef"]) -> "AdversaryRef":
        if isinstance(config, AdversaryRef):
            return config
        if isinstance(config, str):
            return cls(name=config)
        if isinstance(config, Mapping):
            extra = set(config) - {"name", "params"}
            if "name" not in config or extra:
                raise CampaignError(
                    f"adversary entries take 'name' and optional 'params', "
                    f"got {dict(config)!r}"
                )
            return cls(
                name=config["name"],
                params=freeze_params(config.get("params")),
            )
        raise CampaignError(f"bad adversary entry {config!r}")

    def label(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}[{inner}]"

    def to_config(self) -> Union[str, Dict[str, Any]]:
        if not self.params:
            return self.name
        return {"name": self.name, "params": dict(self.params)}


def payload_of(spec: GameSpec) -> Dict[str, Any]:
    """The canonical content-hash payload of one game.

    Includes everything that determines the game's outcome — adversary
    name + params, victim, locality, step budget — and excludes run
    plumbing (wall-clock timeout, worker count, journal/trace paths);
    see :mod:`repro.analysis.store` for the rationale.
    """
    return {
        "adversary": spec.adversary,
        "params": dict(spec.params),
        "victim": spec.victim,
        "locality": spec.locality,
        "step_budget": spec.policy.step_budget,
    }


def hash_of(spec: GameSpec) -> str:
    """The content address of one game spec."""
    return spec_hash(payload_of(spec))


def _expand_localities(value: Any) -> Tuple[int, ...]:
    """A locality dimension: a list of ints, or a range object
    ``{"start": a, "stop": b[, "step": s]}`` (stop inclusive)."""
    if isinstance(value, Mapping):
        extra = set(value) - {"start", "stop", "step"}
        if extra or "start" not in value or "stop" not in value:
            raise CampaignError(
                f"locality ranges take start/stop[/step], got {dict(value)!r}"
            )
        step = int(value.get("step", 1))
        if step < 1:
            raise CampaignError(f"locality range step must be >= 1, got {step}")
        return tuple(range(int(value["start"]), int(value["stop"]) + 1, step))
    if isinstance(value, int):
        return (value,)
    try:
        return tuple(int(item) for item in value)
    except (TypeError, ValueError):
        raise CampaignError(f"bad locality dimension {value!r}") from None


def _resolve_victims(
    victims: Optional[Sequence[str]], include_faulty: bool
) -> Tuple[str, ...]:
    names = tuple(victims) if victims is not None else DEFAULT_VICTIMS
    if include_faulty:
        names = names + tuple(
            name for name in FAULTY_VICTIM_NAMES if name not in names
        )
    return names


def _resolve_adversaries(
    adversaries: Optional[Sequence[Any]],
) -> Tuple[AdversaryRef, ...]:
    entries = (
        adversaries if adversaries is not None else DEFAULT_ADVERSARIES
    )
    return tuple(AdversaryRef.of(entry) for entry in entries)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid-sweep campaign.

    Dimensions expand in deterministic order — locality-major, then
    adversary (registration order of the default lineup), then victim —
    so the same spec always yields the same game list and the same
    content hashes.
    """

    name: str = "campaign"
    adversaries: Tuple[AdversaryRef, ...] = ()
    victims: Tuple[str, ...] = ()
    localities: Tuple[int, ...] = (1,)
    step_budget: Optional[int] = None
    timeout: Optional[float] = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "adversaries", _resolve_adversaries(self.adversaries or None)
        )
        object.__setattr__(
            self, "victims", tuple(self.victims) or DEFAULT_VICTIMS
        )
        object.__setattr__(
            self, "localities", _expand_localities(self.localities)
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        check_spec_version(payload)
        known = {
            "version", "kind", "name", "adversaries", "victims",
            "localities", "include_faulty", "step_budget", "timeout",
        }
        extra = set(payload) - known
        if extra:
            raise CampaignError(
                f"unknown campaign spec fields {sorted(extra)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(
            name=str(payload.get("name", "campaign")),
            adversaries=_resolve_adversaries(payload.get("adversaries")),
            victims=_resolve_victims(
                payload.get("victims"), bool(payload.get("include_faulty"))
            ),
            localities=_expand_localities(payload.get("localities", [1])),
            step_budget=payload.get("step_budget"),
            timeout=payload.get("timeout", 30.0),
        )

    @classmethod
    def tournament(
        cls, locality: int = 1, include_faulty: bool = False
    ) -> "CampaignSpec":
        """The pre-baked campaign ``run_tournament()`` is a thin wrapper
        over: the default portfolios at one locality."""
        return cls(
            name=f"tournament(T={locality})",
            adversaries=_resolve_adversaries(None),
            victims=_resolve_victims(None, include_faulty),
            localities=(locality,),
        )

    def to_payload(self) -> Dict[str, Any]:
        """The manifest payload (JSON-able, canonical)."""
        return {
            "version": SPEC_VERSION,
            "kind": "sweep",
            "name": self.name,
            "adversaries": [ref.to_config() for ref in self.adversaries],
            "victims": list(self.victims),
            "localities": list(self.localities),
            "step_budget": self.step_budget,
            "timeout": self.timeout,
        }

    def policy(self) -> GamePolicy:
        return GamePolicy(step_budget=self.step_budget, timeout=self.timeout)

    # -- expansion ------------------------------------------------------
    def expand(
        self,
        journal_path: Optional[str] = None,
        trace_path: Optional[str] = None,
    ) -> List[GameSpec]:
        """The campaign's full work list, in deterministic order."""
        policy = self.policy()
        specs: List[GameSpec] = []
        for locality in self.localities:
            for ref in self.adversaries:
                if adversary_is_fixed(ref.name):
                    victims: Tuple[str, ...] = (FIXED_VICTIM,)
                else:
                    victims = self.victims
                for victim in victims:
                    specs.append(
                        GameSpec(
                            adversary=ref.name,
                            victim=victim,
                            locality=locality,
                            policy=policy,
                            journal_path=journal_path,
                            trace_path=trace_path,
                            params=ref.params,
                        )
                    )
        return specs

    def validate(self) -> None:
        """Resolve every name now, so bad specs fail before any game."""
        for ref in self.adversaries:
            get_adversary(ref.name)
        for victim in self.victims:
            get_victim(victim)


@dataclass(frozen=True)
class ThresholdSearchSpec:
    """An adaptive campaign: per (adversary, victim), binary-search the
    smallest locality in ``[low, high]`` at which the victim survives.

    ``None`` thresholds mean the adversary won at every probed locality
    up to ``high`` — for the paper's adversaries that is the expected
    outcome at any feasible range, and the table records how far the
    lower bound was verified.
    """

    name: str = "threshold-search"
    adversaries: Tuple[AdversaryRef, ...] = ()
    victims: Tuple[str, ...] = ()
    low: int = 0
    high: int = 4
    step_budget: Optional[int] = None
    timeout: Optional[float] = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "adversaries", _resolve_adversaries(self.adversaries or None)
        )
        object.__setattr__(
            self, "victims", tuple(self.victims) or DEFAULT_VICTIMS
        )
        if self.low < 0 or self.high < self.low:
            raise CampaignError(
                f"need 0 <= low <= high, got [{self.low}, {self.high}]"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ThresholdSearchSpec":
        check_spec_version(payload)
        known = {
            "version", "kind", "name", "adversaries", "victims", "low",
            "high", "include_faulty", "step_budget", "timeout",
        }
        extra = set(payload) - known
        if extra:
            raise CampaignError(
                f"unknown threshold spec fields {sorted(extra)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(
            name=str(payload.get("name", "threshold-search")),
            adversaries=_resolve_adversaries(payload.get("adversaries")),
            victims=_resolve_victims(
                payload.get("victims"), bool(payload.get("include_faulty"))
            ),
            low=int(payload.get("low", 0)),
            high=int(payload.get("high", 4)),
            step_budget=payload.get("step_budget"),
            timeout=payload.get("timeout", 30.0),
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "kind": "threshold",
            "name": self.name,
            "adversaries": [ref.to_config() for ref in self.adversaries],
            "victims": list(self.victims),
            "low": self.low,
            "high": self.high,
            "step_budget": self.step_budget,
            "timeout": self.timeout,
        }

    def policy(self) -> GamePolicy:
        return GamePolicy(step_budget=self.step_budget, timeout=self.timeout)

    def combos(self) -> List[Tuple[AdversaryRef, str]]:
        """The (adversary, victim) pairs searched, in deterministic
        order; fixed-victim adversaries contribute one pair."""
        out: List[Tuple[AdversaryRef, str]] = []
        for ref in self.adversaries:
            if adversary_is_fixed(ref.name):
                out.append((ref, FIXED_VICTIM))
            else:
                out.extend((ref, victim) for victim in self.victims)
        return out

    def game(self, ref: AdversaryRef, victim: str, locality: int) -> GameSpec:
        return GameSpec(
            adversary=ref.name,
            victim=victim,
            locality=locality,
            policy=self.policy(),
            params=ref.params,
        )

    def validate(self) -> None:
        for ref in self.adversaries:
            get_adversary(ref.name)
        for victim in self.victims:
            get_victim(victim)


AnyCampaign = Union[CampaignSpec, ThresholdSearchSpec]


def campaign_from_dict(payload: Mapping[str, Any]) -> AnyCampaign:
    """Build a campaign from a spec payload; ``kind`` selects the class
    (``"sweep"`` — the default — or ``"threshold"``).

    The payload's schema ``version`` is validated here *and* in the
    per-class ``from_dict`` (callers reach either entry point): missing
    versions are accepted as v1 with a warning, unknown versions raise
    :class:`SpecVersionError`.
    """
    check_spec_version(payload)
    # Normalize so the per-class from_dict does not warn a second time
    # for the same versionless payload.
    payload = dict(payload)
    payload.setdefault("version", SPEC_VERSION)
    kind = payload.get("kind", "sweep")
    if kind == "sweep":
        return CampaignSpec.from_dict(payload)
    if kind == "threshold":
        return ThresholdSearchSpec.from_dict(payload)
    raise CampaignError(
        f"unknown campaign kind {kind!r}; choose from ['sweep', 'threshold']"
    )


def load_campaign(path) -> AnyCampaign:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise CampaignError(f"no campaign spec at {path!r}")
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py<3.11 fallback
            raise CampaignError(
                "TOML campaign specs need Python 3.11+ (tomllib); "
                "use JSON instead"
            ) from None
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    else:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CampaignError(f"bad JSON in {path!r}: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise CampaignError(f"campaign spec {path!r} must be an object")
    return campaign_from_dict(payload)


# ----------------------------------------------------------------------
# The sharded work-queue scheduler
# ----------------------------------------------------------------------


#: Ceiling on one backoff sleep, so deep retry chains never stall a
#: worker for minutes.
BACKOFF_CAP_SECONDS = 2.0


def _backoff_delay(
    attempt: int,
    base: float,
    cap: float = BACKOFF_CAP_SECONDS,
    rng: Optional[random.Random] = None,
) -> float:
    """The sleep before retry ``attempt`` (1-based): **full jitter** over
    the capped exponential window.

    ``uniform(0, min(cap, base × 2^(attempt-1)))`` — the AWS full-jitter
    scheme: workers that fail simultaneously (a shared transient, a
    thundering requeue after a pool respawn) spread their retries over
    the whole window instead of stampeding in lockstep, and the cap
    bounds the worst-case stall however deep the retry chain gets.
    """
    window = min(cap, base * (2 ** (attempt - 1)))
    if window <= 0:
        return 0.0
    draw = rng.uniform if rng is not None else random.uniform
    return draw(0.0, window)


def _play_with_retry(spec: GameSpec, retries: int, backoff: float) -> WorkerResult:
    """``play_spec`` with capped, fully-jittered exponential-backoff
    retries for exceptions that escape the supervisor boundary (victim
    failures never do — they come back as forfeit rows)."""
    attempt = 0
    while True:
        try:
            return play_spec(spec)
        except Exception:
            attempt += 1
            if attempt > retries:
                raise
            get_registry().inc("campaign_game_retries")
            time.sleep(_backoff_delay(attempt, backoff))


def _store_row(outcome: WorkerResult, digest: str) -> Dict[str, Any]:
    row = asdict(outcome.row)
    row[HASH_FIELD] = digest
    return row


class CampaignScheduler:
    """Drain game specs through the store-deduped work queue.

    Parameters
    ----------
    store:
        The :class:`ResultStore` consulted before dispatch (games whose
        hash is present are *deduped* — served from disk, never
        replayed) and written by the workers.
    workers:
        Worker process count; 1 plays inline with no pool, the identical
        code path otherwise.
    retries, backoff:
        Per-game retry budget and base backoff (seconds) for exceptions
        escaping the supervisor (the actual sleeps are capped and fully
        jittered; see :func:`_backoff_delay`).
    max_worker_restarts, poison_threshold, lease_grace:
        Supervision knobs forwarded to
        :class:`~repro.analysis.worker_pool.SupervisedWorkerPool`: the
        pool-wide worker respawn budget (None = the pool default), how
        many workers one game may kill or hang before it is quarantined,
        and the lease-deadline multiplier over the spec's timeout.
    chunk_size:
        Games per worker lease (forwarded to the pool); None adapts —
        large chunks while the queue is deep, halving toward 1 at the
        tail.  ``1`` pins the degenerate per-game protocol.
    chaos:
        Optional :class:`~repro.robustness.chaos.ChaosPolicy` shipped to
        workers (defaults to the ``REPRO_CHAOS`` environment; the
        parent process never applies chaos).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        retries: int = 1,
        backoff: float = 0.05,
        max_worker_restarts: Optional[int] = None,
        poison_threshold: int = 3,
        lease_grace: float = 3.0,
        chaos: Optional["ChaosPolicy"] = None,
        chunk_size: Optional[int] = None,
        live_extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.max_worker_restarts = max_worker_restarts
        self.poison_threshold = poison_threshold
        self.lease_grace = lease_grace
        self.chaos = chaos
        self.chunk_size = chunk_size
        self.live_extra = dict(live_extra) if live_extra else {}
        self._last_deduped = 0

    def run(
        self,
        specs: Sequence[GameSpec],
        max_games: Optional[int] = None,
    ) -> Tuple[Dict[str, Dict[str, Any]], int, List[Dict[str, Any]]]:
        """Play every spec not already stored; returns
        ``(played_rows_by_hash, deduped_count, errors)``.

        ``max_games`` caps the number of games *played* this call (not
        the deduped ones) — budgeted incremental runs; the store picks
        up where the budget stopped on the next call.
        """
        index = self.store.index()
        registry = get_registry()
        work: List[Tuple[str, GameSpec]] = []
        seen: set = set()
        deduped = 0
        with _T_SPEC_EXPAND:
            for spec in specs:
                digest = hash_of(spec)
                if digest in index:
                    deduped += 1
                    continue
                if digest in seen:
                    continue
                seen.add(digest)
                work.append((digest, spec))
            if max_games is not None:
                work = work[:max_games]
        registry.inc("campaign_games_deduped", deduped)
        self._last_deduped = deduped
        if not work:
            return {}, deduped, []

        if self.workers == 1:
            rows, errors = self._run_serial(work)
        else:
            rows, errors = self._run_pool(work)
        registry.inc("campaign_games_played", len(rows))
        registry.inc("campaign_game_errors", len(errors))
        return rows, deduped, errors

    #: Seconds between serial-path ``live.json`` rewrites; mirrors the
    #: supervised pool's ``live_interval`` so ``campaign watch`` and the
    #: server's SSE progress stream work identically at ``workers=1``.
    LIVE_INTERVAL = 1.0

    def _run_serial(
        self, work: List[Tuple[str, GameSpec]]
    ) -> Tuple[Dict[str, Dict[str, Any]], List[Dict[str, Any]]]:
        rows: Dict[str, Dict[str, Any]] = {}
        errors: List[Dict[str, Any]] = []
        total = len(work)
        last_live = 0.0
        for digest, spec in work:
            try:
                with _T_COMPUTE:
                    outcome = _play_with_retry(spec, self.retries, self.backoff)
            except Exception as exc:
                errors.append(_error_entry(digest, spec, repr(exc)))
            else:
                row = _store_row(outcome, digest)
                self.store.add(row)
                rows[digest] = row
            now = time.monotonic()
            if now - last_live >= self.LIVE_INTERVAL:
                last_live = now
                self._publish_serial_live(len(rows), total, len(errors), False)
        self._publish_serial_live(len(rows), total, len(errors), True)
        return rows, errors

    def _publish_serial_live(
        self, played: int, total: int, errors: int, done: bool
    ) -> None:
        """Telemetry for the serial path: same ``live.json`` channel the
        supervised pool publishes, minus the per-worker fleet rows.
        Failures are swallowed inside :func:`write_live_status`."""
        status: Dict[str, Any] = dict(self.live_extra)
        status.setdefault("games_deduped", self._last_deduped)
        status.update(
            {
                "done": done,
                "monotonic": time.monotonic(),
                "games_total": total,
                "games_played": played,
                "games_errors": errors,
                "queue_depth": max(total - played - errors, 0),
                "in_flight": 0 if done else 1,
                "workers": [],
            }
        )
        write_live_status(self.store.root, status)

    def _run_pool(
        self, work: List[Tuple[str, GameSpec]]
    ) -> Tuple[Dict[str, Dict[str, Any]], List[Dict[str, Any]]]:
        """Drain ``work`` through the supervised worker pool.

        Dead workers and expired leases are recovered inside the pool
        (requeue, respawn, quarantine); the only pool failure that
        reaches this level is an exhausted restart budget, and that
        *degrades* — the remaining queue finishes in-process serially —
        rather than raising.
        """
        live_extra = dict(self.live_extra)
        live_extra.setdefault("games_deduped", self._last_deduped)
        pool = SupervisedWorkerPool(
            store=self.store,
            workers=self.workers,
            retries=self.retries,
            backoff=self.backoff,
            max_worker_restarts=self.max_worker_restarts,
            poison_threshold=self.poison_threshold,
            lease_grace=self.lease_grace,
            chaos=self.chaos,
            chunk_size=self.chunk_size,
            live_extra=live_extra,
        )
        outcome = pool.run(work)
        rows, errors = outcome.rows, outcome.errors
        if outcome.leftover:
            TRACER.event(
                "campaign-degraded",
                remaining=len(outcome.leftover),
                restarts=outcome.restarts,
            )
            serial_rows, serial_errors = self._run_serial(outcome.leftover)
            rows.update(serial_rows)
            errors.extend(serial_errors)
        return rows, errors


# ----------------------------------------------------------------------
# Campaign drivers
# ----------------------------------------------------------------------


@dataclass
class CampaignOutcome:
    """What one campaign run did and found.

    ``rows`` maps content hash → row for every game the campaign covers
    that is now in the store (played this run *or* deduped from earlier
    runs); ``played``/``deduped`` count this run's split, which is what
    ``campaign status`` surfaces to demonstrate zero replay.
    """

    name: str
    total: int
    played: int
    deduped: int
    rows: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    errors: List[Dict[str, Any]] = field(default_factory=list)


def _finish_trace(trace_path) -> None:
    if trace_path is None:
        return
    merge_trace_shards(trace_path)
    recorder = JsonlTraceRecorder(trace_path)
    recorder.write(
        {"type": "metrics", "snapshot": get_registry().snapshot()}
    )
    recorder.close()


def run_campaign(
    campaign: CampaignSpec,
    store_dir,
    *,
    workers: Optional[int] = None,
    max_games: Optional[int] = None,
    retries: int = 1,
    trace_path=None,
    max_worker_restarts: Optional[int] = None,
    poison_threshold: int = 3,
    chunk_size: Optional[int] = None,
    timers: Optional[bool] = None,
) -> CampaignOutcome:
    """Run (or resume — the same thing) a grid-sweep campaign.

    Every expanded game already present in ``store_dir`` is deduped;
    the rest are drained through the work-queue scheduler.  Returns the
    outcome with every covered row that is now on disk.

    ``timers`` toggles phase-attribution timing for this run (restored
    afterwards); ``None`` leaves the process-wide setting alone.  The
    run-ledger entry records the measured wall-clock, the per-phase
    split, and the share of wall-clock the top-level phases account for
    (``campaign status`` renders the table).
    """
    campaign.validate()
    store = ResultStore(store_dir)
    store.record_manifest(campaign.to_payload())
    previous_timers = None if timers is None else set_phase_timers(timers)
    registry = get_registry()
    phases_before = phase_attribution(registry.snapshot())
    started = time.perf_counter()
    try:
        with _T_SPEC_EXPAND:
            specs = campaign.expand(trace_path=(
                None if trace_path is None else os.fspath(trace_path)
            ))
        scheduler = CampaignScheduler(
            store,
            workers=resolve_workers(workers),
            retries=retries,
            max_worker_restarts=max_worker_restarts,
            poison_threshold=poison_threshold,
            chunk_size=chunk_size,
            live_extra={"campaign": campaign.name, "kind": "sweep"},
        )
        with TRACER.span(
            "campaign", name=campaign.name, campaign_kind="sweep"
        ) as span:
            try:
                played, deduped, errors = scheduler.run(
                    specs, max_games=max_games
                )
            except BaseException as exc:
                # An exception escaping the scheduler is exactly the
                # post-mortem the flight recorder exists for.
                dump_on_fault(
                    store.root,
                    "scheduler-exception",
                    campaign=campaign.name,
                    error_type=type(exc).__name__,
                )
                raise
            span.note(
                total=len(specs),
                played=len(played),
                deduped=deduped,
                errors=len(errors),
            )
        _finish_trace(trace_path)
        index = store.index()
        rows = {}
        with _T_SPEC_EXPAND:
            for spec in specs:
                digest = hash_of(spec)
                if digest in index:
                    rows[digest] = index[digest]
        wall = time.perf_counter() - started
        phases = phase_delta(
            phases_before, phase_attribution(registry.snapshot())
        )
        outcome = CampaignOutcome(
            name=campaign.name,
            total=len(specs),
            played=len(played),
            deduped=deduped,
            rows=rows,
            errors=errors,
        )
        store.record_run(
            _run_summary(
                outcome,
                kind="sweep",
                max_games=max_games,
                wall_seconds=wall,
                phases=phases,
            )
        )
        return outcome
    finally:
        if previous_timers is not None:
            set_phase_timers(previous_timers)


def _run_summary(
    outcome: CampaignOutcome,
    kind: str,
    max_games: Optional[int],
    wall_seconds: Optional[float] = None,
    phases: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    summary = {
        "campaign": outcome.name,
        "kind": kind,
        "total": outcome.total,
        "played": outcome.played,
        "deduped": outcome.deduped,
        "errors": len(outcome.errors),
        "max_games": max_games,
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = round(wall_seconds, 6)
        if phases:
            summary["phases"] = {
                name: round(seconds, 6)
                for name, seconds in sorted(phases.items())
            }
            coverage = attribution_coverage(phases, wall_seconds)
            if coverage is not None:
                summary["phase_coverage"] = round(coverage, 4)
    return summary


# ----------------------------------------------------------------------
# Adaptive threshold search
# ----------------------------------------------------------------------


class _Bisection:
    """Incremental form of
    :func:`repro.analysis.experiments.threshold_locality`: the driver
    asks for the next probe, feeds back whether the victim survived, and
    the invariant (survive at T ⇒ survive at T' > T) pins the smallest
    surviving locality in O(log(high-low)) probes."""

    __slots__ = ("lo", "hi", "phase", "done", "threshold")

    def __init__(self, low: int, high: int) -> None:
        self.lo = low
        self.hi = high
        self.phase = "check-high"
        self.done = False
        self.threshold: Optional[int] = None

    def next_probe(self) -> Optional[int]:
        if self.done:
            return None
        if self.phase == "check-high":
            return self.hi
        return (self.lo + self.hi) // 2

    def feed(self, locality: int, survives: bool) -> None:
        if self.phase == "check-high":
            if not survives:
                self.done = True
                self.threshold = None
                return
            self.phase = "bisect"
            if self.lo >= self.hi:
                self.done = True
                self.threshold = self.lo
            return
        if survives:
            self.hi = locality
        else:
            self.lo = locality + 1
        if self.lo >= self.hi:
            self.done = True
            self.threshold = self.lo


@dataclass
class ThresholdResult:
    """One combo's search outcome.

    ``threshold`` is the smallest locality in ``[low, high]`` where the
    victim survived, or None when the adversary won through ``high``
    (recorded in the table as ``>high`` — the lower bound held over the
    whole range).  ``n`` is the adversary's instance size at the
    decisive probe, when the adversary reports one.
    """

    adversary: str
    victim: str
    low: int
    high: int
    threshold: Optional[int]
    probes: int
    converged: bool = True
    n: Optional[int] = None


def run_threshold_search(
    spec: ThresholdSearchSpec,
    store_dir,
    *,
    workers: Optional[int] = None,
    max_games: Optional[int] = None,
    retries: int = 1,
    trace_path=None,
    max_worker_restarts: Optional[int] = None,
    poison_threshold: int = 3,
    chunk_size: Optional[int] = None,
    timers: Optional[bool] = None,
) -> Tuple[List[ThresholdResult], CampaignOutcome]:
    """Run (or resume) the adaptive threshold-search campaign.

    Probes are issued in waves — one pending probe per unconverged
    (adversary, victim) combo — through the same scheduler/store as grid
    sweeps, so probes dedupe against any earlier run (including grid
    sweeps that happened to cover the same games) and a killed search
    resumes by replaying *zero* games: bisection is deterministic, so
    the resumed run re-derives the same probe sequence and finds every
    already-answered probe in the store.

    ``timers`` works as in :func:`run_campaign`: phase attribution for
    this run, recorded in the run-ledger entry.
    """
    spec.validate()
    store = ResultStore(store_dir)
    store.record_manifest(spec.to_payload())
    previous_timers = None if timers is None else set_phase_timers(timers)
    registry = get_registry()
    phases_before = phase_attribution(registry.snapshot())
    started = time.perf_counter()
    scheduler = CampaignScheduler(
        store,
        workers=resolve_workers(workers),
        retries=retries,
        max_worker_restarts=max_worker_restarts,
        poison_threshold=poison_threshold,
        chunk_size=chunk_size,
        live_extra={"campaign": spec.name, "kind": "threshold"},
    )
    trace_path = None if trace_path is None else os.fspath(trace_path)

    combos = spec.combos()
    states = {combo: _Bisection(spec.low, spec.high) for combo in combos}
    probes = {combo: 0 for combo in combos}
    played_total = 0
    deduped_total = 0
    errors: List[Dict[str, Any]] = []
    budget = max_games
    rows: Dict[str, Dict[str, Any]] = {}

    try:
        with TRACER.span(
            "campaign", name=spec.name, campaign_kind="threshold"
        ) as span:
            while True:
                with _T_SPEC_EXPAND:
                    wave: List[
                        Tuple[Tuple[AdversaryRef, str], int, GameSpec]
                    ] = []
                    for combo, state in states.items():
                        if state.done:
                            continue
                        locality = state.next_probe()
                        ref, victim = combo
                        game = replace(
                            spec.game(ref, victim, locality),
                            trace_path=trace_path,
                        )
                        wave.append((combo, locality, game))
                if not wave or budget == 0:
                    break
                wave_specs = [game for _, _, game in wave]
                try:
                    played, deduped, wave_errors = scheduler.run(
                        wave_specs, max_games=budget
                    )
                except BaseException as exc:
                    dump_on_fault(
                        store.root,
                        "scheduler-exception",
                        campaign=spec.name,
                        error_type=type(exc).__name__,
                    )
                    raise
                if budget is not None:
                    budget -= len(played)
                played_total += len(played)
                deduped_total += deduped
                errors.extend(wave_errors)
                index = store.index()
                progressed = False
                for combo, locality, game in wave:
                    digest = hash_of(game)
                    row = index.get(digest)
                    if row is None:
                        continue  # budget-capped or errored; retry next run
                    rows[digest] = row
                    probes[combo] += 1
                    states[combo].feed(locality, survives=not row["won"])
                    progressed = True
                if not progressed:
                    break  # every remaining probe failed or out of budget
            span.note(
                combos=len(combos),
                played=played_total,
                deduped=deduped_total,
                errors=len(errors),
            )
        _finish_trace(trace_path)

        results = [
            ThresholdResult(
                adversary=ref.label(),
                victim=victim,
                low=spec.low,
                high=spec.high,
                threshold=states[(ref, victim)].threshold,
                probes=probes[(ref, victim)],
                converged=states[(ref, victim)].done,
                n=_combo_n(rows, ref, victim),
            )
            for ref, victim in combos
        ]
        wall = time.perf_counter() - started
        phases = phase_delta(
            phases_before, phase_attribution(registry.snapshot())
        )
        outcome = CampaignOutcome(
            name=spec.name,
            total=sum(probes.values()),
            played=played_total,
            deduped=deduped_total,
            rows=rows,
            errors=errors,
        )
        store.record_run(
            _run_summary(
                outcome,
                kind="threshold",
                max_games=max_games,
                wall_seconds=wall,
                phases=phases,
            )
        )
        return results, outcome
    finally:
        if previous_timers is not None:
            set_phase_timers(previous_timers)


def _combo_n(
    rows: Mapping[str, Mapping[str, Any]], ref: AdversaryRef, victim: str
) -> Optional[int]:
    """The largest instance size this combo's probes reported."""
    sizes = [
        row.get("n")
        for row in rows.values()
        if row.get("adversary") == ref.name and row.get("victim") == victim
        and row.get("n") is not None
    ]
    return max(sizes) if sizes else None


def threshold_table(results: Sequence[ThresholdResult]) -> str:
    """The EXPERIMENTS.md-ready table of threshold-search outcomes."""
    def cell(result: ThresholdResult) -> str:
        if not result.converged:
            return "?"
        if result.threshold is None:
            return f">{result.high}"
        return str(result.threshold)

    return render_table(
        ["adversary", "victim", "n", "range", "threshold T", "probes"],
        [
            [
                result.adversary,
                result.victim,
                result.n if result.n is not None else "-",
                f"[{result.low}, {result.high}]",
                cell(result),
                result.probes,
            ]
            for result in results
        ],
    )


# ----------------------------------------------------------------------
# Status (read-only progress report)
# ----------------------------------------------------------------------


@dataclass
class CampaignStatus:
    """Read-only progress of one manifest against a store.

    ``quarantined`` counts covered games answered by a poison-game
    quarantine row (``cause="poison"``) rather than an actual play —
    they count as *done* (resume will not replay them) but deserve the
    operator's eye.
    """

    name: str
    kind: str
    done: int
    total: Optional[int]  # None for adaptive campaigns (open-ended)
    detail: str = ""
    quarantined: int = 0


def campaign_status(store_dir) -> Tuple[List[CampaignStatus], List[Dict[str, Any]]]:
    """Progress of every campaign recorded in a store, plus the run
    ledger (whose played/deduped split is the zero-replay evidence)."""
    store = ResultStore(store_dir)
    index = store.index()
    statuses: List[CampaignStatus] = []
    for payload in store.manifests():
        try:
            campaign = campaign_from_dict(payload)
        except (CampaignError, ReproError) as exc:
            statuses.append(
                CampaignStatus(
                    name=str(payload.get("name", "?")),
                    kind=str(payload.get("kind", "?")),
                    done=0,
                    total=None,
                    detail=f"unreadable manifest: {exc}",
                )
            )
            continue
        if isinstance(campaign, CampaignSpec):
            specs = campaign.expand()
            covered = [
                index[hash_of(spec)]
                for spec in specs
                if hash_of(spec) in index
            ]
            statuses.append(
                CampaignStatus(
                    name=campaign.name,
                    kind="sweep",
                    done=len(covered),
                    total=len(specs),
                    quarantined=sum(
                        1
                        for row in covered
                        if row.get("cause") == QUARANTINE_CAUSE
                    ),
                )
            )
        else:
            results, answered = _replay_threshold(campaign, index)
            converged = sum(1 for result in results if result.converged)
            statuses.append(
                CampaignStatus(
                    name=campaign.name,
                    kind="threshold",
                    done=answered,
                    total=None,
                    detail=(
                        f"{converged}/{len(results)} combos converged"
                    ),
                )
            )
    return statuses, store.runs()


def covered_rows(
    campaign: AnyCampaign, index: Mapping[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The store rows a campaign covers, in the campaign's own
    deterministic order — expansion order for sweeps, probe order for
    threshold searches.

    This is the server's pagination backbone (`GET
    /v1/campaigns/{id}/rows`): the order is a pure function of the spec,
    so two requests against the same store snapshot paginate
    identically, and a resumed store yields byte-identical pages.
    """
    if isinstance(campaign, CampaignSpec):
        rows: List[Dict[str, Any]] = []
        for spec in campaign.expand():
            row = index.get(hash_of(spec))
            if row is not None:
                rows.append(row)
        return rows
    rows = []
    for ref, victim in campaign.combos():
        state = _Bisection(campaign.low, campaign.high)
        while not state.done:
            locality = state.next_probe()
            row = index.get(hash_of(campaign.game(ref, victim, locality)))
            if row is None:
                break
            rows.append(row)
            state.feed(locality, survives=not row["won"])
    return rows


def replay_threshold(
    spec: ThresholdSearchSpec, index: Mapping[str, Mapping[str, Any]]
) -> Tuple[List[ThresholdResult], int]:
    """Public alias of :func:`_replay_threshold` for status surfaces
    (the CLI's ``campaign status`` and the server's campaign handles)."""
    return _replay_threshold(spec, index)


def _replay_threshold(
    spec: ThresholdSearchSpec, index: Mapping[str, Mapping[str, Any]]
) -> Tuple[List[ThresholdResult], int]:
    """Re-derive threshold-search progress from stored rows alone — the
    deterministic bisection means the store *is* the search state."""
    answered = 0
    results: List[ThresholdResult] = []
    for ref, victim in spec.combos():
        state = _Bisection(spec.low, spec.high)
        probes = 0
        while not state.done:
            locality = state.next_probe()
            row = index.get(hash_of(spec.game(ref, victim, locality)))
            if row is None:
                break
            probes += 1
            answered += 1
            state.feed(locality, survives=not row["won"])
        results.append(
            ThresholdResult(
                adversary=ref.label(),
                victim=victim,
                low=spec.low,
                high=spec.high,
                threshold=state.threshold,
                probes=probes,
                converged=state.done,
            )
        )
    return results, answered
