"""The GKM simulation: SLOCAL inside LOCAL via network decompositions.

The paper's introduction: "Ghaffari, Kuhn, and Maus developed a method of
simulating an arbitrary SLOCAL algorithm in the LOCAL model using network
decompositions", which (with polylog decompositions) makes the
polylog-locality classes of LOCAL and SLOCAL identical.

The simulation, concretely: fix a (c, d)-decomposition, given to every
node as input labels.  Process cluster colors 0, 1, …, c−1 in order;
within a color, every cluster processes its own nodes sequentially (by
id).  Same-color clusters are non-adjacent, so a T-locality SLOCAL step
inside one cluster can never read a label being written concurrently by
another same-color cluster — the global sequential order

    (cluster color, cluster id, node id)

produces the same labels.  The key LOCAL fact is that a node's final
label depends only on its R-ball for ``R = c·(d + T) + T``-ish: chasing
dependencies goes through at most c color phases, each adding a cluster
traversal (≤ d) plus a view radius (T).

:class:`GkmSimulation` runs the global emulation, and
:meth:`dependency_radius` *measures* the locality the simulation needs at
each node (the smallest R such that re-running the emulation inside the
R-ball already pins the node's label) — the executable content of the
GKM theorem, with the measured radii checked against the c·(d+T)+T
budget in the tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.graphs.decomposition import Decomposition
from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache, ball
from repro.models.slocal import SLocalAlgorithm, SLocalView
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER

Node = Hashable
Color = int


class GkmSimulation:
    """Emulate an SLOCAL algorithm along the decomposition order.

    Parameters
    ----------
    host:
        The input graph.
    decomposition:
        A valid (c, d)-decomposition of the host (see
        :mod:`repro.graphs.decomposition`).
    algorithm:
        The SLOCAL algorithm to simulate.
    locality:
        The SLOCAL locality ``T``.
    num_colors:
        The output color budget.
    """

    def __init__(
        self,
        host: Graph,
        decomposition: Decomposition,
        algorithm: SLocalAlgorithm,
        locality: int,
        num_colors: int,
    ) -> None:
        self.host = host
        self.decomposition = decomposition
        self.algorithm = algorithm
        self.locality = locality
        self.num_colors = num_colors
        ordered = sorted(host.nodes(), key=repr)
        self._id_map = {node: index for index, node in enumerate(ordered)}
        # dependency_radius re-queries host balls at every radius; the
        # induced-subgraph emulations below use plain (uncached) BFS.
        self._host_balls = BallCache(host)

    # ------------------------------------------------------------------
    def processing_order(self, nodes=None) -> List[Node]:
        """The global order (cluster color, cluster id, node id)."""
        pool = list(self.host.nodes()) if nodes is None else list(nodes)
        dec = self.decomposition
        return sorted(
            pool,
            key=lambda node: (
                dec.color_of(node),
                dec.cluster_of[node],
                self._id_map[node],
            ),
        )

    def run(self) -> Dict[Node, Color]:
        """The full (centralized) emulation: the ground-truth labels."""
        return self._emulate(self.host, set(self.host.nodes()))

    def _emulate(self, graph: Graph, nodes) -> Dict[Node, Color]:
        """Run the SLOCAL algorithm over ``nodes`` of ``graph`` in the
        decomposition order, serving each node its T-ball view."""
        get_registry().inc("gkm_emulations_total")
        if TRACER.enabled:
            TRACER.event(
                "gkm-emulation",
                model="gkm",
                nodes=len(nodes) if hasattr(nodes, "__len__") else None,
            )
        self.algorithm.reset(
            n=self.host.num_nodes,
            locality=self.locality,
            num_colors=self.num_colors,
        )
        labels: Dict[Node, Color] = {}
        for node in self.processing_order(nodes):
            region = ball(graph, node, self.locality)
            sub = graph.induced_subgraph(region).relabel(
                {u: self._id_map[u] for u in region}
            )
            view = SLocalView(
                graph=sub,
                center=self._id_map[node],
                colors={
                    self._id_map[u]: labels[u] for u in region if u in labels
                },
                n=self.host.num_nodes,
                locality=self.locality,
            )
            labels[node] = self.algorithm.color(view)
        return labels

    # ------------------------------------------------------------------
    def label_from_ball(self, node: Node, radius: int) -> Color:
        """The node's label when the emulation runs only inside its
        ``radius``-ball — what a LOCAL algorithm with that locality can
        compute."""
        region = self._host_balls.ball(node, radius)
        local_labels = self._emulate(self.host.induced_subgraph(region), region)
        return local_labels[node]

    def dependency_radius(self, node: Node, max_radius: Optional[int] = None) -> int:
        """The smallest R with ``label_from_ball(node, r) ==`` the global
        label for every r ≥ R (checked up to ``max_radius``).

        This is the locality the GKM LOCAL simulation needs at ``node``.
        """
        truth = self.run()[node]
        if max_radius is None:
            max_radius = self.host.num_nodes
        stable_from = 0
        for radius in range(0, max_radius + 1):
            if self.label_from_ball(node, radius) != truth:
                stable_from = radius + 1
            if len(self._host_balls.ball(node, radius)) == self.host.num_nodes:
                break
        return stable_from

    def radius_budget(self) -> int:
        """The GKM-style bound c·(d + T) + T on the dependency radius."""
        c = self.decomposition.num_colors
        d = self.decomposition.max_diameter(self.host)
        return c * (d + self.locality) + self.locality
