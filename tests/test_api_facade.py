"""Tests for the stable ``repro.api`` facade."""

import warnings

import pytest

import repro.api as api


def test_all_exports_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_run_game_by_names():
    row = api.run_game("theorem1-grid", "greedy", locality=1)
    assert row.won
    assert row.adversary == "theorem1-grid"
    assert row.victim == "greedy"


def test_run_game_fixed_victim_ignores_victim_arg():
    row = api.run_game("theorem5-reduction", "akbari", locality=1, k=3)
    assert row.victim == api.FIXED_VICTIM
    assert row.won


def test_run_game_unknown_names_raise_registry_error():
    with pytest.raises(api.RegistryError, match="unknown adversary"):
        api.run_game("nope", "greedy")
    with pytest.raises(api.RegistryError, match="unknown victim"):
        api.run_game("theorem1-grid", "nope")


def test_verify_coloring_is_assert_proper():
    from repro.verify.coloring import assert_proper

    assert api.verify_coloring is assert_proper


def test_deprecation_shims_warn_and_resolve():
    from repro.analysis.executor import ParallelSweep
    from repro.robustness.journal import SweepJournal

    expected = {
        "SweepJournal": SweepJournal,
        "ParallelSweep": ParallelSweep,
    }
    for name, target in expected.items():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolved = getattr(api, name)
        assert resolved is target
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert name in str(caught[0].message)


def test_shims_appear_in_dir():
    listing = dir(api)
    assert "SweepJournal" in listing
    assert "run_campaign" in listing


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        api.definitely_not_a_symbol
