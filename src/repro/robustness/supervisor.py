"""The game supervisor: a hardened boundary around adversary-vs-victim games.

The paper's lower bounds are adversary strategies that must defeat *any*
algorithm — including buggy, cheating, or crashing ones.  The supervisor
makes the harness live up to that: every simulator/adversary/victim
interaction runs inside an execution boundary that

* enforces a per-game **step budget** and a **wall-clock timeout**
  (preemptive via ``SIGALRM`` where available, cooperative otherwise),
* converts any exception escaping the victim into a structured
  :class:`~repro.robustness.errors.VictimCrash`, and
* converts every classified failure into a *forfeit*
  :class:`~repro.adversaries.result.AdversaryResult` (the adversary wins
  with a machine-readable reason) instead of aborting the sweep.

Use :class:`SupervisedGame` for adversary games and
:func:`call_with_timeout` for guarding bare simulator runs.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Mapping, Optional

from repro.adversaries.result import AdversaryResult, forfeit_result
from repro.models.base import Color, NodeId, OnlineAlgorithm
from repro.observability.metrics import get_registry
from repro.observability.trace import TRACER
from repro.robustness.errors import (
    GameTimeout,
    ProtocolViolation,
    ReproError,
    StepBudgetExceeded,
    VictimCrash,
)


@dataclass(frozen=True)
class GamePolicy:
    """Resource limits for one supervised game.

    Attributes
    ----------
    step_budget:
        Maximum algorithm steps per game (None = unlimited).
    timeout:
        Wall-clock budget per game in seconds (None = unlimited).
    """

    step_budget: Optional[int] = None
    timeout: Optional[float] = None

    def deadline(self) -> Optional[float]:
        """The monotonic-clock deadline implied by :attr:`timeout`."""
        if self.timeout is None:
            return None
        return time.monotonic() + self.timeout


@contextmanager
def alarm_guard(timeout: Optional[float]) -> Iterator[None]:
    """Preemptively raise :class:`GameTimeout` after ``timeout`` seconds.

    Uses ``SIGALRM``/``setitimer`` when running on the main thread of a
    platform that supports it; otherwise a no-op (the cooperative
    per-step deadline check in :class:`SupervisedAlgorithm` still
    applies).  The preemptive path is what rescues games from victims
    that never return from a single ``step`` call.

    Nests correctly: if an ``ITIMER_REAL`` timer was already armed (an
    outer guard — e.g. a scheduler-level budget around a supervised
    game), exiting the inner guard restores the outer timer with its
    *remaining* time rather than zeroing it, so the outer deadline
    still fires.  An outer deadline that elapsed entirely inside the
    inner guard is re-armed to fire immediately.
    """
    usable = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise GameTimeout(f"wall-clock budget of {timeout}s exhausted")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    outer_delay, outer_interval = signal.setitimer(
        signal.ITIMER_REAL, timeout
    )
    armed_at = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - armed_at)
            # An outer deadline that passed while we ran must still
            # fire — as soon as possible — not be silently cancelled.
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), outer_interval
            )


class SupervisedAlgorithm(OnlineAlgorithm):
    """A proxy that polices the algorithm under test.

    Wraps ``inner`` so that every ``step``

    1. charges the step budget and checks the wall-clock deadline,
    2. re-raises structured :class:`ReproError` failures untouched,
    3. wraps any other exception in :class:`VictimCrash`, and
    4. rejects non-mapping return values (``None`` included) with
       :class:`ProtocolViolation` before they reach the view tracker.
    """

    def __init__(
        self,
        inner: OnlineAlgorithm,
        policy: GamePolicy = GamePolicy(),
        deadline: Optional[float] = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.deadline = deadline if deadline is not None else policy.deadline()
        self.name = f"supervised({inner.name})"
        self.steps_taken = 0

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        super().reset(n=n, locality=locality, num_colors=num_colors)
        self.steps_taken = 0
        self.inner.reset(n=n, locality=locality, num_colors=num_colors)

    def step(self, view, target: NodeId) -> Mapping[NodeId, Color]:
        self.steps_taken += 1
        budget = self.policy.step_budget
        if budget is not None and self.steps_taken > budget:
            raise StepBudgetExceeded(
                f"{self.inner.name}: step budget of {budget} exhausted"
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise GameTimeout(
                f"{self.inner.name}: wall-clock budget of "
                f"{self.policy.timeout}s exhausted"
            )
        try:
            assignment = self.inner.step(view, target)
        except ReproError:
            raise
        except Exception as exc:
            raise VictimCrash(
                f"{self.inner.name} crashed on step {self.steps_taken}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(assignment, Mapping):
            raise ProtocolViolation(
                f"{self.inner.name}: step returned "
                f"{type(assignment).__name__!s}, expected a node->color mapping"
            )
        return assignment


class SupervisedGame:
    """Run one adversary game to a guaranteed structured outcome.

    ``play`` is a callable mapping a victim algorithm to an
    :class:`AdversaryResult` (the shape of the tournament's adversary
    entries).  :meth:`run` wraps the victim in
    :class:`SupervisedAlgorithm`, arms the preemptive alarm, and maps
    every classified failure to a forfeit result, so the caller *always*
    gets a result row:

    ========================  =========================================
    failure                   forfeit reason
    ========================  =========================================
    step budget exhausted     ``forfeit:step-budget``
    wall-clock exhausted      ``forfeit:timeout``
    victim raised             ``forfeit:victim-crash``
    protocol violation        ``forfeit:model-violation``
    other structured error    ``forfeit:harness-error``
    ========================  =========================================

    Adversaries already convert :class:`ProtocolViolation` they observe
    into ``model-violation`` wins; under supervision those results are
    normalized to ``forfeit:model-violation`` with ``forfeit=True`` so
    sweeps can count every non-honest loss uniformly.

    Failures that indicate harness bugs (``AdversaryError``, arbitrary
    exceptions raised by adversary code itself) are *not* swallowed —
    they propagate, because masking them would fake a clean sweep.
    """

    def __init__(
        self,
        play: Callable[[OnlineAlgorithm], AdversaryResult],
        policy: GamePolicy = GamePolicy(),
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.play = play
        self.policy = policy
        #: Extra fields stamped on the game's trace span (the tournament
        #: passes ``adversary``/``victim`` so traces are self-describing).
        self.labels = dict(labels) if labels else {}

    def run(self, victim: Optional[OnlineAlgorithm]) -> AdversaryResult:
        """Play against ``victim`` (None for fixed-victim games)."""
        started = time.monotonic()
        if victim is None:
            contender: Optional[SupervisedAlgorithm] = None
        else:
            contender = SupervisedAlgorithm(victim, self.policy)
        span_fields = {"victim": victim.name if victim else "(fixed)"}
        span_fields.update(self.labels)
        with TRACER.span("game", **span_fields) as span:
            result = self._run_guarded(contender)
            elapsed = time.monotonic() - started
            span.note(
                reason=result.reason,
                won=result.won,
                forfeit=result.forfeit,
                steps=contender.steps_taken if contender else None,
            )
        result.stats.setdefault("game_seconds", round(elapsed, 6))
        if contender is not None:
            result.stats.setdefault("steps_taken", contender.steps_taken)
        registry = get_registry()
        registry.observe("game_wall_seconds", elapsed)
        if result.forfeit:
            registry.inc("supervisor_forfeits")
        return result

    def _run_guarded(
        self, contender: Optional["SupervisedAlgorithm"]
    ) -> AdversaryResult:
        """The play call with every classified failure mapped to a forfeit
        carrying its structured cause (exception type + reveal index)."""

        def step() -> Optional[int]:
            return contender.steps_taken if contender is not None else None

        try:
            with alarm_guard(self.policy.timeout):
                result = self.play(contender)
        except StepBudgetExceeded as exc:
            result = forfeit_result("forfeit:step-budget", exc, step())
        except GameTimeout as exc:
            result = forfeit_result("forfeit:timeout", exc, step())
        except VictimCrash as exc:
            result = forfeit_result("forfeit:victim-crash", exc, step())
        except ProtocolViolation as exc:
            result = forfeit_result("forfeit:model-violation", exc, step())
        except ReproError as exc:
            result = forfeit_result("forfeit:harness-error", exc, step())
        if result.reason == "model-violation":
            # Violations the adversary itself observed (the tracker's
            # AlgorithmError) arrive as results, not exceptions; give
            # them the same structured cause as exception-path forfeits.
            result = replace(
                result, won=True, reason="forfeit:model-violation", forfeit=True
            )
            result.stats.setdefault("error_type", "AlgorithmError")
            if step() is not None:
                result.stats.setdefault("failed_at_step", step())
        return result


def call_with_timeout(fn: Callable[[], object], timeout: Optional[float]):
    """Run ``fn`` under the preemptive alarm; raises :class:`GameTimeout`.

    A light-weight guard for bare simulator runs (benchmark sweeps, CLI
    upper-bound paths) that want crash-safety without the full
    adversary-game result plumbing.
    """
    with alarm_guard(timeout):
        return fn()
