"""Tests for the trace recorder: round-trips, kill-safety, shard merges."""

import json

import pytest

from repro.observability.metrics import scoped_registry
from repro.observability.trace import (
    TRACER,
    JsonlTraceRecorder,
    merge_trace_shards,
    read_trace,
    shard_path,
    tracing,
)


@pytest.fixture(autouse=True)
def _tracer_is_quiescent():
    """Every test starts and must end with the tracer disabled."""
    assert not TRACER.enabled
    yield
    if TRACER.enabled:  # pragma: no cover - cleanup after a failed test
        TRACER.deactivate()
        pytest.fail("test leaked an active tracer")


def test_disabled_tracer_is_a_no_op():
    TRACER.event("reveal", node=(0, 0))
    with TRACER.span("game", adversary="x") as span:
        span.note(reason="ok")
    # Nothing recorded, nothing raised, no recorder attached.
    assert not TRACER.enabled


def test_event_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    with tracing(path):
        TRACER.event("reveal", node=[0, 1], color=2)
        TRACER.event("fragment-merge", dx=3)
    records = read_trace(path)
    # Two events plus the final metrics snapshot.
    assert [r["type"] for r in records] == ["event", "event", "metrics"]
    reveal = records[0]
    assert reveal["kind"] == "reveal"
    assert reveal["node"] == [0, 1]
    assert reveal["color"] == 2
    assert "src" in reveal and "seq" in reveal


def test_span_round_trip_and_in_span_stamping(tmp_path):
    path = tmp_path / "t.jsonl"
    with tracing(path):
        TRACER.event("outside")
        with TRACER.span("game", adversary="theorem1") as span:
            TRACER.event("reveal", node=1)
            span.note(reason="monochromatic-edge", won=True)
    records = read_trace(path)
    by_type = {r["type"]: r for r in records if r["type"] != "event"}
    start, end = by_type["span-start"], by_type["span-end"]
    assert start["kind"] == end["kind"] == "game"
    assert start["span"] == end["span"]
    assert start["adversary"] == "theorem1"
    assert end["reason"] == "monochromatic-edge"
    assert end["won"] is True
    assert end["seconds"] >= 0

    events = [r for r in records if r["type"] == "event"]
    outside = next(r for r in events if r["kind"] == "outside")
    inside = next(r for r in events if r["kind"] == "reveal")
    assert "in_span" not in outside
    assert inside["in_span"] == start["span"]


def test_tracing_appends_metrics_snapshot(tmp_path):
    path = tmp_path / "t.jsonl"
    with scoped_registry() as registry:
        with tracing(path):
            registry.inc("reveals_total", 9)
    final = read_trace(path)[-1]
    assert final["type"] == "metrics"
    assert final["snapshot"]["counters"]["reveals_total"] == 9


def test_tracing_truncates_by_default(tmp_path):
    path = tmp_path / "t.jsonl"
    with tracing(path):
        TRACER.event("first-run")
    with tracing(path):
        TRACER.event("second-run")
    kinds = [r.get("kind") for r in read_trace(path) if r["type"] == "event"]
    assert kinds == ["second-run"]


def test_mid_write_kill_is_survivable(tmp_path):
    """A partial trailing line (kill landed mid-write) is skipped on
    load and repaired before the next append."""
    path = tmp_path / "t.jsonl"
    recorder = JsonlTraceRecorder(path)
    recorder.write({"type": "event", "kind": "reveal", "node": 1})
    recorder.close()
    # Simulate the kill: a truncated record with no newline.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "event", "kind": "rev')

    records = read_trace(path)
    assert len(records) == 1  # partial line skipped, not fatal
    assert records[0]["node"] == 1

    repaired = JsonlTraceRecorder(path)
    repaired.write({"type": "event", "kind": "reveal", "node": 2})
    repaired.close()
    records = read_trace(path)
    # The new record is not glued onto the partial line.
    assert [r.get("node") for r in records] == [1, 2]


def test_shard_merge_folds_worker_files(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with tracing(path):
        TRACER.event("parent-event")

    for worker in ("a", "b"):
        shard = JsonlTraceRecorder(shard_path(path, worker))
        shard.write({"type": "event", "kind": f"from-{worker}"})
        shard.close()

    merged = merge_trace_shards(path)
    assert merged == 2
    kinds = {r["kind"] for r in read_trace(path) if r["type"] == "event"}
    assert kinds == {"parent-event", "from-a", "from-b"}
    # Shards are consumed; a re-merge finds nothing.
    assert merge_trace_shards(path) == 0


def test_shard_merge_deduplicates_by_src_seq(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with tracing(path):
        TRACER.event("original")
    duplicate = read_trace(path)[0]

    shard = shard_path(path, "dup")
    with open(shard, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(duplicate) + "\n")
        handle.write(
            json.dumps({**duplicate, "seq": duplicate["seq"] + 10_000,
                        "kind": "fresh"}) + "\n"
        )
    before = len(read_trace(path))
    assert merge_trace_shards(path) == 1  # the duplicate is skipped
    assert len(read_trace(path)) == before + 1


def test_span_body_raising_still_emits_error_end(tmp_path):
    """A span whose body raises must still close in the trace, with the
    inferred ``status="error"`` and the exception type — a vanished end
    record would be indistinguishable from a kill."""
    path = tmp_path / "t.jsonl"
    with tracing(path):
        with pytest.raises(ValueError, match="boom"):
            with TRACER.span("game", adversary="x"):
                raise ValueError("boom")
    by_type = {r["type"]: r for r in read_trace(path)}
    end = by_type["span-end"]
    assert end["kind"] == "game"
    assert end["status"] == "error"
    assert end["error_type"] == "ValueError"
    assert end["seconds"] >= 0
    assert end["span"] == by_type["span-start"]["span"]


def test_span_body_error_keeps_explicit_notes(tmp_path):
    """Notes set before the raise survive; an explicit ``status`` note
    wins over the inferred error status."""
    path = tmp_path / "t.jsonl"
    with tracing(path):
        with pytest.raises(RuntimeError):
            with TRACER.span("game") as span:
                span.note(status="forfeit", reason="budget")
                raise RuntimeError("late failure")
    end = next(r for r in read_trace(path) if r["type"] == "span-end")
    assert end["status"] == "forfeit"
    assert end["reason"] == "budget"
    assert end["error_type"] == "RuntimeError"


def test_activate_twice_rejected(tmp_path):
    with tracing(tmp_path / "t.jsonl"):
        with pytest.raises(RuntimeError, match="already active"):
            TRACER.activate(JsonlTraceRecorder(tmp_path / "u.jsonl"))


def test_instrumented_simulator_emits_reveal_events(tmp_path):
    """The Online-LOCAL hot path records one reveal event per reveal
    when tracing is on."""
    from repro.core.baselines import GreedyOnlineColorer
    from repro.families.grids import SimpleGrid
    from repro.models.online_local import OnlineLocalSimulator

    grid = SimpleGrid(3, 3)
    path = tmp_path / "t.jsonl"
    with scoped_registry() as registry:
        with tracing(path):
            sim = OnlineLocalSimulator(
                grid.graph, GreedyOnlineColorer(), locality=1, num_colors=4
            )
            sim.run(sorted(grid.graph.nodes()))
        reveals = [
            r for r in read_trace(path)
            if r["type"] == "event" and r["kind"] == "reveal"
        ]
        assert len(reveals) == grid.graph.num_nodes
        assert registry.counter("reveals_total").value == grid.graph.num_nodes
        assert all(r["model"] == "online-local" for r in reveals)
