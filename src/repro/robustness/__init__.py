"""Fault tolerance for the reproduction harness.

Submodules
----------
``errors``
    The structured exception hierarchy (``ReproError`` and friends).
``supervisor``
    :class:`SupervisedGame` / :class:`SupervisedAlgorithm` — the hardened
    execution boundary around adversary-vs-victim games.
``faults``
    Deliberately broken algorithms (the fault-injection victim family).
``journal``
    JSON-lines checkpointing for crash-safe sweeps.
``retry``
    Retry-with-reseed for randomized harness paths.

Only ``errors`` is imported eagerly: ``repro.models.base`` imports the
hierarchy from here, so the heavier submodules (which import
``models.base`` back) are loaded lazily via PEP 562 to keep the import
graph acyclic.
"""

from __future__ import annotations

from repro.robustness.errors import (
    GameTimeout,
    InvalidColorError,
    LocalityViolation,
    ProtocolViolation,
    RecoloringError,
    ReproError,
    RevealOrderError,
    StepBudgetExceeded,
    UnknownHostNodeError,
    VictimCrash,
)

__all__ = [
    "ReproError",
    "ProtocolViolation",
    "InvalidColorError",
    "LocalityViolation",
    "RecoloringError",
    "RevealOrderError",
    "UnknownHostNodeError",
    "GameTimeout",
    "StepBudgetExceeded",
    "VictimCrash",
    # Lazily resolved:
    "GamePolicy",
    "SupervisedAlgorithm",
    "SupervisedGame",
    "call_with_timeout",
    "FaultyAlgorithm",
    "CrashingAlgorithm",
    "InvalidColorAlgorithm",
    "NoneReturningAlgorithm",
    "InfiniteLoopAlgorithm",
    "FlipFlopAlgorithm",
    "faulty_victims",
    "SweepJournal",
    "RetriesExhausted",
    "retry_with_reseed",
]

_LAZY = {
    "GamePolicy": "repro.robustness.supervisor",
    "SupervisedAlgorithm": "repro.robustness.supervisor",
    "SupervisedGame": "repro.robustness.supervisor",
    "call_with_timeout": "repro.robustness.supervisor",
    "FaultyAlgorithm": "repro.robustness.faults",
    "CrashingAlgorithm": "repro.robustness.faults",
    "InvalidColorAlgorithm": "repro.robustness.faults",
    "NoneReturningAlgorithm": "repro.robustness.faults",
    "InfiniteLoopAlgorithm": "repro.robustness.faults",
    "FlipFlopAlgorithm": "repro.robustness.faults",
    "faulty_victims": "repro.robustness.faults",
    "SweepJournal": "repro.robustness.journal",
    "RetriesExhausted": "repro.robustness.retry",
    "retry_with_reseed": "repro.robustness.retry",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
