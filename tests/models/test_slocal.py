"""Tests for the SLOCAL model simulator."""

import pytest

from repro.families.grids import SimpleGrid
from repro.families.random_graphs import random_reveal_order, random_tree
from repro.graphs.graph import Graph
from repro.models.slocal import SLocalAlgorithm, SLocalSimulator, SLocalView
from repro.verify.coloring import is_proper


class GreedySLocal(SLocalAlgorithm):
    """The classical locality-1 greedy (degree+1)-coloring."""

    name = "greedy"

    def color(self, view: SLocalView) -> int:
        used = {
            view.colors.get(v)
            for v in view.graph.neighbors(view.center)
        }
        for color in range(1, self.num_colors + 1):
            if color not in used:
                return color
        raise AssertionError("greedy needs degree+1 colors")


def test_greedy_degree_plus_one_on_grid():
    """The Section 1 example: greedy solves (Δ+1)-coloring at locality 1."""
    grid = SimpleGrid(6, 6)
    sim = SLocalSimulator(grid.graph, GreedySLocal(), locality=1, num_colors=5)
    for seed in range(3):
        order = random_reveal_order(sorted(grid.graph.nodes()), seed=seed)
        coloring = sim.run(order)
        assert is_proper(grid.graph, coloring)


def test_greedy_on_random_tree():
    tree = random_tree(60, seed=8)
    max_deg = tree.max_degree()
    sim = SLocalSimulator(tree, GreedySLocal(), locality=1, num_colors=max_deg + 1)
    coloring = sim.run(random_reveal_order(sorted(tree.nodes()), seed=1))
    assert is_proper(tree, coloring)


def test_order_must_cover_every_node():
    g = Graph(edges=[(0, 1), (1, 2)])
    sim = SLocalSimulator(g, GreedySLocal(), locality=1, num_colors=3)
    with pytest.raises(ValueError, match="covered"):
        sim.run([0, 1])


def test_duplicate_order_rejected():
    g = Graph(edges=[(0, 1)])
    sim = SLocalSimulator(g, GreedySLocal(), locality=1, num_colors=3)
    with pytest.raises(ValueError, match="twice"):
        sim.run([0, 0])


def test_prior_outputs_visible():
    """The second processed node must see the first's color."""
    seen_colors = []

    class Probe(SLocalAlgorithm):
        name = "probe"

        def color(self, view: SLocalView) -> int:
            seen_colors.append(dict(view.colors))
            return 1 + len(view.colors)

    g = Graph(edges=[(0, 1)])
    sim = SLocalSimulator(g, Probe(), locality=1, num_colors=5)
    sim.run([0, 1])
    assert seen_colors[0] == {}
    assert len(seen_colors[1]) == 1


def test_color_range_enforced():
    class Bad(SLocalAlgorithm):
        name = "bad"

        def color(self, view):
            return 99

    g = Graph(edges=[(0, 1)])
    sim = SLocalSimulator(g, Bad(), locality=1, num_colors=3)
    with pytest.raises(ValueError, match="outside"):
        sim.run([0, 1])
