"""Tests for the Section 4 gadgets and hard instance G*."""

import pytest

from repro.families.gadgets import Gadget, GadgetChain
from repro.graphs.traversal import is_connected
from repro.verify.coloring import is_proper


class TestGadget:
    def test_node_count(self):
        assert Gadget(3).graph.num_nodes == 9

    def test_adjacency_rule(self):
        g = Gadget(3)
        assert g.graph.has_edge((0, 0), (1, 1))
        assert not g.graph.has_edge((0, 0), (0, 1))  # same row
        assert not g.graph.has_edge((0, 0), (1, 0))  # same column

    def test_rows_and_columns_are_independent_sets(self):
        g = Gadget(4)
        for i in range(4):
            row = g.row(i)
            for a in row:
                for b in row:
                    if a != b:
                        assert not g.graph.has_edge(a, b)
        for j in range(4):
            col = g.column(j)
            for a in col:
                for b in col:
                    if a != b:
                        assert not g.graph.has_edge(a, b)

    def test_edge_count(self):
        # Each node connects to (k-1)^2 others.
        k = 3
        g = Gadget(k)
        assert g.graph.num_edges == k * k * (k - 1) ** 2 // 2

    def test_minimum_k(self):
        with pytest.raises(ValueError):
            Gadget(1)


class TestGadgetChain:
    def test_node_count(self):
        chain = GadgetChain(3, 5)
        assert chain.num_nodes == 45

    def test_within_gadget_edges(self):
        chain = GadgetChain(3, 2)
        assert chain.graph.has_edge((0, 0, 0), (0, 1, 1))
        assert not chain.graph.has_edge((0, 0, 0), (0, 0, 1))

    def test_between_gadget_edges(self):
        chain = GadgetChain(3, 3)
        assert chain.graph.has_edge((0, 0, 0), (1, 1, 1))
        assert not chain.graph.has_edge((0, 0, 0), (1, 0, 1))  # same row
        assert not chain.graph.has_edge((0, 0, 0), (1, 1, 0))  # same column
        assert not chain.graph.has_edge((0, 0, 0), (2, 1, 1))  # not consecutive

    def test_row_coloring_proper(self):
        """Proposition 4.1: G* is k-partite via rows."""
        chain = GadgetChain(4, 4)
        coloring = {
            node: chain.canonical_color(node) + 1 for node in chain.graph.nodes()
        }
        assert is_proper(chain.graph, coloring)
        assert len(set(coloring.values())) == 4

    def test_transpose_is_automorphism(self):
        chain = GadgetChain(3, 4)
        mapping = chain.transpose()
        for u, v in chain.graph.edges():
            assert chain.graph.has_edge(mapping[u], mapping[v])
        # Involution.
        assert all(mapping[mapping[u]] == u for u in chain.graph.nodes())

    def test_transpose_fixes_each_gadget(self):
        chain = GadgetChain(3, 3)
        mapping = chain.transpose()
        for idx in range(3):
            nodes = set(chain.gadget_nodes(idx))
            assert {mapping[u] for u in nodes} == nodes

    def test_connected(self):
        assert is_connected(GadgetChain(3, 5).graph)

    def test_gadget_nodes_bounds(self):
        chain = GadgetChain(3, 2)
        with pytest.raises(IndexError):
            chain.gadget_nodes(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GadgetChain(1, 5)
        with pytest.raises(ValueError):
            GadgetChain(3, 0)
