"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_adversary_theorem1(capsys):
    code = main(["adversary", "theorem1", "--victim", "greedy", "--locality", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DEFEATED" in out
    assert "witness edge" in out


def test_adversary_theorem2(capsys):
    code = main(
        ["adversary", "theorem2", "--victim", "akbari", "--locality", "1",
         "--topology", "cylinder"]
    )
    assert code == 0
    assert "DEFEATED" in capsys.readouterr().out


def test_adversary_theorem3(capsys):
    code = main(["adversary", "theorem3", "--victim", "greedy", "--k", "3"])
    assert code == 0
    assert "DEFEATED" in capsys.readouterr().out


def test_adversary_theorem5(capsys):
    code = main(["adversary", "theorem5", "--k", "3", "--locality", "1"])
    assert code == 0
    assert "DEFEATED" in capsys.readouterr().out


def test_upper_bound_akbari(capsys):
    code = main(["upper-bound", "akbari", "--side", "10"])
    assert code == 0
    assert "proper 3-coloring" in capsys.readouterr().out


def test_upper_bound_unify(capsys):
    code = main(["upper-bound", "unify-triangular", "--side", "8"])
    assert code == 0
    assert "proper 4-coloring" in capsys.readouterr().out


def test_unknown_victim_rejected(capsys):
    """Bad invocations exit 2 with a normalized error line, not a raw
    SystemExit message."""
    code = main(["adversary", "theorem1", "--victim", "quantum"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "quantum" in err


def test_adversary_trace_and_stats(capsys, tmp_path):
    trace = tmp_path / "t.jsonl"
    code = main(
        ["adversary", "theorem1", "--victim", "greedy", "--locality", "1",
         "--trace", str(trace), "--metrics"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "reveals_total" in out  # --metrics table
    assert trace.exists()

    code = main(["stats", str(trace)])
    assert code == 0
    out = capsys.readouterr().out
    assert "reveals total:" in out
    assert "games by adversary:" in out
    assert "theorem1" in out
    assert "ball cache hit rate:" in out


def test_stats_missing_file_rejected(capsys, tmp_path):
    code = main(["stats", str(tmp_path / "absent.jsonl")])
    assert code == 2
    assert capsys.readouterr().err.startswith("repro: error:")


def test_stats_corrupt_trace_rejected(capsys, tmp_path):
    """A non-trace file must exit 2 as a usage error, not crash."""
    bad = tmp_path / "bad.jsonl"
    bad.write_bytes(b"\x80\x81 not a trace\n")
    code = main(["stats", str(bad)])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "unreadable trace file" in err


def test_stats_without_trace_or_live_rejected(capsys):
    code = main(["stats"])
    assert code == 2
    assert "TRACE" in capsys.readouterr().err


def test_stats_export_formats(capsys, tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    assert main(
        ["adversary", "theorem1", "--locality", "1", "--trace", str(trace)]
    ) == 0
    capsys.readouterr()

    assert main(["stats", str(trace), "--export", "prometheus"]) == 0
    prom = capsys.readouterr().out
    assert "# TYPE repro_reveals_total counter" in prom

    assert main(["stats", str(trace), "--export", "json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["counters"]["reveals_total"] > 0


def test_campaign_phase_table_status_watch_and_live(capsys, tmp_path):
    """One timed campaign run feeds the whole telemetry surface: the
    phase table after run and under status, watch --once, stats --live."""
    spec = tmp_path / "c.json"
    spec.write_text(
        '{"kind": "sweep", "name": "cli-telemetry", '
        '"adversaries": ["theorem1-grid"], "victims": ["greedy"], '
        '"localities": [1]}'
    )
    store = str(tmp_path / "store")
    code = main(
        ["campaign", "run", str(spec), "--store", store, "--workers", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "phase attribution" in out
    assert "* top-level phases:" in out

    assert main(["campaign", "status", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "phase attribution" in out
    assert "wall" in out and "attributed" in out  # ledger line extras

    assert main(["campaign", "watch", "--store", store, "--once"]) == 0
    out = capsys.readouterr().out
    assert "campaign finished" in out
    assert "played 1" in out

    assert main(["stats", "--live", store]) == 0
    assert "campaign finished" in capsys.readouterr().out


def test_campaign_no_timers_skips_phase_table(capsys, tmp_path):
    spec = tmp_path / "c.json"
    spec.write_text(
        '{"kind": "sweep", "name": "untimed", '
        '"adversaries": ["theorem1-grid"], "victims": ["greedy"], '
        '"localities": [1]}'
    )
    store = str(tmp_path / "store")
    code = main(
        ["campaign", "run", str(spec), "--store", store, "--no-timers"]
    )
    assert code == 0
    assert "phase attribution" not in capsys.readouterr().out


def test_stats_live_without_telemetry_rejected(capsys, tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    assert main(["stats", "--live", str(store)]) == 2
    assert "no live telemetry" in capsys.readouterr().err


def test_campaign_watch_once_without_telemetry(capsys, tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    assert main(["campaign", "watch", "--store", str(store), "--once"]) == 1
    assert "no live telemetry" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_tournament_subcommand(capsys):
    code = main(["tournament", "--locality", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "clean sweep over honest victims: True" in out
    assert "(fixed)" in out  # theorem5 plays once, not per victim


def test_fast_examples_run(capsys):
    """Smoke: the fast example scripts execute end to end."""
    import runpy
    import sys

    for script in ("examples/bvalue_tour.py", "examples/quickstart.py"):
        saved_argv = sys.argv
        sys.argv = [script]
        try:
            runpy.run_path(script, run_name="__main__")
        finally:
            sys.argv = saved_argv
    out = capsys.readouterr().out
    assert "Lemma 3.3" in out
    assert "Proper 3-coloring" in out


def test_top_level_api_exports():
    """The package-level convenience API resolves and works."""
    import repro

    grid = repro.SimpleGrid(6, 6)
    sim = repro.OnlineLocalSimulator(
        grid.graph, repro.AkbariBipartiteColoring(), locality=12, num_colors=3
    )
    coloring = sim.run(sorted(grid.graph.nodes()))
    repro.assert_proper(grid.graph, coloring, max_colors=3)
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_tournament_resume_without_journal_rejected(capsys):
    """--resume with no --journal must fail loudly, not be ignored."""
    code = main(["tournament", "--resume"])
    assert code == 2
    err = capsys.readouterr().err
    assert "--resume" in err
    assert "--journal" in err


def test_tournament_parallel_matches_serial_output(capsys, tmp_path):
    code = main(["tournament", "--locality", "1"])
    assert code == 0
    serial_out = capsys.readouterr().out
    code = main(["tournament", "--locality", "1", "--workers", "2"])
    assert code == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_tournament_workers_rejects_non_positive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["tournament", "--workers", "0"])


def test_adversary_registry_name_and_alias_agree(capsys):
    code = main(["adversary", "theorem1-grid", "--locality", "1"])
    assert code == 0
    direct = capsys.readouterr().out
    code = main(["adversary", "theorem1", "--locality", "1"])
    assert code == 0
    assert capsys.readouterr().out == direct


def test_adversary_rejects_parallel_workers(capsys):
    code = main(["adversary", "theorem1", "--workers", "2"])
    assert code == 2
    assert "--workers" in capsys.readouterr().err


def test_adversary_journal_resume_skips_replay(capsys, tmp_path):
    journal = str(tmp_path / "j.jsonl")
    code = main(["adversary", "theorem1", "--journal", journal])
    assert code == 0
    capsys.readouterr()
    code = main(["adversary", "theorem1", "--journal", journal, "--resume"])
    assert code == 0
    out = capsys.readouterr().out
    assert "skipped" in out


def _write_smoke_spec(tmp_path):
    spec = tmp_path / "c.json"
    spec.write_text(
        '{"kind": "sweep", "name": "cli-smoke",'
        ' "adversaries": ["theorem1-grid"], "victims": ["greedy"],'
        ' "localities": [0, 1]}'
    )
    return str(spec)


def test_campaign_run_resume_status(capsys, tmp_path):
    spec = _write_smoke_spec(tmp_path)
    store = str(tmp_path / "store")
    code = main(["campaign", "run", spec, "--store", store])
    assert code == 0
    assert "played 2, deduped 0" in capsys.readouterr().out
    code = main(["campaign", "resume", spec, "--store", store])
    assert code == 0
    assert "played 0, deduped 2" in capsys.readouterr().out
    code = main(["campaign", "status", "--store", store])
    assert code == 0
    out = capsys.readouterr().out
    assert "cli-smoke [sweep]: 2/2 games done" in out
    assert "played 0, deduped 2" in out  # the run ledger shows zero replays


def test_campaign_rejects_journal_flag(capsys, tmp_path):
    spec = _write_smoke_spec(tmp_path)
    code = main(["campaign", "run", spec, "--store", str(tmp_path / "s"),
                 "--journal", "j.jsonl"])
    assert code == 2
    assert "--store" in capsys.readouterr().err


def test_campaign_resume_needs_existing_store(capsys, tmp_path):
    spec = _write_smoke_spec(tmp_path)
    code = main(["campaign", "resume", spec, "--store",
                 str(tmp_path / "missing")])
    assert code == 2
    assert "nothing to resume" in capsys.readouterr().err


def test_campaign_status_needs_existing_store(capsys, tmp_path):
    code = main(["campaign", "status", "--store", str(tmp_path / "missing")])
    assert code == 2
    assert "no result store" in capsys.readouterr().err


def test_campaign_threshold_spec_prints_table(capsys, tmp_path):
    spec = tmp_path / "t.json"
    spec.write_text(
        '{"kind": "threshold", "name": "cli-threshold",'
        ' "adversaries": ["theorem1-grid"], "victims": ["greedy"],'
        ' "low": 0, "high": 1}'
    )
    code = main(["campaign", "run", str(spec), "--store",
                 str(tmp_path / "store")])
    assert code == 0
    out = capsys.readouterr().out
    assert "threshold T" in out
    assert ">1" in out


def test_campaign_parser_accepts_pool_robustness_flags(tmp_path):
    args = build_parser().parse_args(
        ["campaign", "run", "spec.json", "--store", "s",
         "--max-worker-restarts", "5", "--poison-threshold", "2"]
    )
    assert args.max_worker_restarts == 5
    assert args.poison_threshold == 2
    # Defaults: unlimited-by-policy restarts (pool picks), threshold 3.
    args = build_parser().parse_args(["campaign", "resume", "spec.json",
                                      "--store", "s"])
    assert args.max_worker_restarts is None
    assert args.poison_threshold == 3
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "run", "spec.json",
                                   "--store", "s", "--poison-threshold", "0"])


def test_campaign_status_reports_quarantined_games(capsys, tmp_path):
    from repro.analysis.campaign import CampaignSpec, hash_of
    from repro.analysis.store import ResultStore
    from repro.analysis.worker_pool import quarantine_row

    spec = _write_smoke_spec(tmp_path)
    store = str(tmp_path / "store")
    assert main(["campaign", "run", spec, "--store", store]) == 0
    capsys.readouterr()
    # Simulate a poison game by quarantining one finished row.
    expanded = CampaignSpec.from_dict(
        __import__("json").load(open(spec))
    ).expand()
    digest = hash_of(expanded[0])
    ResultStore(store).add(quarantine_row(digest, expanded[0], losses=3))
    assert main(["campaign", "status", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "1 quarantined" in out
    assert "cause=poison" in out


def test_campaign_run_rejects_unknown_spec_version(capsys, tmp_path):
    spec = tmp_path / "future.json"
    spec.write_text('{"version": 99, "kind": "sweep", "victims": ["greedy"]}')
    code = main(["campaign", "run", str(spec), "--store",
                 str(tmp_path / "store")])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "version 99" in err


def test_campaign_run_rejects_unknown_spec_field(capsys, tmp_path):
    spec = tmp_path / "typo.json"
    spec.write_text('{"version": 1, "kind": "sweep", "victms": ["greedy"]}')
    code = main(["campaign", "run", str(spec), "--store",
                 str(tmp_path / "store")])
    assert code == 2
    assert "victms" in capsys.readouterr().err


def test_versionless_spec_still_runs_with_warning(capsys, tmp_path):
    import pytest as _pytest

    spec = _write_smoke_spec(tmp_path)  # deliberately versionless
    with _pytest.warns(FutureWarning, match="no 'version' field"):
        code = main(["campaign", "run", spec, "--store",
                     str(tmp_path / "store")])
    assert code == 0


def test_submit_unreachable_server_is_a_usage_error(capsys, tmp_path):
    spec = _write_smoke_spec(tmp_path)
    # A port from the ephemeral range with nothing listening.
    code = main(["submit", spec, "--url", "http://127.0.0.1:1",
                 "--http-timeout", "2"])
    assert code == 2
    assert "cannot reach server" in capsys.readouterr().err


def test_submit_rejects_missing_spec(capsys, tmp_path):
    code = main(["submit", str(tmp_path / "nope.json"),
                 "--url", "http://127.0.0.1:1"])
    assert code == 2
    assert "no campaign spec" in capsys.readouterr().err


def test_serve_and_submit_round_trip(capsys, tmp_path):
    """The CLI pair end to end: serve in a thread, submit from the test
    process, watch to completion, page rows."""
    import asyncio
    import json as _json
    import threading

    from repro.server import ColoringServer

    spec = tmp_path / "c.json"
    spec.write_text(_json.dumps({
        "version": 1, "kind": "sweep", "name": "cli-serve-smoke",
        "adversaries": ["theorem1-grid"], "victims": ["greedy"],
        "localities": [0, 1],
    }))
    store = tmp_path / "store"
    started = threading.Event()
    box = {}

    def run_server():
        async def scenario():
            server = ColoringServer(store, port=0, rate=0)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server._stopped.wait()

        asyncio.run(scenario())

    thread = threading.Thread(target=run_server)
    thread.start()
    try:
        assert started.wait(timeout=10)
        url = f"http://127.0.0.1:{box['server'].port}"
        code = main(["submit", str(spec), "--url", url, "--watch", "--rows",
                     "--interval", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign cli-serve-smoke done: played 2" in out
        rows = [_json.loads(line) for line in out.splitlines()
                if line.startswith("{")]
        assert [row["locality"] for row in rows] == [0, 1]
    finally:
        box["loop"].call_soon_threadsafe(box["server"].request_drain)
        thread.join(timeout=30)
    assert not thread.is_alive()
