"""Tests for the Graph substrate."""

import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_nodes_only(self):
        g = Graph(nodes=[1, 2, 3])
        assert g.num_nodes == 3
        assert g.num_edges == 0

    def test_edges_create_endpoints(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_tuple_nodes(self):
        g = Graph(edges=[((0, 0), (0, 1))])
        assert (0, 0) in g
        assert g.has_edge((0, 0), (0, 1))

    def test_add_edges_bulk(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3), (3, 1)])
        assert g.num_edges == 3


class TestQueries:
    def test_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == frozenset({2, 3})
        assert g.neighbors(2) == frozenset({1})

    def test_neighbors_missing_node(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.neighbors(42)

    def test_degree(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(4) == 1

    def test_max_degree(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_has_edge_absent_nodes(self):
        g = Graph(edges=[(1, 2)])
        assert not g.has_edge(1, 99)
        assert not g.has_edge(98, 99)

    def test_edges_listed_once(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        edges = list(g.edges())
        assert len(edges) == 3
        normalized = {frozenset(e) for e in edges}
        assert normalized == {
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({1, 3}),
        }

    def test_len_and_iter(self):
        g = Graph(nodes=[1, 2], edges=[(2, 3)])
        assert len(g) == 3
        assert set(g) == {1, 2, 3}

    def test_contains(self):
        g = Graph(nodes=["x"])
        assert "x" in g
        assert "y" not in g


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert g.num_nodes == 3

    def test_remove_missing_edge(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_node(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_node(2)
        assert 2 not in g
        assert g.num_edges == 0

    def test_remove_missing_node(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.remove_node(5)


class TestDerived:
    def test_induced_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.induced_subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_induced_subgraph_ignores_foreign_nodes(self):
        g = Graph(edges=[(1, 2)])
        sub = g.induced_subgraph([1, 2, 99])
        assert sub.num_nodes == 2

    def test_induced_subgraph_keeps_isolated(self):
        g = Graph(nodes=[5], edges=[(1, 2)])
        sub = g.induced_subgraph([1, 5])
        assert sub.num_nodes == 2
        assert sub.num_edges == 0

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_nodes == 2
        assert clone.num_nodes == 3

    def test_relabel(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        relabeled = g.relabel({1: "a", 2: "b", 3: "c"})
        assert relabeled.has_edge("a", "b")
        assert relabeled.has_edge("b", "c")
        assert relabeled.num_nodes == 3

    def test_relabel_partial(self):
        g = Graph(edges=[(1, 2)])
        relabeled = g.relabel({1: "a"})
        assert relabeled.has_edge("a", 2)

    def test_relabel_collision_rejected(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(ValueError):
            g.relabel({1: "x", 2: "x"})

    def test_equality(self):
        g1 = Graph(edges=[(1, 2)])
        g2 = Graph(edges=[(1, 2)])
        g3 = Graph(edges=[(1, 3)])
        assert g1 == g2
        assert g1 != g3

    def test_repr(self):
        assert repr(Graph(edges=[(1, 2)])) == "Graph(n=2, m=1)"
