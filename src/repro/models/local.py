"""The classical LOCAL model simulator (Section 2.2).

An algorithm with locality ``T`` maps each node's ``T``-radius
neighborhood view — the induced subgraph, unique identifiers, and the
center — to that node's output color, independently for every node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.graphs.graph import Graph
from repro.graphs.traversal import BallCache
from repro.models.base import Color, NodeId
from repro.observability.metrics import BoundCounter
from repro.observability.trace import TRACER

HostNode = Hashable

_LOCAL_OUTPUTS = BoundCounter("local_outputs_total")


@dataclass
class LocalView:
    """A node's T-radius view in the LOCAL model.

    Attributes
    ----------
    graph:
        The induced subgraph :math:`G[\\mathcal{B}(v, T)]` over ids.
    center:
        The id of the node computing its output.
    n:
        Host size (LOCAL algorithms know ``n``).
    locality:
        The radius ``T`` of the view.
    """

    graph: Graph
    center: NodeId
    n: int
    locality: int


class LocalAlgorithm(ABC):
    """A deterministic LOCAL algorithm (stateless across nodes)."""

    name: str = "local-algorithm"

    def reset(self, n: int, locality: int, num_colors: int) -> None:
        """Receive the instance parameters before any views are served."""
        self.n = n
        self.locality = locality
        self.num_colors = num_colors

    @abstractmethod
    def color(self, view: LocalView) -> Color:
        """The output color of the view's center node."""


class LocalSimulator:
    """Run a LOCAL algorithm on a host graph.

    Identifiers are assigned deterministically (sorted by ``repr`` of the
    host label) unless an explicit adversarial ``id_map`` is supplied.
    """

    def __init__(
        self,
        host: Graph,
        algorithm: LocalAlgorithm,
        locality: int,
        num_colors: int,
        id_map: Optional[Dict[HostNode, NodeId]] = None,
    ) -> None:
        self.host = host
        self.algorithm = algorithm
        self.locality = locality
        self.num_colors = num_colors
        if id_map is None:
            ordered = sorted(host.nodes(), key=repr)
            id_map = {node: index for index, node in enumerate(ordered)}
        if len(set(id_map.values())) != host.num_nodes:
            raise ValueError("id_map must assign distinct ids to all host nodes")
        self.id_map = id_map
        self._balls = BallCache(host)

    def view_of(self, node: HostNode) -> LocalView:
        """The LocalView served to ``node``."""
        region = self._balls.ball(node, self.locality)
        sub = self.host.induced_subgraph(region).relabel(self.id_map)
        return LocalView(
            graph=sub,
            center=self.id_map[node],
            n=self.host.num_nodes,
            locality=self.locality,
        )

    def run(self) -> Dict[HostNode, Color]:
        """Compute every node's output; returns the host coloring."""
        self.algorithm.reset(
            n=self.host.num_nodes,
            locality=self.locality,
            num_colors=self.num_colors,
        )
        coloring: Dict[HostNode, Color] = {}
        for node in self.host.nodes():
            color = self.algorithm.color(self.view_of(node))
            if not 1 <= color <= self.num_colors:
                raise ValueError(
                    f"{self.algorithm.name}: color {color} outside "
                    f"1..{self.num_colors}"
                )
            coloring[node] = color
            _LOCAL_OUTPUTS.inc()
            if TRACER.enabled:
                TRACER.event(
                    "local-output", model="local", node=node, color=color
                )
        return coloring
