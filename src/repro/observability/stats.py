"""Aggregate a trace file into human-readable reports.

This is the reporting surface behind ``repro.cli stats``: it reads a
JSON-lines trace (written by :mod:`repro.observability.trace`), joins
span starts to span ends, folds every embedded metrics snapshot, and
renders per-event counts, per-adversary game tables, reveal histograms,
cache hit rates, and the slowest games.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.observability.metrics import MetricsRegistry
from repro.observability.timers import TOP_LEVEL_PHASES
from repro.observability.trace import read_trace


@dataclass
class GameSummary:
    """One joined ``game`` span: labels from the start record, outcome
    and duration from the end record, reveal count from stamped events."""

    adversary: str
    victim: str
    seconds: Optional[float] = None
    reason: str = ""
    won: Optional[bool] = None
    forfeit: bool = False
    reveals: int = 0
    steps: Optional[int] = None


@dataclass
class TraceStats:
    """Everything :func:`aggregate` extracts from one trace file."""

    records: int = 0
    record_types: Dict[str, int] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    games: List[GameSummary] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Reveal events that occurred outside any game span (bare CLI runs).
    unspanned_reveals: int = 0

    @property
    def reveals_total(self) -> int:
        return self.event_counts.get("reveal", 0)

    def cache_hit_rate(self) -> Optional[float]:
        hits = self.metrics.counter("ball_cache_hits").value
        misses = self.metrics.counter("ball_cache_misses").value
        total = hits + misses
        return hits / total if total else None


def aggregate(records: List[Dict[str, Any]]) -> TraceStats:
    """Fold a list of trace records (see :func:`read_trace`) into stats."""
    stats = TraceStats(records=len(records))
    types: TallyCounter = TallyCounter()
    events: TallyCounter = TallyCounter()
    reveals_by_span: TallyCounter = TallyCounter()
    starts: Dict[Tuple[Any, int], Dict[str, Any]] = {}
    ends: Dict[Tuple[Any, int], Dict[str, Any]] = {}

    for record in records:
        kind = record.get("kind", "")
        rtype = record.get("type", "?")
        types[rtype] += 1
        if rtype == "event":
            events[kind] += 1
            if kind == "reveal":
                span = record.get("in_span")
                if span is None:
                    stats.unspanned_reveals += 1
                else:
                    reveals_by_span[(record.get("src"), span)] += 1
        elif rtype == "span-start" and kind == "game":
            starts[(record.get("src"), record.get("span"))] = record
        elif rtype == "span-end" and kind == "game":
            ends[(record.get("src"), record.get("span"))] = record
        elif rtype == "metrics":
            stats.metrics.merge(record.get("snapshot", {}))

    for key, start in sorted(starts.items(), key=lambda kv: kv[1]["seq"]):
        end = ends.get(key, {})
        stats.games.append(
            GameSummary(
                adversary=str(start.get("adversary", "?")),
                victim=str(start.get("victim", "?")),
                seconds=end.get("seconds"),
                reason=str(end.get("reason", "")),
                won=end.get("won"),
                forfeit=bool(end.get("forfeit", False)),
                reveals=reveals_by_span.get(key, 0),
                steps=end.get("steps"),
            )
        )
    stats.record_types = dict(types)
    stats.event_counts = dict(events)
    return stats


def aggregate_file(path) -> TraceStats:
    """:func:`aggregate` over the records of a trace file on disk."""
    return aggregate(read_trace(path))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_stats(stats: TraceStats, top: int = 5) -> str:
    """The full ``repro.cli stats`` report as one printable string."""
    sections: List[str] = []

    sections.append(
        f"trace records: {stats.records} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(stats.record_types.items()))})"
    )

    if stats.event_counts:
        sections.append("\nevents:")
        sections.append(render_table(
            ["kind", "count"],
            [[kind, count]
             for kind, count in sorted(stats.event_counts.items())],
        ))

    sections.append(f"\nreveals total: {stats.reveals_total}")

    if stats.games:
        per_adversary: Dict[str, List[GameSummary]] = {}
        for game in stats.games:
            per_adversary.setdefault(game.adversary, []).append(game)
        sections.append("\ngames by adversary:")
        sections.append(render_table(
            ["adversary", "games", "won", "forfeits", "reveals", "seconds"],
            [
                [
                    name,
                    len(games),
                    sum(1 for g in games if g.won),
                    sum(1 for g in games if g.forfeit),
                    sum(g.reveals for g in games),
                    sum(g.seconds or 0.0 for g in games),
                ]
                for name, games in sorted(per_adversary.items())
            ],
        ))
        reveal_counts = sorted(g.reveals for g in stats.games)
        sections.append(
            "\nreveals per game: "
            f"min={reveal_counts[0]} "
            f"median={reveal_counts[len(reveal_counts) // 2]} "
            f"max={reveal_counts[-1]}"
        )
        timed = [g for g in stats.games if g.seconds is not None]
        if timed:
            slowest = sorted(timed, key=lambda g: -(g.seconds or 0.0))[:top]
            sections.append(f"\nslowest games (top {len(slowest)}):")
            sections.append(render_table(
                ["adversary", "victim", "seconds", "reveals", "reason"],
                [[g.adversary, g.victim, f"{g.seconds:.3f}", g.reveals,
                  g.reason] for g in slowest],
            ))

    rate = stats.cache_hit_rate()
    if rate is not None:
        hits = stats.metrics.counter("ball_cache_hits").value
        misses = stats.metrics.counter("ball_cache_misses").value
        sections.append(
            f"\nball cache hit rate: {rate:.1%} ({hits}/{hits + misses})"
        )
        evictions = stats.metrics.counter("ball_cache_evictions").value
        scoped = stats.metrics.counter("ball_cache_scoped_flushes").value
        full = stats.metrics.counter("ball_cache_full_flushes").value
        if evictions or scoped or full:
            sections.append(
                f"ball cache invalidation: {evictions} evictions, "
                f"{scoped} scoped flushes, {full} full flushes"
            )

    snapshot = stats.metrics.snapshot()
    if any(snapshot.values()):
        sections.append("\nmetrics:")
        sections.append(format_metrics(snapshot))
    return "\n".join(sections)


def render_phase_table(
    phases: Dict[str, float], wall_seconds: Optional[float] = None
) -> str:
    """The phase-attribution table ``campaign status``/``run`` print.

    One row per phase (sorted by time, descending) with its share of
    ``wall_seconds`` when known; top-level phases — the ones whose sum
    the ≥90% coverage gate is computed over — are marked, and a summary
    line reports the covered share.  Worker-scoped phases overlap the
    parent's wall-clock (they ran concurrently), so they are listed but
    never counted toward coverage.
    """
    if not phases:
        return "(no phase timings recorded; run with timers enabled)"
    rows: List[List[Any]] = []
    for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = (
            f"{seconds / wall_seconds:.1%}"
            if wall_seconds and wall_seconds > 0
            else "-"
        )
        marker = "*" if name in TOP_LEVEL_PHASES else ""
        rows.append([name + marker, f"{seconds:.4f}", share])
    table = render_table(["phase", "seconds", "share"], rows)
    if wall_seconds and wall_seconds > 0:
        covered = sum(
            seconds
            for name, seconds in phases.items()
            if name in TOP_LEVEL_PHASES
        )
        table += (
            f"\n* top-level phases: {covered:.4f}s of "
            f"{wall_seconds:.4f}s wall-clock "
            f"({covered / wall_seconds:.1%} attributed)"
        )
    return table


def format_metrics(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot as aligned tables (used by the CLI's
    ``--metrics`` flag and the ``stats`` report)."""
    rows: List[List[Any]] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rows.append([name, "counter", value])
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        rows.append([name, "gauge", value])
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        count = summary.get("count", 0)
        mean = (summary.get("sum", 0.0) / count) if count else 0.0
        rows.append([
            name,
            "histogram",
            f"count={count} mean={mean:.4f} "
            f"min={summary.get('min')} max={summary.get('max')}",
        ])
    if not rows:
        return "(no metrics recorded)"
    return render_table(["instrument", "type", "value"], rows)
