"""Shared helpers for the benchmark harness.

Each benchmark prints the table its EXPERIMENTS.md section records, then
asserts the paper-shaped property (who wins, by what growth shape), and
finally times a representative run under pytest-benchmark.
"""

import math

from repro.analysis.experiments import threshold_locality
from repro.core.akbari import AkbariBipartiteColoring
from repro.families.grids import SimpleGrid
from repro.families.random_graphs import scattered_reveal_order
from repro.models.online_local import OnlineLocalSimulator
from repro.robustness.errors import ReproError
from repro.verify.coloring import is_proper


def akbari_survives(grid: SimpleGrid, locality: int, seed: int) -> bool:
    """One survival trial: Akbari vs one adversarial order on the grid.

    Only structured failures (:class:`ReproError` — protocol violations,
    oracle failures) count as losses; anything else is a harness bug and
    must propagate instead of being silently scored as a defeat.
    """
    sim = OnlineLocalSimulator(
        grid.graph, AkbariBipartiteColoring(), locality=locality, num_colors=3
    )
    order = scattered_reveal_order(sorted(grid.graph.nodes()), seed=seed)
    try:
        coloring = sim.run(order)
    except ReproError:
        return False
    return is_proper(grid.graph, coloring)


def akbari_threshold(side: int, seeds=range(3), high: int = 64):
    """Smallest locality at which Akbari survives the whole order battery."""
    grid = SimpleGrid(side, side)
    return threshold_locality(
        lambda T: all(akbari_survives(grid, T, seed) for seed in seeds),
        low=0,
        high=high,
    )


def paper_akbari_budget(n: int) -> int:
    return 3 * math.ceil(math.log2(max(2, n)))
