"""Property-based tests (hypothesis) on core data structures and invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bvalue import (
    b_value_parity,
    cycle_b_value,
    cycle_b_value_parity,
    path_b_value,
)
from repro.core.parity_uf import ParityUnionFind
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball, bfs_distances, connected_components
from repro.verify.gadget_props import classify_gadget


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw):
    """Random simple graphs on up to 10 nodes."""
    n = draw(st.integers(min_value=1, max_value=10))
    nodes = list(range(n))
    possible = list(itertools.combinations(nodes, 2))
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)
        if possible
        else st.just([])
    )
    return Graph(nodes=nodes, edges=edges)


def proper_path_colorings(min_len=1, max_len=10):
    """Random proper {1,2,3} colorings of a path."""

    @st.composite
    def strategy(draw):
        length = draw(st.integers(min_value=min_len, max_value=max_len))
        colors = [draw(st.integers(min_value=1, max_value=3))]
        for __ in range(length):
            options = [c for c in (1, 2, 3) if c != colors[-1]]
            colors.append(draw(st.sampled_from(options)))
        return colors

    return strategy()


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(graph):
    assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_components_partition_nodes(graph):
    components = connected_components(graph)
    union = set().union(*components) if components else set()
    assert union == set(graph.nodes())
    assert sum(len(c) for c in components) == graph.num_nodes


@given(small_graphs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=60, deadline=None)
def test_balls_are_monotone(graph, radius):
    node = min(graph.nodes())
    inner = ball(graph, node, radius)
    outer = ball(graph, node, radius + 1)
    assert inner <= outer


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_bfs_distances_satisfy_triangle_step(graph):
    node = min(graph.nodes())
    dist = bfs_distances(graph, node)
    for u in dist:
        for v in graph.neighbors(u):
            if v in dist:
                assert abs(dist[u] - dist[v]) <= 1


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_induced_subgraph_idempotent(graph):
    nodes = set(graph.nodes())
    once = graph.induced_subgraph(nodes)
    twice = once.induced_subgraph(nodes)
    assert once == twice


# ----------------------------------------------------------------------
# b-value invariants (Lemma 3.5, Definition 3.2)
# ----------------------------------------------------------------------
@given(proper_path_colorings())
@settings(max_examples=200, deadline=None)
def test_parity_lemma_on_random_proper_paths(colors):
    length = len(colors) - 1
    assert path_b_value(colors) % 2 == b_value_parity(
        length, colors[0], colors[-1]
    )


@given(proper_path_colorings())
@settings(max_examples=200, deadline=None)
def test_b_value_reversal_antisymmetry(colors):
    assert path_b_value(colors) == -path_b_value(list(reversed(colors)))


@given(proper_path_colorings(min_len=2), proper_path_colorings(min_len=2))
@settings(max_examples=100, deadline=None)
def test_b_value_concatenation(left, right):
    glued = left + right
    bridge = path_b_value([left[-1], right[0]])
    assert path_b_value(glued) == path_b_value(left) + bridge + path_b_value(right)


@given(proper_path_colorings(min_len=2, max_len=8))
@settings(max_examples=150, deadline=None)
def test_cycle_parity_lemma(colors):
    if colors[0] == colors[-1]:
        colors = colors[:-1]
    if len(colors) < 3 or colors[0] == colors[-1]:
        return
    assert cycle_b_value(colors) % 2 == cycle_b_value_parity(len(colors))


@given(proper_path_colorings())
@settings(max_examples=100, deadline=None)
def test_b_value_bounded_by_length(colors):
    assert abs(path_b_value(colors)) <= len(colors) - 1


# ----------------------------------------------------------------------
# Parity union-find vs. direct BFS bipartition
# ----------------------------------------------------------------------
@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_parity_uf_matches_bfs_parity(graph):
    uf = ParityUnionFind()
    for node in graph.nodes():
        uf.add(node)
    for u, v in graph.edges():
        uf.union_opposite(u, v)
    for component in connected_components(graph):
        anchor = min(component)
        dist = bfs_distances(graph, anchor)
        # Detect odd cycles directly.
        odd = any(
            dist[u] % 2 == dist[v] % 2
            for u in component
            for v in graph.neighbors(u)
        )
        assert uf.is_odd(anchor) == odd
        if not odd:
            __, anchor_parity = uf.find(anchor)
            for node in component:
                __, parity = uf.find(node)
                assert (parity ^ anchor_parity) == dist[node] % 2
    # Sizes match component sizes.
    for component in connected_components(graph):
        assert uf.size(min(component)) == len(component)


# ----------------------------------------------------------------------
# Gadget classification invariance
# ----------------------------------------------------------------------
@given(st.permutations(list(range(4))))
@settings(max_examples=30, deadline=None)
def test_gadget_classification_invariant_under_color_permutation(perm):
    """Recoloring by a bijection never changes row/column classification."""
    from repro.families.gadgets import Gadget
    from repro.oracles.brute import proper_colorings

    g = Gadget(3)
    rows = [g.row(i) for i in range(3)]
    cols = [g.column(j) for j in range(3)]
    coloring = next(proper_colorings(g.graph, 4))
    shifted = {node: color + 1 for node, color in coloring.items()}
    renamed = {node: perm[color - 1] + 1 for node, color in shifted.items()}
    assert classify_gadget(rows, cols, shifted) == classify_gadget(
        rows, cols, renamed
    )
